#!/usr/bin/env python
"""Span-trace a NAT and a BrFusion transfer; print the top-N summary.

Runs one 1280 B request through each datapath with the observability
layer switched on (``obs.capture``), then prints the tracer's top-N
table for both.  BrFusion's table has visibly fewer ``datapath.stage``
rows — the guest bridge/NAT stages are simply gone — and fewer total
cycles, which is the whole point of §3.

Optionally writes Chrome ``trace_event`` files you can open in
Perfetto (https://ui.perfetto.dev):

Run:  python examples/trace_datapath.py [--out DIR]
"""

import argparse
import pathlib

from repro import obs
from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.obs.export import summary, write_chrome_trace

MESSAGE = 1280


def trace(mode: DeploymentMode, out: pathlib.Path | None) -> tuple[int, float]:
    with obs.capture() as (tracer, _metrics):
        tb = default_testbed(seed=11, vms=1)
        scenario = build_scenario(tb, mode)
        forward, _ = scenario.paths("udp")
        tb.env.run(until=tb.env.process(tb.engine.transfer(forward, MESSAGE)))

        stages = tracer.spans_in("datapath.stage")
        cycles = sum(s.attrs["cycles"] for s in stages)
        print(f"== {mode.value}: one {MESSAGE} B request, "
              f"{len(stages)} traced stages, {cycles:.0f} cycles ==")
        print(summary(tracer, top=12))
        if out is not None:
            path = write_chrome_trace(tracer, out / f"{mode.value}.trace.json")
            print(f"[wrote {path} — open in https://ui.perfetto.dev]")
        print()
        return len(stages), cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="DIR",
                        help="also write <DIR>/<mode>.trace.json per mode")
    args = parser.parse_args()
    out = None
    if args.out:
        out = pathlib.Path(args.out)
        out.mkdir(parents=True, exist_ok=True)

    nat_stages, nat_cycles = trace(DeploymentMode.NAT, out)
    brf_stages, brf_cycles = trace(DeploymentMode.BRFUSION, out)
    print(f"stage spans: NAT {nat_stages} vs BrFusion {brf_stages} "
          f"({nat_stages - brf_stages} stages fused away); "
          f"cycles: NAT {nat_cycles:.0f} vs BrFusion {brf_cycles:.0f} "
          f"({1 - brf_cycles / nat_cycles:.0%} saved)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Capture the NAT and BrFusion datapaths; diff their provenance.

Builds one host carrying both server variants — a Docker bridge+NAT
container nested inside the VM, and a BrFusion pod whose hot-plugged
vNIC sits directly on the host bridge — then sends a request to each
under a promiscuous capture session.  The per-frame provenance trails
make the paper's Fig. 1 story measurable: the NAT delivery crosses
the guest's extra bridge and netfilter hook, the BrFusion delivery
does not.  The run ends with the flow table and a pcapng you can open
in Wireshark.

Run:  python examples/capture_brfusion.py [--out DIR]
"""

import argparse
import pathlib

from repro.net import (
    Bridge,
    CaptureSession,
    FlowTable,
    NetworkNamespace,
    TapDevice,
    VethPair,
    VirtioNic,
    capture,
    flows,
)
from repro.net.addresses import MacAllocator, cidr, ip
from repro.net.forwarding import ForwardingEngine
from repro.net.inspect import trace_frame
from repro.net.netfilter import DnatRule, MasqueradeRule
from repro.obs.pcap import write_pcapng

_macs = MacAllocator(oui=0x02AA00)


def build_topology():
    """Host bridge + client, one VM carrying both server variants."""
    host = NetworkNamespace("host", kind="host")
    bridge = Bridge("virbr0")
    bridge.assign_ip(ip("192.168.122.1"), cidr("192.168.122.0/24"))
    host.attach(bridge)
    host.routes.add_on_link(cidr("192.168.122.0/24"), "virbr0")

    client = NetworkNamespace("client", kind="container", domain="client")
    pair = VethPair("eth0", "veth-client", _macs.allocate(), _macs.allocate())
    pair.a.assign_ip(ip("192.168.122.100"), cidr("192.168.122.0/24"))
    client.attach(pair.a)
    host.attach(pair.b)
    bridge.add_port(pair.b)
    client.routes.add_on_link(cidr("192.168.122.0/24"), "eth0")
    client.routes.add_default("eth0", ip("192.168.122.1"))

    # The VM: guest namespace, virtio NIC backed by a tap on virbr0.
    guest = NetworkNamespace("vm1", kind="guest", domain="vm:vm1")
    nic = VirtioNic("eth0", _macs.allocate())
    nic.assign_ip(ip("192.168.122.11"), cidr("192.168.122.0/24"))
    guest.attach(nic)
    tap = TapDevice("tap-vm1")
    host.attach(tap)
    bridge.add_port(tap)
    nic.attach_backend(tap)
    guest.routes.add_on_link(cidr("192.168.122.0/24"), "eth0")
    guest.routes.add_default("eth0", ip("192.168.122.1"))

    # Variant 1 — nested default: Docker bridge + NAT inside the guest,
    # container port 80 published on guest port 8080.
    docker0 = Bridge("docker0")
    docker0.assign_ip(ip("172.17.0.1"), cidr("172.17.0.0/16"))
    guest.attach(docker0)
    guest.routes.add_on_link(cidr("172.17.0.0/16"), "docker0")
    nat_pod = NetworkNamespace("nat-pod", kind="container", domain="vm:vm1")
    inner = VethPair("eth0", "veth-nat-pod",
                     _macs.allocate(), _macs.allocate())
    inner.a.assign_ip(ip("172.17.0.2"), cidr("172.17.0.0/16"))
    nat_pod.attach(inner.a)
    guest.attach(inner.b)
    docker0.add_port(inner.b)
    nat_pod.routes.add_on_link(cidr("172.17.0.0/16"), "eth0")
    nat_pod.routes.add_default("eth0", ip("172.17.0.1"))
    guest.netfilter.add_dnat(DnatRule("tcp", 8080, ip("172.17.0.2"), 80))
    guest.netfilter.add_masquerade(
        MasqueradeRule(cidr("172.17.0.0/16"), "eth0")
    )

    # Variant 2 — BrFusion: the pod's hot-plugged vNIC is switched by
    # the *host* bridge; no guest bridge, no netfilter hook.
    brf_pod = NetworkNamespace("brf-pod", kind="container", domain="vm:vm1")
    brf_nic = VirtioNic("brf-pod", _macs.allocate())
    brf_nic.assign_ip(ip("192.168.122.50"), cidr("192.168.122.0/24"))
    brf_pod.attach(brf_nic)
    brf_tap = TapDevice("tap-brf-pod")
    host.attach(brf_tap)
    bridge.add_port(brf_tap)
    brf_nic.attach_backend(brf_tap)
    brf_pod.routes.add_on_link(cidr("192.168.122.0/24"), "brf-pod")
    brf_pod.routes.add_default("brf-pod", ip("192.168.122.1"))

    return client


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="out", metavar="DIR",
                        help="directory for the pcapng (default: out/)")
    args = parser.parse_args()

    client = build_topology()
    engine = ForwardingEngine()
    session = CaptureSession(promiscuous=True)
    table = FlowTable()

    with capture.use(session), flows.use(table):
        nat = engine.send(client, ip("192.168.122.11"), 8080,
                          payload_bytes=512)
        brf = engine.send(client, ip("192.168.122.50"), 80,
                          payload_bytes=512)

    print("== NAT (nested default): the journey ==")
    print(trace_frame(nat, session))
    print()
    print("== BrFusion: the same request, fused path ==")
    print(trace_frame(brf, session))
    print()
    saved = len(nat.trail) - len(brf.trail)
    print(f"BrFusion crosses {len(brf.trail)} stages where NAT crosses "
          f"{len(nat.trail)} — {saved} fewer provenance hops "
          f"(no docker0, no DNAT rewrite).")
    print()
    print(table.top_flows())

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = write_pcapng(session, out / "capture_brfusion.pcapng")
    print(f"\n[pcap: {path} ({session.packet_count} packets on "
          f"{len(session.points())} taps) — open in Wireshark]")
    mismatches = session.reconcile(engine)
    print(f"[capture ledger reconciles with the engine: "
          f"{'yes' if not mismatches else mismatches}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

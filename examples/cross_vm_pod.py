#!/usr/bin/env python
"""Hostlo: split a pod across two VMs and keep its localhost.

Deploys a two-container pod that cannot fit any single VM, watches the
scheduler split it, inspects the hostlo device the VMM provisioned, and
compares intra-pod Memcached over hostlo against the alternatives.

Run:  python examples/cross_vm_pod.py
"""

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.net.path import resolve_path
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.workloads import MemtierBenchmark


def show_split_deployment() -> None:
    print("== deploying a pod too big for one VM ==")
    tb = default_testbed(seed=3, vms=2)
    spec = PodSpec(
        "bigpod",
        containers=(
            ContainerSpec("app", "memcached", cpu=3, memory_gb=2),
            ContainerSpec("worker", "memcached", cpu=3, memory_gb=2),
        ),
    )
    deployment = tb.deploy(spec, network="hostlo", allow_split=True)
    print(f"  placement: {dict(deployment.placement.assignments)}")
    handle = deployment.plugin_state["hostlo"]
    print(f"  hostlo device {handle.tap.name} with "
          f"{handle.tap.queue_count} VM queues")
    for cname in ("app", "worker"):
        print(f"  {cname}: localhost address {deployment.intra_address(cname)}")

    path = resolve_path(
        deployment.namespace_of("app"),
        deployment.intra_address("worker"), 11211,
    )
    print(f"  intra-pod path: {' -> '.join(path.stage_names())}\n")


def compare_memcached() -> None:
    print("== intra-pod Memcached (memtier), four ways ==")
    bench = MemtierBenchmark(threads=2, connections_per_thread=25)
    for mode in (DeploymentMode.SAMENODE, DeploymentMode.HOSTLO,
                 DeploymentMode.OVERLAY, DeploymentMode.NAT_CROSS):
        tb = default_testbed(seed=3, vms=2)
        scenario = build_scenario(tb, mode, image="memcached", port=11211)
        result = bench.run(scenario, duration_s=0.015)
        stats = result.latency
        print(f"  {mode.value:9s} {result.rate_per_s:9.0f} ops/s   "
              f"latency {stats.mean * 1e6:7.1f} us  (cv {stats.cv:.2f})")
    print("\n  hostlo: near-SameNode service, none of the overlay/NAT pain")


if __name__ == "__main__":
    show_split_deployment()
    compare_memcached()

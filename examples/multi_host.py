#!/usr/bin/env python
"""Where hostlo's reach ends: two hosts, one wire, a split pod.

Builds two physical hosts cabled together (their default bridges form
one L2 segment), shows cross-host VM traffic riding the wire, and then
demonstrates the design boundary the paper implies but never shows:
the VMM refuses to build a hostlo for VMs on different hosts — a
cross-HOST pod has to fall back to an overlay.

Run:  python examples/multi_host.py
"""

from repro.errors import TopologyError
from repro.net import resolve_path
from repro.net.forwarding import ForwardingEngine
from repro.net.links import connect_hosts
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


def main() -> None:
    env = Environment()
    alpha = PhysicalHost(env, name="alpha", seed=1)
    beta = PhysicalHost(env, name="beta", seed=2)
    vmm_alpha, vmm_beta = Vmm(alpha), Vmm(beta)
    vm_a = vmm_alpha.create_vm("vm-a")
    beta._host_allocators["virbr0"]._next = 100  # disjoint address range
    vm_b = vmm_beta.create_vm("vm-b")
    link = connect_hosts("dc-wire", alpha, beta, bandwidth_bps=10e9)
    print(f"cabled {alpha.name} <-> {beta.name} over {link.name} "
          f"({link.bandwidth_bps / 1e9:.0f} Gbit/s)\n")

    target = vm_b.primary_nic.primary_ip
    path = resolve_path(vm_a.ns, target, 22)
    print("vm-a -> vm-b stages:")
    print("  " + " -> ".join(path.stage_names()))
    delivery = ForwardingEngine().send(vm_a.ns, target, 22)
    print(f"frame delivered in {delivery.namespace}: "
          f"{' | '.join(h for h in delivery.hops if 'wire' in h)}\n")

    print("asking alpha's VMM for a hostlo spanning both hosts:")
    try:
        vmm_alpha.create_hostlo("impossible", [vm_a, vm_b])
    except TopologyError as exc:
        print(f"  refused: {exc}")
    print("\n(the multiplexed loopback's queues are host-kernel queues —"
          "\n cross-HOST pods need an overlay; cross-VM pods on one host"
          "\n are exactly hostlo's niche)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Run a seed-sweep campaign twice: cold with workers, warm from cache.

Expands fig08 (hot-plug latency) x three seeds into a campaign, runs
it cold on two workers, then reruns it against the same cache — every
job comes back as a hit carrying the original run's wall clock, and
the rows are bit-identical to the cold run.  Prints the per-seed
hot-plug medians side by side and the bench totals for both passes.

Run:  python examples/campaign_sweep.py [--jobs N] [--cache DIR]
"""

import argparse
import pathlib
import tempfile

from repro.campaign import CampaignSpec, ResultCache, bench, run_campaign

SEEDS = (2019, 2020, 2021)


def sweep(jobs: int, cache: ResultCache) -> None:
    spec = CampaignSpec(
        experiments=("fig08",), presets=("quick",), seeds=SEEDS
    )

    print(f"== cold: {len(spec.expand())} jobs on {jobs} workers ==")
    cold = run_campaign(spec, jobs=jobs, cache=cache, progress=print)
    print(f"== warm: same spec, same cache ==")
    warm = run_campaign(spec, jobs=jobs, cache=cache, progress=print)

    assert warm.cache_hits == len(warm.outcomes)
    assert warm.results() == cold.results()

    print("\nseed   rows  median-ish first row")
    for outcome in cold.outcomes:
        first = outcome.result.rows[0]
        print(f"{outcome.job.seed}   {len(outcome.result.rows):4d}  {first}")

    for label, report in (("cold", cold), ("warm", warm)):
        totals = bench.build_report(report)["totals"]
        print(f"\n{label}: wall {totals['wall_s']}s, "
              f"serial cost {totals['serial_wall_s']}s, "
              f"speedup_vs_serial {totals['speedup_vs_serial']}x")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache", type=pathlib.Path, default=None,
                        help="cache dir (default: a temp dir)")
    args = parser.parse_args()
    if args.cache is not None:
        sweep(args.jobs, ResultCache(args.cache))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            sweep(args.jobs, ResultCache(tmp))


if __name__ == "__main__":
    main()

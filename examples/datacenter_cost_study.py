#!/usr/bin/env python
"""Datacenter cost study: what cross-VM pods save your users (fig 9).

Generates a Google-trace-like population, runs the §5.3.1 comparison —
Kubernetes whole-pod placement vs the Hostlo improvement pass — and
prints the savings distribution plus a close-up of the biggest saver.

Run:  python examples/datacenter_cost_study.py [users]
"""

import sys

from repro.costsim import SavingsReport, simulate_costs
from repro.costsim.hostlo import split_pod_names
from repro.costsim.kubernetes import schedule_user
from repro.costsim.hostlo import improve_assignment
from repro.costsim.packing import total_cost
from repro.traces import TraceConfig, generate_trace


def main() -> None:
    users = int(sys.argv[1]) if len(sys.argv) > 1 else 492
    population = generate_trace(TraceConfig(users=users, seed=7))
    print(f"simulating {users} users against the m5 catalog ...\n")

    report = SavingsReport.from_outcomes(simulate_costs(population))
    print(report.render())

    big = report.biggest_saver
    user = next(u for u in population if u.name == big.user)
    print(f"\n== close-up: {big.user} ==")
    print(f"  pods: {len(user.pods)}")
    baseline = schedule_user(user.pods)
    improved = improve_assignment(baseline)
    print(f"  Kubernetes buys {len(baseline)} VMs for "
          f"${total_cost(baseline):.2f}/h")
    print(f"  Hostlo repacks into {len(improved)} VMs for "
          f"${total_cost(improved):.2f}/h")
    print(f"  pods split across VMs (now possible): "
          f"{len(split_pod_names(improved))}")
    print(f"  saving: ${big.absolute_saving:.2f}/h "
          f"({big.relative_saving:.1%})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: deploy a pod three ways and measure what the paper measured.

Builds the simulated testbed (one 12-core host, KVM-style VMs, a
benchmark client on the host bridge), deploys a netperf server behind
Docker NAT, behind a BrFusion pod NIC, and natively in the VM, then
runs netperf against each — reproducing the core BrFusion result in a
few seconds.

Run:  python examples/quickstart.py
"""

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.workloads import NetperfTcpStream, NetperfUdpRR

MESSAGE_SIZE = 1280  # the paper's headline size


def measure(mode: DeploymentMode) -> tuple[float, float]:
    """(throughput Mbps, mean RR latency µs) for one deployment mode."""
    tb = default_testbed(seed=42, vms=2)
    scenario = build_scenario(tb, mode)
    stream = NetperfTcpStream(window=64).run(
        scenario, MESSAGE_SIZE, duration_s=0.01
    )

    tb = default_testbed(seed=42, vms=2)
    scenario = build_scenario(tb, mode)
    rr = NetperfUdpRR().run(scenario, MESSAGE_SIZE, transactions=150)
    return stream.throughput_mbps, rr.latency.mean * 1e6


def main() -> None:
    print(f"netperf, {MESSAGE_SIZE} B messages, client on the host:\n")
    results = {}
    for mode in (DeploymentMode.NAT, DeploymentMode.BRFUSION,
                 DeploymentMode.NOCONT):
        throughput, latency = measure(mode)
        results[mode] = (throughput, latency)
        print(f"  {mode.value:9s} throughput {throughput:8.0f} Mbps   "
              f"latency {latency:6.1f} us")

    nat_thr, nat_lat = results[DeploymentMode.NAT]
    brf_thr, brf_lat = results[DeploymentMode.BRFUSION]
    nocont_thr, _ = results[DeploymentMode.NOCONT]
    print()
    print(f"BrFusion vs NAT:     {brf_thr / nat_thr:.1f}x throughput, "
          f"{1 - brf_lat / nat_lat:.0%} lower latency")
    print(f"BrFusion vs NoCont:  {brf_thr / nocont_thr:.2f}x throughput "
          "(the whole point: the nested pod pays nothing extra)")


if __name__ == "__main__":
    main()

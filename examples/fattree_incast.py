#!/usr/bin/env python
"""Overflow a rack port with an incast burst, then account every frame.

Builds a k=4 fat-tree with shallow switch rings, points every other
host at one victim and fires the burst inside a congestion window.
The converging down-port's ring fills and overflows as labelled
``fabric-overflow`` drops; the per-rack flow rollup shows which racks
paid, and the conservation ledger proves nothing vanished silently.

Run:  python examples/fattree_incast.py
"""

import sys

from repro.fabric import FatTree
from repro.health import HealthScope, run_checks
from repro.net import flows
from repro.net.addresses import ip
from repro.net.flows import FlowTable
from repro.net.forwarding import ForwardingEngine
from repro.sim import Environment

K = 4
RING_DEPTH = 8
ROUNDS = 6
VICTIM = "h-p0e0n0"


def main() -> int:
    tree = FatTree(Environment(), k=K, hosts_per_edge=2, seed=7,
                   queue_capacity=RING_DEPTH)
    fwd = ForwardingEngine()
    clients = {
        name: tree.host(name).create_attached_namespace(
            f"cl-{name}", domain=f"client:{name}"
        )
        for name in tree.hosts
    }
    victim_addr = clients[VICTIM].device("eth0").primary_ip
    senders = [name for name in tree.hosts if name != VICTIM]

    table = FlowTable()
    with flows.use(table), tree.congestion():
        for round_index in range(ROUNDS):
            for index, name in enumerate(senders):
                fwd.send(clients[name], victim_addr, 9000 + index)
            if round_index % 3 == 2:
                tree.service_all()
    tree.service_all()

    print(f"incast: {len(senders)} senders x {ROUNDS} rounds into "
          f"{VICTIM} (ring depth {RING_DEPTH})")
    print(f"  sent {fwd.frames_sent}, delivered {fwd.frames_delivered}, "
          f"drops {fwd.drops}")
    assert fwd.frames_sent == fwd.frames_delivered + sum(
        fwd.drops.values()
    ), "conservation ledger broken"
    print("  ledger conserved: sent == delivered + labelled drops")
    print()
    print(table.render_rollup(
        lambda key, stats: tree.rack_of(
            tree.host_of_ip(ip(key.src_ip)) or VICTIM
        ),
        title="by source rack",
    ))
    print()

    # Outside the congestion window the same burst flows drop-free.
    before = dict(fwd.drops)
    for index, name in enumerate(senders):
        fwd.send(clients[name], victim_addr, 9000 + index)
    assert dict(fwd.drops) == before, "dropped outside the window"
    print("outside the window: same burst, zero new drops")

    violations = run_checks(HealthScope.of(
        fabrics=(tree,), forwarding=fwd,
        namespaces=tuple(clients.values()),
    ))
    for violation in violations:
        print(f"VIOLATION: {violation}")
    print(f"health audit: {len(violations)} violations")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Trace one packet, stage by stage, through NAT and BrFusion.

Prints a microsecond-resolution timeline of every processing stage a
1280 B request traverses — where it ran, how long the CPU work took,
and how long it sat in deferrals (softirq scheduling, vhost kicks,
interrupt injection).  The duplicated virtualization layer is visible
as three extra guest stages on the NAT path.

Run:  python examples/packet_timeline.py
"""

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed

MESSAGE = 1280


def show(mode: DeploymentMode) -> float:
    tb = default_testbed(seed=11, vms=1)
    scenario = build_scenario(tb, mode)
    forward, _ = scenario.paths("udp")
    timeline = tb.engine.trace(forward, MESSAGE)

    t0 = timeline[0].started_at
    total = timeline[-1].finished_at - t0
    print(f"== {mode.value}: one {MESSAGE} B request, "
          f"{len(timeline)} stages, {total * 1e6:.1f} us ==")
    print(f"{'t (us)':>8}  {'stage':<14} {'runs on':<24} "
          f"{'cpu (us)':>9} {'defer (us)':>10}")
    for item in timeline:
        print(f"{(item.started_at - t0) * 1e6:8.1f}  "
              f"{item.stage:<14} {item.domain:<24} "
              f"{item.service_s * 1e6:9.2f} {item.deferral_s * 1e6:10.2f}")
    print()
    return total


def main() -> None:
    nat = show(DeploymentMode.NAT)
    brf = show(DeploymentMode.BRFUSION)
    print(f"one-way latency: NAT {nat * 1e6:.1f} us vs "
          f"BrFusion {brf * 1e6:.1f} us "
          f"({1 - brf / nat:.0%} saved by fusing the bridges)")


if __name__ == "__main__":
    main()

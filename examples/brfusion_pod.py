#!/usr/bin/env python
"""BrFusion, mechanically: watch the §3.1 protocol and the path shrink.

Walks through the orchestrator↔VMM interaction step by step, then shows
the resolved datapaths — the NAT pod's duplicated virtualization layer
versus the BrFusion pod's host-switched NIC — and the guest CPU the
fused path saves while Kafka runs.

Run:  python examples/brfusion_pod.py
"""

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.net.path import resolve_path
from repro.workloads import KafkaProducerPerf


def show_protocol() -> None:
    print("== §3.1: the orchestrator asks the VMM for a pod NIC ==")
    tb = default_testbed(seed=1, vms=1)
    node = tb.orchestrator.node("vm0")

    # Step 1-2: orchestrator → VMM; VMM provisions the NIC.
    nic = tb.vmm.add_nic(node.vm)
    print(f"  VMM provisioned {nic.name} backed by TAP {nic.backend.name} "
          f"on bridge {nic.backend.bridge.name}")
    # Step 3: the VMM reports an identifier (the MAC address).
    print(f"  VMM reports identifier: {nic.mac}")
    # Step 4: the agent finds the NIC by MAC and wires it into the pod.
    engine = node.engine
    pod = engine.create_container("demo-pod", "netperf")
    network = tb.host.bridge_network("virbr0")
    address = tb.host.allocate_address("virbr0")
    tb.orchestrator.agent("vm0").configure_nic(
        nic.mac, pod, address, network, gateway=network.host(1)
    )
    print(f"  agent configured {nic.name} inside the pod at {address}\n")


def show_paths() -> None:
    print("== the datapath, before and after ==")
    for mode, label in ((DeploymentMode.NAT, "NAT (nested default)"),
                        (DeploymentMode.BRFUSION, "BrFusion")):
        tb = default_testbed(seed=1, vms=1)
        scenario = build_scenario(tb, mode)
        path = resolve_path(scenario.src_ns, scenario.dst_addr,
                            scenario.dst_port)
        stages = " -> ".join(path.stage_names())
        print(f"  {label} ({len(path.stages)} stages):")
        print(f"    {stages}\n")


def show_cpu_saving() -> None:
    print("== guest softirq CPU while Kafka runs (fig 6's effect) ==")
    for mode in (DeploymentMode.NAT, DeploymentMode.BRFUSION):
        tb = default_testbed(seed=1, vms=1)
        scenario = build_scenario(tb, mode, image="kafka", port=9092)
        tb.reset_accounting()
        KafkaProducerPerf().run(scenario, duration_s=0.02)
        soft = tb.breakdowns()[scenario.server_domain].soft
        print(f"  {mode.value:9s} guest softirq time: {soft * 1e3:.2f} ms")
    print("  (BrFusion removed the netfilter/bridge/veth softirq hooks)")


if __name__ == "__main__":
    show_protocol()
    show_paths()
    show_cpu_saving()

#!/usr/bin/env python
"""Tour the simulated topology after deploying the paper's scenarios.

Deploys one pod per networking mode on a single testbed and prints the
resulting namespaces, devices, routes and NAT rules — the whole nested
stack at a glance.

Run:  python examples/topology_tour.py
"""

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.net.inspect import describe_testbed


def main() -> None:
    tb = default_testbed(seed=2, vms=2)
    build_scenario(tb, DeploymentMode.NAT, port=8080)
    build_scenario(tb, DeploymentMode.BRFUSION, port=8081)
    build_scenario(tb, DeploymentMode.HOSTLO, port=11211)
    print(describe_testbed(tb))


if __name__ == "__main__":
    main()

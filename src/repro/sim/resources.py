"""Shared resources: FIFO stores and cycle-accounted CPUs."""

from __future__ import annotations

import typing as t
from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.events import Event


class Store:
    """An unbounded-or-bounded FIFO queue connecting processes.

    ``put`` returns an event that succeeds when the item is accepted;
    ``get`` returns an event that succeeds with the next item.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._items: deque[t.Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, t.Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[t.Any, ...]:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: t.Any) -> Event:
        """Queue *item*; the returned event succeeds once it is stored."""
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """The returned event succeeds with the oldest available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                put_event, item = self._putters.popleft()
                self._items.append(item)
                put_event.succeed()
        elif self._putters:
            # Zero-capacity style rendezvous (capacity reached with no items
            # can only happen when capacity == queued putters’ backlog).
            put_event, item = self._putters.popleft()
            put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event


class _Job:
    __slots__ = ("cycles", "account", "done", "enqueued_at", "started_at")

    def __init__(self, cycles: float, account: str, done: Event, enqueued_at: float):
        self.cycles = cycles
        self.account = account
        self.done = done
        self.enqueued_at = enqueued_at
        self.started_at: float | None = None


class CpuResource:
    """A pool of identical cores serving cycle-denominated jobs FIFO.

    This is where all CPU-time accounting happens.  Each job carries an
    *account* label (e.g. ``"usr"``, ``"sys"``, ``"soft"``, ``"guest"``
    or a composite like ``"vm1/sys"``); on completion the busy seconds
    are credited to that account.  The experiments read the resulting
    breakdowns to reproduce the paper's CPU figures.

    Parameters
    ----------
    env: simulation environment.
    cores: number of identical cores.
    freq_hz: core frequency; cycles are converted to seconds with it.
    name: diagnostic label.
    """

    def __init__(
        self,
        env: Environment,
        cores: int = 1,
        freq_hz: float = 2.2e9,
        name: str = "cpu",
    ) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1: {cores!r}")
        if freq_hz <= 0:
            raise SimulationError(f"freq_hz must be positive: {freq_hz!r}")
        self.env = env
        self.cores = cores
        self.freq_hz = float(freq_hz)
        self.name = name
        self._idle = cores
        self._queue: deque[_Job] = deque()
        self._busy: dict[str, float] = {}
        self._window_start = env.now
        self._jobs_done = 0
        self._wait_total = 0.0

    # -- job submission -------------------------------------------------
    def execute(self, cycles: float, account: str = "usr") -> Event:
        """Submit a job of *cycles*; the event succeeds when it finishes."""
        if cycles < 0:
            raise SimulationError(f"negative cycles: {cycles!r}")
        done = Event(self.env)
        job = _Job(float(cycles), account, done, self.env.now)
        if self._idle > 0:
            self._start(job)
        else:
            self._queue.append(job)
        return done

    def seconds_for(self, cycles: float) -> float:
        """Service time of *cycles* on one core."""
        return cycles / self.freq_hz

    # -- internals --------------------------------------------------------
    def _start(self, job: _Job) -> None:
        self._idle -= 1
        job.started_at = self.env.now
        duration = job.cycles / self.freq_hz
        timeout = self.env.timeout(duration)
        timeout.callbacks.append(lambda _ev, job=job: self._finish(job))

    def _finish(self, job: _Job) -> None:
        assert job.started_at is not None
        duration = self.env.now - job.started_at
        self._busy[job.account] = self._busy.get(job.account, 0.0) + duration
        self._jobs_done += 1
        self._wait_total += job.started_at - job.enqueued_at
        self._idle += 1
        if self._queue:
            self._start(self._queue.popleft())
        job.done.succeed()

    # -- accounting -------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs waiting (excludes jobs in service)."""
        return len(self._queue)

    @property
    def busy_cores(self) -> int:
        return self.cores - self._idle

    def reset_accounting(self) -> None:
        """Zero the busy counters and restart the measurement window."""
        self._busy.clear()
        self._window_start = self.env.now
        self._jobs_done = 0
        self._wait_total = 0.0

    def busy_seconds(self, account: str | None = None) -> float:
        """Busy seconds, total or for one account, since the last reset."""
        if account is None:
            return sum(self._busy.values())
        return self._busy.get(account, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Copy of busy seconds per account since the last reset."""
        return dict(self._busy)

    def utilization(self, account: str | None = None) -> float:
        """Fraction of total core-time busy since the last reset."""
        elapsed = self.env.now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds(account) / (elapsed * self.cores)

    def mean_wait(self) -> float:
        """Average queueing delay of completed jobs since the last reset."""
        if self._jobs_done == 0:
            return 0.0
        return self._wait_total / self._jobs_done

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<CpuResource {self.name!r} cores={self.cores} "
            f"busy={self.busy_cores} queued={len(self._queue)}>"
        )

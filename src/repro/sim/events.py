"""Waitable events and generator-based processes.

The design follows the classic SimPy model: an :class:`Event` carries a
value, a success flag and a list of callbacks; triggering an event puts
it on the environment's heap, and when the environment pops it, the
callbacks run.  A :class:`Process` is itself an event that triggers when
its generator returns, so processes can wait on each other.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

PENDING = object()
"""Sentinel for the value of an event that has not been triggered."""


class Event:
    """A one-shot waitable with a value and callbacks.

    Parameters
    ----------
    env:
        The owning environment.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: t.Any = PENDING
        self._ok = True
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event got a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> t.Any:
        """The event's value (or the exception if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: t.Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will re-raise it."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine does not re-raise
        its exception at the top level when nobody waits on it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` units of simulated time from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, priority=True)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt *cause* is available as ``exc.cause``.
    """

    @property
    def cause(self) -> t.Any:
        return self.args[0] if self.args else None


class _InterruptEvent(Event):
    """Internal: delivery vehicle for :meth:`Process.interrupt`."""

    __slots__ = ("process",)

    def __init__(self, env: "Environment", process: "Process", cause: t.Any) -> None:
        super().__init__(env)
        self.process = process
        self.callbacks = [process._resume_interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        env._schedule(self, priority=True)


class Process(Event):
    """Wraps a generator; the process event triggers when it returns.

    A process generator yields :class:`Event` instances.  When a yielded
    event succeeds, its value is sent into the generator; when it fails,
    the exception is thrown into the generator (and may be caught there).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: t.Generator) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process expects a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self!r} not yet started; cannot interrupt")
        _InterruptEvent(self.env, self, cause)

    # -- engine plumbing -------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # finished before the interrupt was delivered
            return
        # Detach from whatever we were waiting on.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            self.env._schedule(self)
            return
        finally:
            self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded a non-event: {next_event!r} "
                f"(from {self._generator!r})"
            )
        if next_event.env is not self.env:
            raise SimulationError("process yielded an event from another environment")
        self._target = next_event
        if next_event.callbacks is not None:
            next_event.callbacks.append(self._resume)
        else:
            # Already processed: resume immediately via a priority event.
            resume = Event(self.env)
            resume.callbacks = [self._resume]
            resume._ok = next_event._ok
            resume._value = next_event._value
            self.env._schedule(resume, priority=True)


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: t.Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._done: list[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, t.Any]:
        return {ev: ev._value for ev in self._done}


class AllOf(_Condition):
    """Triggers when every given event has triggered.

    Its value is a dict mapping each event to its value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done.append(event)
        if len(self._done) == len(self._events):
            self.succeed(self._results())


class AnyOf(_Condition):
    """Triggers as soon as one of the given events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done.append(event)
        self.succeed(self._results())

"""Named, reproducible random streams.

Every stochastic component of the simulator draws from its own named
stream so that adding a new component never perturbs the draws of an
existing one (the classic "random stream discipline" of simulation
practice).  Streams are derived from a root seed and a stable hash of
the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_hash(name: str) -> int:
    """A platform-stable 32-bit hash of *name* (CRC32)."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Hands out :class:`numpy.random.Generator` objects by name.

    The same ``(seed, name)`` pair always yields an identical stream,
    independent of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for *name*, created on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, stable_hash(name)])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are all decorrelated from this one."""
        return RngRegistry(seed=(self.seed * 1_000_003 + stable_hash(salt)) % 2**63)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"

"""Deterministic discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: an
:class:`~repro.sim.engine.Environment` owns a simulated clock and an
event heap; *processes* are Python generators that ``yield`` events
(timeouts, store gets, CPU work items) and are resumed when those events
trigger.

The kernel is deliberately minimal but complete for this project:

* :class:`Environment` — clock, event heap, ``run``/``step``.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AnyOf`,
  :class:`AllOf` — waitables.
* :class:`Store` — FIFO message queue between processes.
* :class:`CpuResource` — a multi-core CPU with cycle-accurate FIFO
  service and per-account busy-time bookkeeping (``usr``/``sys``/
  ``soft``/``guest`` breakdowns in the experiments are produced here).
* :class:`RngRegistry` — named, reproducible ``numpy`` random streams.
"""

from repro.sim.engine import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.resources import CpuResource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuResource",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RngRegistry",
    "Store",
    "Timeout",
]

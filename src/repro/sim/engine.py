"""The discrete-event environment: clock, heap, run loop."""

from __future__ import annotations

import heapq
import typing as t
from itertools import count

from repro.errors import SimulationError
from repro.obs import tracer as _active_tracer
from repro.sim.events import Event, Process, Timeout

# Heap entries are (time, priority, seq, event); priority 0 beats 1 so
# "urgent" events (process initialization, interrupts) run before
# ordinary events scheduled at the same instant.
_NORMAL = 1
_URGENT = 0


class Environment:
    """Owns the simulated clock and the pending-event heap.

    Typical use::

        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.now == 1.0 and p.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Process | None = None
        # Snapshot the active tracer once: the event loop pays one
        # attribute load + branch per step, not a registry lookup.
        # Install a tracer (obs.install/obs.capture) *before* building
        # the environment for it to see this run.
        self.tracer = _active_tracer()
        if self.tracer.enabled:
            self.tracer.new_run()
            self.tracer.now = self._now

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """An event triggering *delay* time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: bool = False) -> None:
        heapq.heappush(
            self._heap,
            (self._now + delay, _URGENT if priority else _NORMAL, next(self._seq), event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        tracer = self.tracer
        span = None
        if tracer.enabled:
            tracer.now = when
            span = tracer.begin("sim.step", type(event).__name__)
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for callback in callbacks:
                callback(event)
        if span is not None:
            tracer.end(span, callbacks=len(callbacks or ()))
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error.
            raise event._value

    def run(self, until: float | Event | None = None) -> t.Any:
        """Run until the heap empties, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to exhaustion; a number — run to that time;
            an :class:`Event` — run until it triggers and return its value.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            stopped = []

            def _stop(event: Event) -> None:
                stopped.append(event)

            if sentinel.callbacks is None:
                return sentinel._value
            sentinel.callbacks.append(_stop)
            while self._heap and not stopped:
                self.step()
            if not stopped:
                raise SimulationError("run(until=event): schedule emptied first")
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} which is before now={self._now}"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        if self.tracer.enabled:
            self.tracer.now = horizon
        return None

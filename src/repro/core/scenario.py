"""Scenario builders for the paper's deployment configurations.

Two experiment families exist in §5:

* **client→server** (BrFusion evaluation, figs 2/4/5/6/7): the
  benchmark client on the host talks to a server either nested behind
  Docker NAT, behind a BrFusion pod NIC, or running natively in the VM
  (NoCont).
* **intra-pod** (Hostlo evaluation, figs 10–15): two containers of one
  pod talk over the pod's localhost — on the same node (SameNode),
  split across VMs over hostlo, over Docker Overlay, or over plain NAT
  between published ports (the paper's cross-VM "NAT" baseline).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.testbed import Testbed
from repro.errors import ConfigurationError, SchedulingError
from repro.net.addresses import Ipv4Address
from repro.net.namespace import NetworkNamespace
from repro.net.path import Datapath, resolve_path
from repro.orchestrator.pod import ContainerSpec, PodSpec


class DeploymentMode(enum.Enum):
    """The configurations compared across §5."""

    NAT = "nat"              # nested default (client→server)
    BRFUSION = "brfusion"    # §3 (client→server)
    NOCONT = "nocont"        # single-level virtualization (client→server)
    SAMENODE = "samenode"    # whole pod, one VM (intra-pod)
    HOSTLO = "hostlo"        # §4, split pod (intra-pod)
    OVERLAY = "overlay"      # Docker Overlay, split pod (intra-pod)
    NAT_CROSS = "nat_cross"  # published ports across VMs (intra-pod)

    @property
    def is_intra_pod(self) -> bool:
        return self in (
            DeploymentMode.SAMENODE,
            DeploymentMode.HOSTLO,
            DeploymentMode.OVERLAY,
            DeploymentMode.NAT_CROSS,
        )


@dataclasses.dataclass
class Scenario:
    """A built scenario: who talks to whom, and over which addresses."""

    name: str
    mode: DeploymentMode
    testbed: Testbed
    src_ns: NetworkNamespace
    src_addr: Ipv4Address
    dst_ns: NetworkNamespace
    dst_addr: Ipv4Address
    dst_port: int
    src_port: int = 40000

    def paths(self, proto: str = "tcp") -> tuple[Datapath, Datapath]:
        """(forward request path, reverse response path)."""
        forward = resolve_path(self.src_ns, self.dst_addr, self.dst_port, proto)
        reverse = resolve_path(self.dst_ns, self.src_addr, self.src_port, proto)
        return forward, reverse

    def ack_path(self, proto: str = "tcp") -> Datapath:
        """The kernel-level reverse path (TCP ACKs never touch the app)."""
        return resolve_path(
            self.dst_ns, self.src_addr, self.src_port, proto,
            include_endpoints=False,
        )

    @property
    def server_domain(self) -> str:
        return self.dst_ns.domain

    @property
    def client_domain(self) -> str:
        return self.src_ns.domain


def build_scenario(
    tb: Testbed,
    mode: DeploymentMode,
    image: str = "netperf",
    port: int = 12865,
) -> Scenario:
    """Deploy *mode*'s topology on *tb* and return the live scenario."""
    if mode is DeploymentMode.NOCONT:
        return _nocont(tb, port)
    if mode is DeploymentMode.NAT:
        return _nat(tb, image, port)
    if mode is DeploymentMode.BRFUSION:
        return _brfusion(tb, image, port)
    if mode is DeploymentMode.SAMENODE:
        return _samenode(tb, image, port)
    if mode is DeploymentMode.HOSTLO:
        return _split(tb, image, port, network="hostlo", mode=mode)
    if mode is DeploymentMode.OVERLAY:
        return _split(tb, image, port, network="overlay", mode=mode)
    if mode is DeploymentMode.NAT_CROSS:
        return _nat_cross(tb, image, port)
    raise ConfigurationError(f"unknown mode {mode!r}")  # pragma: no cover


# -- client→server scenarios ------------------------------------------------

def _first_node(tb: Testbed):
    nodes = list(tb.orchestrator.nodes.values())
    if not nodes:
        raise ConfigurationError("testbed has no enrolled VMs")
    return nodes[0]


def _nocont(tb: Testbed, port: int) -> Scenario:
    node = _first_node(tb)
    vm_ip = node.vm.primary_nic.primary_ip
    assert vm_ip is not None
    return Scenario(
        name=tb.unique_name("nocont"), mode=DeploymentMode.NOCONT, testbed=tb,
        src_ns=tb.client_ns, src_addr=tb.client_address,
        dst_ns=node.vm.ns, dst_addr=vm_ip, dst_port=port,
    )


def _server_pod(name: str, image: str, port: int) -> PodSpec:
    return PodSpec(
        name=name,
        containers=(
            ContainerSpec(
                "server", image, cpu=1, memory_gb=1,
                publish=(("tcp", port, port), ("udp", port, port)),
            ),
        ),
    )


def _nat(tb: Testbed, image: str, port: int) -> Scenario:
    node = _first_node(tb)
    dep = tb.deploy(_server_pod(tb.unique_name("nat"), image, port),
                    network="nat", node=node.name)
    addr, ext_port = dep.external_endpoints["server"]
    return Scenario(
        name=dep.name, mode=DeploymentMode.NAT, testbed=tb,
        src_ns=tb.client_ns, src_addr=tb.client_address,
        dst_ns=dep.namespace_of("server"), dst_addr=addr, dst_port=ext_port,
    )


def _brfusion(tb: Testbed, image: str, port: int) -> Scenario:
    node = _first_node(tb)
    dep = tb.deploy(_server_pod(tb.unique_name("brf"), image, port),
                    network="brfusion", node=node.name)
    addr, ext_port = dep.external_endpoints["server"]
    return Scenario(
        name=dep.name, mode=DeploymentMode.BRFUSION, testbed=tb,
        src_ns=tb.client_ns, src_addr=tb.client_address,
        dst_ns=dep.namespace_of("server"), dst_addr=addr, dst_port=ext_port,
    )


# -- intra-pod scenarios ----------------------------------------------------

def _pair_pod(name: str, image: str, cpu: float) -> PodSpec:
    return PodSpec(
        name=name,
        containers=(
            ContainerSpec("peer-a", image, cpu=cpu, memory_gb=1),
            ContainerSpec("peer-b", image, cpu=cpu, memory_gb=1),
        ),
    )


def _samenode(tb: Testbed, image: str, port: int) -> Scenario:
    node = _first_node(tb)
    dep = tb.deploy(_pair_pod(tb.unique_name("same"), image, cpu=1),
                    network="nat", node=node.name)
    return Scenario(
        name=dep.name, mode=DeploymentMode.SAMENODE, testbed=tb,
        src_ns=dep.namespace_of("peer-a"), src_addr=dep.intra_address("peer-a"),
        dst_ns=dep.namespace_of("peer-b"), dst_addr=dep.intra_address("peer-b"),
        dst_port=port,
    )


def _split(tb: Testbed, image: str, port: int, network: str,
           mode: DeploymentMode) -> Scenario:
    if len(tb.orchestrator.nodes) < 2:
        raise ConfigurationError(f"{mode.value} scenarios need two VMs")
    # Size containers so no single standard VM can host both: the
    # scheduler must split the pod (the capability §4 introduces).
    vcpus = min(n.cpu_capacity for n in tb.orchestrator.nodes.values())
    cpu = (vcpus // 2) + 1
    dep = tb.deploy(_pair_pod(tb.unique_name(network), image, cpu=cpu),
                    network=network, allow_split=True)
    if not dep.is_split:
        raise SchedulingError(
            f"{dep.name}: expected a cross-VM split (got {dep.placement})"
        )
    return Scenario(
        name=dep.name, mode=mode, testbed=tb,
        src_ns=dep.namespace_of("peer-a"), src_addr=dep.intra_address("peer-a"),
        dst_ns=dep.namespace_of("peer-b"), dst_addr=dep.intra_address("peer-b"),
        dst_port=port,
    )


def _nat_cross(tb: Testbed, image: str, port: int, src_port: int = 40000) -> Scenario:
    """Two single-container pods on different VMs, published ports.

    This is the only way the *default* stack serves a "pod" spanning
    VMs: talk to the other VM's published port through two NAT layers.
    """
    nodes = list(tb.orchestrator.nodes.values())
    if len(nodes) < 2:
        raise ConfigurationError("nat_cross scenarios need two VMs")
    node_a, node_b = nodes[0], nodes[1]
    dep_a = tb.deploy(_server_pod(tb.unique_name("natx-a"), image, src_port),
                      network="nat", node=node_a.name)
    dep_b = tb.deploy(_server_pod(tb.unique_name("natx-b"), image, port),
                      network="nat", node=node_b.name)
    addr_b, port_b = dep_b.external_endpoints["server"]
    addr_a, port_a = dep_a.external_endpoints["server"]
    return Scenario(
        name=f"{dep_a.name}->{dep_b.name}", mode=DeploymentMode.NAT_CROSS,
        testbed=tb,
        src_ns=dep_a.namespace_of("server"), src_addr=addr_a,
        dst_ns=dep_b.namespace_of("server"), dst_addr=addr_b,
        dst_port=port_b, src_port=port_a,
    )

"""The public API of the reproduction.

:class:`Testbed` assembles the whole simulated server — physical host,
VMM, orchestrator, benchmark client, transfer engine — in the shape of
the paper's §5.1 environment.  :mod:`repro.core.scenario` then builds
the six deployment configurations the evaluation compares:

===========  ==================================================
mode         meaning (paper terminology)
===========  ==================================================
NAT          nested default: Docker bridge+NAT inside the VM
BRFUSION     §3: per-pod NIC on the host bridge
NOCONT       no nested virtualization (app native in the VM)
SAMENODE     whole pod in one VM, localhost communication
HOSTLO       §4: pod split across VMs over the hostlo device
OVERLAY      pod split across VMs over Docker Overlay (VXLAN)
===========  ==================================================
"""

from repro.core.scenario import DeploymentMode, Scenario, build_scenario
from repro.core.testbed import Testbed

__all__ = ["DeploymentMode", "Scenario", "Testbed", "build_scenario"]

"""The assembled testbed: one object that owns the whole simulation.

Mirrors §5.1: a 12-core 2.2 GHz host; VMs with 5 vCPUs and 4 GB; the
benchmark client runs on dedicated host CPUs, attached to the host's
bridge.  The client gets its own CPU pool so its usr/sys time can be
reported separately (figs 14–15 show client CPU explicitly).
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError
from repro.metrics.cpu import CpuBreakdown, collect_breakdowns
from repro.net.addresses import Ipv4Address
from repro.net.costs import CostModel
from repro.net.namespace import NetworkNamespace
from repro.net.path import Datapath, resolve_path
from repro.net.transfer import TransferEngine
from repro.orchestrator.cluster import Deployment, Orchestrator
from repro.orchestrator.node import Node
from repro.orchestrator.pod import PodSpec
from repro.sim import CpuResource, Environment
from repro.virt.host import PhysicalHost
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Vmm


#: Steady background load of one idle guest (timer ticks, kworkers,
#: agents), in cores.  A pod split across two VMs pays this twice —
#: part of the guest-CPU increase figs 14/15 report for Hostlo.
VM_IDLE_CORES = 0.15


class Testbed:
    """The full simulated server plus benchmark client."""

    __test__ = False  # not a pytest collection target

    def __init__(
        self,
        seed: int = 0,
        host_cores: int = 12,
        client_cores: int = 2,
        freq_hz: float = 2.2e9,
        cost_model: CostModel | None = None,
    ) -> None:
        self.env = Environment()
        self.host = PhysicalHost(
            self.env, cores=host_cores, freq_hz=freq_hz, seed=seed
        )
        self.vmm = Vmm(self.host)
        self.orchestrator = Orchestrator(self.vmm)
        self.engine = TransferEngine(self.env, cost_model)
        self.engine.register_domain("host", self.host.cpu)
        self.client_cpu = CpuResource(
            self.env, cores=client_cores, freq_hz=freq_hz, name="client"
        )
        self.engine.register_domain("client", self.client_cpu)
        self.client_ns = self.host.create_attached_namespace(
            "client", domain="client"
        )
        self.rng = self.host.rng
        self._name_seq = 0

    def unique_name(self, prefix: str) -> str:
        """A testbed-local unique name (deterministic across runs)."""
        self._name_seq += 1
        return f"{prefix}-{self._name_seq}"

    # -- building blocks ---------------------------------------------------
    @property
    def client_address(self) -> Ipv4Address:
        addr = self.client_ns.device("eth0").primary_ip
        assert addr is not None
        return addr

    def add_vm(self, name: str, vcpus: int = 5, memory_gb: float = 4.0) -> Node:
        """Create a VM, enroll it as a node, register its CPU domain."""
        vm = self.vmm.create_vm(name, vcpus=vcpus, memory_gb=memory_gb)
        node = self.orchestrator.enroll(vm)
        self.engine.register_domain(vm.domain, vm.cpu)
        return node

    def deploy(self, spec: PodSpec, network: str = "nat",
               allow_split: bool = False, node: str | None = None) -> Deployment:
        return self.orchestrator.deploy_pod(
            spec, network=network, allow_split=allow_split, node=node
        )

    # -- path resolution ------------------------------------------------------
    def paths_between(
        self,
        src_ns: NetworkNamespace,
        src_addr: Ipv4Address,
        dst_ns: NetworkNamespace,
        dst_addr: Ipv4Address,
        dst_port: int,
        proto: str = "tcp",
        src_port: int = 40000,
    ) -> tuple[Datapath, Datapath]:
        """(forward, reverse) datapaths for one flow."""
        forward = resolve_path(src_ns, dst_addr, dst_port, proto)
        reverse = resolve_path(dst_ns, src_addr, src_port, proto)
        return forward, reverse

    # -- measurement windows -------------------------------------------------
    def reset_accounting(self) -> None:
        self.host.cpu.reset_accounting()
        self.client_cpu.reset_accounting()
        for vm in self.vmm.vms.values():
            vm.cpu.reset_accounting()
        for cpu in self.engine.kernel_threads().values():
            cpu.reset_accounting()
        for cpu in self.engine.softirq_contexts().values():
            cpu.reset_accounting()
        self._window_start = self.env.now

    def breakdowns(self) -> dict[str, CpuBreakdown]:
        """usr/sys/soft/guest per entity since the last reset.

        Host kernel-thread time (vhost workers, hostlo handler) is folded
        into the host's ``sys`` share, as the paper observes (§5.3.4).
        """
        window = self.env.now - getattr(self, "_window_start", 0.0)
        vm_cpus = {vm.domain: vm.cpu for vm in self.vmm.vms.values()}
        kthread_sys = sum(
            cpu.busy_seconds() for cpu in self.engine.kernel_threads().values()
        )
        vm_soft_extra = {
            name.removeprefix("softirq:"): cpu.busy_seconds()
            for name, cpu in self.engine.softirq_contexts().items()
        }
        breakdowns = collect_breakdowns(
            self.host.cpu, vm_cpus, window,
            extra={"client": self.client_cpu},
            host_extra_sys=kthread_sys,
            vm_soft_extra=vm_soft_extra,
        )
        # Idle-guest background load: every running VM keeps
        # VM_IDLE_CORES busy with housekeeping, billed as guest sys.
        idle_seconds = VM_IDLE_CORES * window
        idle_total = 0.0
        for domain in vm_cpus:
            bd = breakdowns[domain]
            breakdowns[domain] = CpuBreakdown(
                usr=bd.usr, sys=bd.sys + idle_seconds, soft=bd.soft,
                guest=bd.guest, window_s=bd.window_s, cores=bd.cores,
            )
            idle_total += idle_seconds
        host = breakdowns["host"]
        breakdowns["host"] = CpuBreakdown(
            usr=host.usr, sys=host.sys, soft=host.soft,
            guest=host.guest + idle_total,
            window_s=host.window_s, cores=host.cores,
        )
        return breakdowns

    def vm(self, name: str) -> VirtualMachine:
        return self.vmm.vm(name)

    def run(self, until: float | None = None) -> None:
        self.env.run(until=until)

    def spawn(self, generator: t.Generator):
        return self.env.process(generator)

    def check_domain(self, domain: str) -> None:
        """Raise unless *domain* has a registered CPU pool."""
        self.engine.cpu(domain)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Testbed t={self.env.now:.3f}s vms={sorted(self.vmm.vms)} "
            f"pods={sorted(self.orchestrator.deployments)}>"
        )


def default_testbed(seed: int = 0, vms: int = 2) -> Testbed:
    """A ready-to-use testbed with *vms* standard VMs (§5.1 sizing)."""
    if vms < 1:
        raise ConfigurationError("need at least one VM")
    tb = Testbed(seed=seed)
    for i in range(vms):
        tb.add_vm(f"vm{i}")
    return tb

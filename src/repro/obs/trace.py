"""The span tracer: begin/end spans on the *simulated* clock.

A :class:`Span` records one timed section of the simulated run — a
datapath stage, a message transfer, a device hot-plug — against the
simulation clock, with a parent link and free-form key/value
attributes.  Instant :meth:`Tracer.event` records mark points in time
(scheduler decisions, CNI attaches, forwarding hops).

Two properties make the tracer safe to leave wired into hot paths:

* **No-op fast path.**  The module-level :data:`NULL` tracer has
  ``enabled = False`` and does nothing; every instrumentation site
  guards itself with ``if tr.enabled:`` so a run without tracing pays
  one attribute load and one branch per site.
* **Per-category sampling.**  ``Tracer(sampling={"sim.step": 0.01})``
  keeps a deterministic 1-in-100 of that category (counter-based, no
  RNG, so runs stay reproducible) — full-rate experiments can trace
  the datapath without drowning in engine-step records.

The tracer does not own a clock.  The simulation engine pushes the
current time into :attr:`Tracer.now` as it processes events (see
:meth:`repro.sim.engine.Environment.step`), so spans opened anywhere —
including from code that has no environment reference, like the
scheduler — are stamped with the time of the run that is executing.
Optional *wall-clock self-profiling* additionally measures how much
real time each span cost the simulator itself.
"""

from __future__ import annotations

import time
import typing as t
from itertools import count


class Span:
    """One timed section: category, name, sim-clock interval, attrs.

    ``end`` stays ``None`` while the span is open; instant events are
    spans whose ``end`` equals their ``start``.  ``wall_s`` is the
    real-time cost of the section when self-profiling is on.
    """

    __slots__ = ("sid", "parent", "category", "name", "start", "end",
                 "attrs", "run", "wall_s")

    def __init__(self, sid: int, parent: int | None, category: str,
                 name: str, start: float, run: int,
                 attrs: dict[str, t.Any]) -> None:
        self.sid = sid
        self.parent = parent
        self.category = category
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs
        self.run = run
        self.wall_s: float | None = None

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Span {self.category}:{self.name} @{self.start:.6f}"
            f"+{self.duration:.6f}s>"
        )


class _SpanContext:
    """Context manager pairing one ``begin`` with its ``end``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span | None) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span | None:
        return self._span

    def __exit__(self, *exc: t.Any) -> None:
        self._tracer.end(self._span)


class Tracer:
    """Collects spans and events against the simulated clock.

    Parameters
    ----------
    sampling:
        Per-category keep rate in ``[0, 1]``; unlisted categories are
        kept at full rate.  Sampling is deterministic (every
        ``round(1/rate)``-ish record by running count, not RNG).
    self_profile:
        Also measure each span's wall-clock cost (``Span.wall_s``).
    """

    enabled = True

    def __init__(
        self,
        *,
        now: float = 0.0,
        sampling: t.Mapping[str, float] | None = None,
        self_profile: bool = False,
    ) -> None:
        #: Current simulated time; advanced by the simulation engine.
        self.now = float(now)
        self.self_profile = bool(self_profile)
        #: Simulation-run ordinal (one per Environment built while
        #: tracing); exporters group spans into one process per run.
        self.run_id = 0
        self.spans: list[Span] = []
        self.events: list[Span] = []
        self._sampling = {str(k): float(v) for k, v in (sampling or {}).items()}
        self._offered: dict[str, int] = {}
        self._sid = count(1)

    # -- configuration -----------------------------------------------------
    def set_sampling(self, category: str, rate: float) -> None:
        """Keep roughly ``rate`` of future *category* records."""
        self._sampling[category] = float(rate)

    def new_run(self) -> int:
        """Mark the start of a fresh simulation environment."""
        self.run_id += 1
        return self.run_id

    # -- recording ---------------------------------------------------------
    def _keep(self, category: str) -> bool:
        rate = self._sampling.get(category)
        if rate is None or rate >= 1.0:
            return True
        n = self._offered.get(category, 0) + 1
        self._offered[category] = n
        if rate <= 0.0:
            return False
        # Deterministic thinning: keep record n iff the integer part of
        # n*rate advanced — exactly `rate` of records in the long run.
        return int(n * rate) > int((n - 1) * rate)

    def begin(self, category: str, name: str, parent: Span | None = None,
              **attrs: t.Any) -> Span | None:
        """Open a span; returns ``None`` when sampled out."""
        if not self._keep(category):
            return None
        span = Span(
            next(self._sid),
            parent.sid if parent is not None else None,
            category, name, self.now, self.run_id, attrs,
        )
        if self.self_profile:
            span.wall_s = -time.perf_counter()
        self.spans.append(span)
        return span

    def end(self, span: Span | None, **attrs: t.Any) -> None:
        """Close *span* at the current simulated time (None is a no-op)."""
        if span is None:
            return
        span.end = self.now
        if attrs:
            span.attrs.update(attrs)
        if span.wall_s is not None and span.wall_s < 0:
            span.wall_s += time.perf_counter()

    def span(self, category: str, name: str, parent: Span | None = None,
             **attrs: t.Any) -> _SpanContext:
        """``with tr.span(...)``: begin/end around a non-yielding block.

        Generator-based simulation processes must use explicit
        :meth:`begin`/:meth:`end` instead — their sections interleave
        with other processes, so scoping cannot be lexical.
        """
        return _SpanContext(self, self.begin(category, name, parent, **attrs))

    def event(self, category: str, name: str, **attrs: t.Any) -> Span | None:
        """Record an instant event at the current simulated time."""
        if not self._keep(category):
            return None
        span = Span(next(self._sid), None, category, name, self.now,
                    self.run_id, attrs)
        span.end = span.start
        self.events.append(span)
        return span

    # -- inspection --------------------------------------------------------
    def spans_in(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def events_in(self, category: str) -> list[Span]:
        return [s for s in self.events if s.category == category]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._offered.clear()


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: t.Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op.

    Instrumentation sites are expected to guard themselves with
    ``if tr.enabled:`` so that a disabled run never builds spans at
    all; the methods below exist so unguarded calls stay harmless.
    """

    enabled = False
    spans: tuple[Span, ...] = ()
    events: tuple[Span, ...] = ()

    def __init__(self) -> None:
        self.now = 0.0
        self.run_id = 0

    def set_sampling(self, category: str, rate: float) -> None:
        pass

    def new_run(self) -> int:
        return 0

    def begin(self, category: str, name: str, parent: Span | None = None,
              **attrs: t.Any) -> None:
        return None

    def end(self, span: Span | None, **attrs: t.Any) -> None:
        pass

    def span(self, category: str, name: str, parent: Span | None = None,
             **attrs: t.Any) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, category: str, name: str, **attrs: t.Any) -> None:
        return None

    def spans_in(self, category: str) -> list[Span]:
        return []

    def events_in(self, category: str) -> list[Span]:
        return []

    def clear(self) -> None:
        pass


#: The shared disabled tracer installed by default.
NULL = NullTracer()

#: Anything instrumentation code may hold: a real or the null tracer.
TracerLike = t.Union[Tracer, NullTracer]

"""pcapng export for captured frames — files Wireshark opens.

The simulator's frame model carries addresses, ports, protocol and a
payload size; this module synthesizes standards-shaped bytes from it
(Ethernet II / IPv4 / UDP-or-TCP with a correct IP header checksum)
and writes them as a pcapng *capture file*:

* one Section Header Block,
* one Interface Description Block per :class:`~repro.net.capture
  .CapturePoint` (``if_name`` = the tapped device, nanosecond
  ``if_tsresol`` so sub-microsecond simulated timestamps survive),
* one Enhanced Packet Block per captured packet, in globally
  monotonic simulated-time order.

A minimal in-repo *parser* (:func:`read_pcapng`) round-trips the
writer's files so CI can assert structure without external tooling —
and incidentally reads any little-endian pcapng produced elsewhere.

Timestamps are simulated seconds; the capture session guarantees they
are strictly monotonic, and the nanosecond resolution here is exactly
the session's tick, so no two packets collapse onto one timestamp.
"""

from __future__ import annotations

import dataclasses
import pathlib
import struct
import typing as t

from repro.errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.capture import CapturedPacket, CapturePoint, CaptureSession

#: pcapng block types.
SHB_TYPE = 0x0A0D0D0A
IDB_TYPE = 0x00000001
EPB_TYPE = 0x00000006

BYTE_ORDER_MAGIC = 0x1A2B3C4D
LINKTYPE_ETHERNET = 1

#: ``if_tsresol`` = 9: timestamps are counts of 1e-9 s.
_TSRESOL = 9
_TS_PER_S = 10 ** _TSRESOL

#: Default captured-length cap (bytes of synthesized packet kept).
DEFAULT_SNAPLEN = 65535

_ETHERTYPE_IPV4 = 0x0800
_IP_PROTO = {"tcp": 6, "udp": 17}
_ETH_HEADER = 14
_IP_HEADER = 20
_UDP_HEADER = 8
_TCP_HEADER = 20


# -- byte synthesis --------------------------------------------------------
def _checksum(header: bytes) -> int:
    """RFC 1071 ones-complement sum over *header* (even length)."""
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def synthesize(packet: "CapturedPacket") -> bytes:
    """Ethernet/IPv4/L4 bytes for one captured packet.

    The payload is zero bytes of the frame's recorded size — the
    simulator never modelled payload *content*, only its length, and
    Wireshark cares about the headers.
    """
    src_mac = packet.src_mac if packet.src_mac is not None else 0x020000000001
    dst_mac = packet.dst_mac if packet.dst_mac is not None else 0xFFFFFFFFFFFF
    payload = bytes(packet.payload_bytes)

    if packet.proto == "udp":
        l4_len = _UDP_HEADER + len(payload)
        l4 = struct.pack(">HHHH", packet.src_port, packet.dst_port,
                         l4_len, 0) + payload
    else:
        # TCP (and anything else the frame model labels): a minimal
        # PSH|ACK segment.
        l4_len = _TCP_HEADER + len(payload)
        l4 = struct.pack(
            ">HHIIBBHHH", packet.src_port, packet.dst_port,
            packet.frame_id & 0xFFFFFFFF, 0, (_TCP_HEADER // 4) << 4,
            0x18, 65535, 0, 0,
        ) + payload

    total_len = _IP_HEADER + l4_len
    proto = _IP_PROTO.get(packet.proto, 253)
    ip_header = struct.pack(
        ">BBHHHBBHII", 0x45, 0, total_len, packet.frame_id & 0xFFFF,
        0, 64, proto, 0, packet.src_ip, packet.dst_ip,
    )
    ip_header = ip_header[:10] + struct.pack(
        ">H", _checksum(ip_header)) + ip_header[12:]

    eth_header = struct.pack(
        ">6s6sH",
        dst_mac.to_bytes(6, "big"), src_mac.to_bytes(6, "big"),
        _ETHERTYPE_IPV4,
    )
    return eth_header + ip_header + l4


# -- block plumbing --------------------------------------------------------
def _pad32(data: bytes) -> bytes:
    return data + b"\x00" * (-len(data) % 4)


def _option(code: int, value: bytes) -> bytes:
    return struct.pack("<HH", code, len(value)) + _pad32(value)


_END_OF_OPTIONS = struct.pack("<HH", 0, 0)


def _block(block_type: int, body: bytes) -> bytes:
    total = 12 + len(body)
    return (struct.pack("<II", block_type, total) + body
            + struct.pack("<I", total))


def _shb() -> bytes:
    body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
    body += _option(4, b"repro.obs.pcap")  # shb_userappl
    body += _END_OF_OPTIONS
    return _block(SHB_TYPE, body)


def _idb(name: str, snaplen: int) -> bytes:
    body = struct.pack("<HHI", LINKTYPE_ETHERNET, 0, snaplen)
    body += _option(2, name.encode("utf-8"))       # if_name
    body += _option(9, bytes([_TSRESOL]))          # if_tsresol
    body += _END_OF_OPTIONS
    return _block(IDB_TYPE, body)


def _epb(interface_id: int, ts: float, data: bytes, snaplen: int) -> bytes:
    units = round(ts * _TS_PER_S)
    captured = data[:snaplen] if snaplen else data
    body = struct.pack(
        "<IIIII", interface_id, (units >> 32) & 0xFFFFFFFF,
        units & 0xFFFFFFFF, len(captured), len(data),
    )
    body += _pad32(captured)
    return _block(EPB_TYPE, body)


# -- writing ---------------------------------------------------------------
def write_pcapng(
    capture: "CaptureSession | t.Iterable[CapturePoint]",
    path: str | pathlib.Path,
    snaplen: int = DEFAULT_SNAPLEN,
) -> pathlib.Path:
    """Write one pcapng file for a capture session (or bare points).

    Every capture point becomes an interface block (even if it matched
    no packets — an installed tap is part of the capture's shape);
    packet blocks are merged across points and written in simulated-
    time order, which the session guarantees is strictly monotonic.
    """
    points = (capture.points() if hasattr(capture, "points")
              else tuple(capture))
    path = pathlib.Path(path)
    chunks = [_shb()]
    merged: list[tuple[float, int, "CapturedPacket"]] = []
    for index, point in enumerate(points):
        chunks.append(_idb(point.name, snaplen))
        merged.extend((pkt.ts, index, pkt) for pkt in point.packets)
    merged.sort(key=lambda item: (item[0], item[1]))
    for ts, index, pkt in merged:
        chunks.append(_epb(index, ts, synthesize(pkt), snaplen))
    path.write_bytes(b"".join(chunks))
    return path


# -- reading ---------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PcapInterface:
    """One parsed Interface Description Block."""

    name: str
    linktype: int
    snaplen: int
    tsresol: int


@dataclasses.dataclass(frozen=True)
class PcapPacket:
    """One parsed Enhanced Packet Block."""

    interface_id: int
    ts: float
    captured_len: int
    original_len: int
    data: bytes


@dataclasses.dataclass(frozen=True)
class PcapFile:
    """A parsed pcapng section."""

    interfaces: tuple[PcapInterface, ...]
    packets: tuple[PcapPacket, ...]

    def interface(self, name: str) -> PcapInterface:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise ConfigurationError(f"no interface {name!r} in capture")

    def packets_on(self, name: str) -> tuple[PcapPacket, ...]:
        index = [i.name for i in self.interfaces].index(name)
        return tuple(p for p in self.packets if p.interface_id == index)


def _parse_options(data: bytes) -> dict[int, bytes]:
    options: dict[int, bytes] = {}
    offset = 0
    while offset + 4 <= len(data):
        code, length = struct.unpack_from("<HH", data, offset)
        offset += 4
        if code == 0:
            break
        options[code] = data[offset:offset + length]
        offset += length + (-length % 4)
    return options


def read_pcapng(path: str | pathlib.Path) -> PcapFile:
    """Parse a (little-endian) pcapng file written by :func:`write_pcapng`.

    Raises :class:`~repro.errors.ConfigurationError` on anything that
    is not a well-formed single-section little-endian pcapng — the CI
    smoke test's whole point.
    """
    raw = pathlib.Path(path).read_bytes()
    if len(raw) < 28 or struct.unpack_from("<I", raw, 0)[0] != SHB_TYPE:
        raise ConfigurationError(f"{path}: not a pcapng file (bad magic)")
    if struct.unpack_from("<I", raw, 8)[0] != BYTE_ORDER_MAGIC:
        raise ConfigurationError(
            f"{path}: unsupported byte order (expected little-endian)"
        )

    interfaces: list[PcapInterface] = []
    packets: list[PcapPacket] = []
    offset = 0
    while offset + 12 <= len(raw):
        block_type, total = struct.unpack_from("<II", raw, offset)
        if total < 12 or total % 4 or offset + total > len(raw):
            raise ConfigurationError(
                f"{path}: corrupt block length {total} at offset {offset}"
            )
        trailer = struct.unpack_from("<I", raw, offset + total - 4)[0]
        if trailer != total:
            raise ConfigurationError(
                f"{path}: block length mismatch at offset {offset}"
            )
        body = raw[offset + 8:offset + total - 4]
        if block_type == IDB_TYPE:
            linktype, _, snaplen = struct.unpack_from("<HHI", body, 0)
            options = _parse_options(body[8:])
            name = options.get(2, b"").decode("utf-8", "replace")
            tsresol = options.get(9, bytes([6]))[0]
            interfaces.append(
                PcapInterface(name, linktype, snaplen, tsresol)
            )
        elif block_type == EPB_TYPE:
            iface_id, ts_high, ts_low, cap_len, orig_len = \
                struct.unpack_from("<IIIII", body, 0)
            if iface_id >= len(interfaces):
                raise ConfigurationError(
                    f"{path}: packet references unknown interface "
                    f"{iface_id}"
                )
            tsresol = interfaces[iface_id].tsresol
            units = (ts_high << 32) | ts_low
            packets.append(PcapPacket(
                interface_id=iface_id,
                ts=units / (10 ** tsresol),
                captured_len=cap_len,
                original_len=orig_len,
                data=body[20:20 + cap_len],
            ))
        offset += total
    return PcapFile(tuple(interfaces), tuple(packets))

"""Distributed trace context: one id from HTTP submit to worker exit.

The sim-clock tracer (:mod:`repro.obs.trace`) answers "where did the
*simulated* cycles go" inside one engine run.  The trace *service*
needs the wall-clock complement: a job submitted over HTTP crosses an
asyncio loop, a priority queue, a circuit breaker, and a spawned
worker process — and the question "why did this job take 3.2 s" spans
all of them.  This module is the glue that makes those hops one story:

* :class:`TraceContext` — the propagated identity: a trace id, the
  parent span id (``None`` at the root), and a small string baggage
  map.  It is minted at the HTTP front door (or by ``submit`` itself
  for in-process callers), stamped into the journal envelope so crash
  recovery re-admits the job under its *original* trace id, and
  carried across the spawn boundary as a plain dict argument to the
  worker function.
* :class:`SpanRecord` — one wall-clock (``kind="service"``) or
  sim-clock (``kind="sim"``) span.  Service spans carry ``time.time``
  seconds; sim spans keep their simulated timestamps and hang off the
  worker span that produced them, which is what "the engine's
  timeline as a correlated child" means concretely.
* :class:`TraceStore` — a bounded in-memory store, newest traces win.
  The service keeps the last few hundred traces; the HTTP layer
  serves them on ``GET /jobs/<id>/trace``.
* :func:`connected` / :func:`critical_path` — the consumers: one
  checks the span set forms a single tree (exactly one root, every
  parent resolvable); the other carves the root span's wall time into
  contiguous phases (cache probe, admission, queue wait, breaker
  gate, worker, retry wait, publish) whose sum equals the end-to-end
  latency by construction — the ±5 % acceptance bound is then about
  clock sanity, not bookkeeping.

Nothing here imports the service: the dependency points the other way
(service → obs), same as the sim tracer.
"""

from __future__ import annotations

import dataclasses
import typing as t
import uuid

#: The HTTP header a trace id travels in, both directions.
TRACE_HEADER = "X-Trace-Id"

#: Span phase names the critical-path analyzer knows how to attribute.
#: Order is presentation order; every name is a top-level child of the
#: root ``job`` span and the phases tile ``[job.start, job.end]``.
PHASES = (
    "cache.probe",
    "admission",
    "queue.wait",
    "breaker.gate",
    "worker",
    "retry.wait",
    "publish",
)

#: Hard cap on spans kept per trace — a runaway sim capture must not
#: hold the service's memory hostage.
MAX_SPANS_PER_TRACE = 4096


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (w3c-style lower hex, halved)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return uuid.uuid4().hex[:8]


def sanitize_trace_id(raw: str | None) -> str | None:
    """A client-supplied trace id, or ``None`` if it is unusable.

    Accepts 4–64 chars of ``[a-zA-Z0-9_-]`` — permissive enough for
    foreign tracers, strict enough that an id can never smuggle header
    or label syntax back out through ``X-Trace-Id`` or ``/metrics``.
    """
    if not raw:
        return None
    raw = raw.strip()
    if not 4 <= len(raw) <= 64:
        return None
    if not all(c.isalnum() or c in "_-" for c in raw):
        return None
    return raw


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The propagated trace identity: id + parent span + baggage."""

    trace_id: str
    parent_span_id: str | None = None
    baggage: tuple[tuple[str, str], ...] = ()

    @classmethod
    def root(cls, trace_id: str | None = None,
             **baggage: str) -> "TraceContext":
        """A fresh root context (no parent span)."""
        return cls(
            trace_id=trace_id or new_trace_id(),
            parent_span_id=None,
            baggage=tuple(sorted((k, str(v)) for k, v in baggage.items())),
        )

    def child(self, span_id: str) -> "TraceContext":
        """The context a child of span *span_id* propagates onward."""
        return dataclasses.replace(self, parent_span_id=span_id)

    def bag(self) -> dict[str, str]:
        return dict(self.baggage)

    def to_dict(self) -> dict[str, t.Any]:
        """Plain data for a journal envelope or a spawn-boundary arg."""
        doc: dict[str, t.Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            doc["parent_span_id"] = self.parent_span_id
        if self.baggage:
            doc["baggage"] = dict(self.baggage)
        return doc

    @classmethod
    def from_dict(cls, doc: t.Mapping[str, t.Any]) -> "TraceContext":
        baggage = doc.get("baggage") or {}
        return cls(
            trace_id=str(doc["trace_id"]),
            parent_span_id=(str(doc["parent_span_id"])
                            if doc.get("parent_span_id") else None),
            baggage=tuple(sorted(
                (str(k), str(v)) for k, v in baggage.items())),
        )


@dataclasses.dataclass
class SpanRecord:
    """One span in a distributed trace (wall-clock or sim-clock).

    ``worker`` names the process row the span renders under in the
    Perfetto export: ``"http"``, ``"service"``, ``"shard-0"``, or the
    worker process (``"pid-1234"``) for sim spans.
    """

    trace_id: str
    span_id: str
    name: str
    start_s: float
    end_s: float
    parent_id: str | None = None
    kind: str = "service"
    worker: str = "service"
    tags: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_doc(self) -> dict[str, t.Any]:
        doc: dict[str, t.Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "kind": self.kind,
            "worker": self.worker,
        }
        if self.parent_id is not None:
            doc["parent_id"] = self.parent_id
        if self.tags:
            doc["tags"] = self.tags
        return doc

    @classmethod
    def from_doc(cls, doc: t.Mapping[str, t.Any]) -> "SpanRecord":
        return cls(
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            name=str(doc["name"]),
            start_s=float(doc["start_s"]),
            end_s=float(doc["end_s"]),
            parent_id=(str(doc["parent_id"])
                       if doc.get("parent_id") is not None else None),
            kind=str(doc.get("kind", "service")),
            worker=str(doc.get("worker", "service")),
            tags=dict(doc.get("tags") or {}),
        )


class TraceStore:
    """Bounded per-trace span storage; oldest whole traces evicted.

    Eviction is by trace, not by span: a half-evicted trace is worse
    than no trace (``connected`` would report it broken).  Insertion
    order doubles as age — the service touches a trace every time it
    adds a span, so "oldest" means least-recently-extended.
    """

    def __init__(self, keep: int = 256,
                 max_spans: int = MAX_SPANS_PER_TRACE) -> None:
        self.keep = max(1, int(keep))
        self.max_spans = max(16, int(max_spans))
        self._traces: dict[str, list[SpanRecord]] = {}
        self._dropped: dict[str, int] = {}

    def add(self, span: SpanRecord) -> None:
        spans = self._traces.get(span.trace_id)
        if spans is None:
            spans = self._traces[span.trace_id] = []
            self._evict()
        else:
            # Move-to-back: extending a trace refreshes its age.
            self._traces[span.trace_id] = self._traces.pop(span.trace_id)
        if len(spans) >= self.max_spans:
            self._dropped[span.trace_id] = (
                self._dropped.get(span.trace_id, 0) + 1)
            return
        spans.append(span)

    def extend(self, spans: t.Iterable[SpanRecord]) -> None:
        for span in spans:
            self.add(span)

    def spans(self, trace_id: str) -> list[SpanRecord]:
        return list(self._traces.get(trace_id, ()))

    def dropped(self, trace_id: str) -> int:
        return self._dropped.get(trace_id, 0)

    def trace_ids(self) -> tuple[str, ...]:
        return tuple(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def _evict(self) -> None:
        while len(self._traces) > self.keep:
            oldest = next(iter(self._traces))
            del self._traces[oldest]
            self._dropped.pop(oldest, None)


def connected(spans: t.Sequence[SpanRecord]) -> bool:
    """True when *spans* form one tree: exactly one root (a span with
    no parent) and every parent id resolving to a recorded span."""
    if not spans:
        return False
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    if len(roots) != 1:
        return False
    return all(span.parent_id in ids
               for span in spans if span.parent_id is not None)


def _root_span(spans: t.Sequence[SpanRecord]) -> SpanRecord | None:
    """The ``job`` span if present, else the (unique) parentless one."""
    jobs = [s for s in spans if s.name == "job" and s.kind == "service"]
    if jobs:
        return jobs[0]
    roots = [s for s in spans if s.parent_id is None]
    return roots[0] if len(roots) == 1 else None


def critical_path(spans: t.Sequence[SpanRecord]) -> dict[str, t.Any]:
    """Carve the job's end-to-end wall time into attributed phases.

    Components are summed from the service phase spans (see
    :data:`PHASES`); ``other`` is the unattributed remainder, so the
    components *always* sum to ``e2e_s`` exactly — the acceptance
    check "within 5 % of end-to-end latency" is then a statement
    about the recorded phases tiling the job, reported here as
    ``coverage`` (attributed fraction).  Sim spans are summarized
    (count, simulated seconds, cycles) rather than attributed: they
    happen *inside* the worker phase on a different clock.
    """
    root = _root_span(spans)
    if root is None:
        return {"e2e_s": 0.0, "components": {}, "coverage": 0.0,
                "span_count": len(spans), "sim": {"spans": 0}}
    e2e = root.duration_s
    components: dict[str, float] = {}
    for span in spans:
        if span.kind != "service" or span.name not in PHASES:
            continue
        key = span.name.replace(".", "_")
        components[key] = components.get(key, 0.0) + span.duration_s
    attributed = sum(components.values())
    components["other"] = max(0.0, e2e - attributed)
    sim_spans = [s for s in spans if s.kind == "sim"]
    sim: dict[str, t.Any] = {"spans": len(sim_spans)}
    if sim_spans:
        sim["sim_s"] = round(sum(s.duration_s for s in sim_spans), 9)
        cycles = sum(float(s.tags.get("cycles", 0) or 0)
                     for s in sim_spans)
        if cycles:
            sim["cycles"] = cycles
    return {
        "e2e_s": e2e,
        "components": {k: round(v, 9) for k, v in components.items()},
        "coverage": round(min(1.0, attributed / e2e), 6) if e2e > 0 else 1.0,
        "span_count": len(spans),
        "sim": sim,
    }


def sim_records_to_spans(
    records: t.Iterable[t.Mapping[str, t.Any]],
    *, trace_id: str, parent_span_id: str, worker: str,
    limit: int = 2048,
) -> tuple[list[SpanRecord], bool]:
    """Bridge sim-tracer records into distributed child spans.

    *records* are the plain dicts :func:`repro.obs.export.iter_records`
    produces inside the worker (shipped back over the spawn queue as
    data, never live objects).  Sim span ids are namespaced under the
    worker span id so two attempts of the same job cannot collide;
    parent links inside the sim tree are preserved, and sim roots hang
    off the worker span.  Returns ``(spans, truncated)``.
    """
    spans: list[SpanRecord] = []
    truncated = False
    for record in records:
        if len(spans) >= limit:
            truncated = True
            break
        sid = record.get("sid")
        if sid is None:
            continue
        run = record.get("run", 0)
        parent = record.get("parent")
        start = float(record.get("ts", 0.0))
        tags: dict[str, t.Any] = {"cat": record.get("cat", "")}
        attrs = record.get("attrs") or {}
        if "cycles" in attrs:
            tags["cycles"] = attrs["cycles"]
        spans.append(SpanRecord(
            trace_id=trace_id,
            span_id=f"{parent_span_id}.r{run}s{sid}",
            parent_id=(f"{parent_span_id}.r{run}s{parent}"
                       if parent is not None else parent_span_id),
            name=str(record.get("name", "?")),
            start_s=start,
            end_s=start + float(record.get("dur", 0.0) or 0.0),
            kind="sim",
            worker=worker,
            tags=tags,
        ))
    return spans, truncated

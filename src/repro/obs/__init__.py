"""Unified observability: span tracing, metrics, exporters.

This package is the instrumentation layer of the whole simulated
stack.  It sits *below* :mod:`repro.sim` (it depends only on the
stdlib and :mod:`repro.errors`), so every layer — the event engine,
the datapath, the VMM, the orchestrator — can record into it without
inverting the architecture.

One **active tracer** and one **active metrics registry** are held as
module globals.  By default the tracer is the shared no-op
:data:`NULL` instance; instrumentation sites guard themselves with
``if tr.enabled:`` so an untraced run pays almost nothing.  Enabling
tracing is one call::

    with obs.capture() as (tr, mx):
        tb = default_testbed(seed=1, vms=2)      # env adopts the tracer
        ...run experiments...
    export.write_chrome_trace(tr, "out/run.trace.json")

Install the tracer *before* building environments:
:class:`repro.sim.Environment` snapshots the active tracer at
construction (so its hot event loop does one attribute load, not a
registry lookup, per step).
"""

from __future__ import annotations

import contextlib
import typing as t

from repro.obs.distributed import (
    TRACE_HEADER,
    SpanRecord,
    TraceContext,
    TraceStore,
    connected,
    critical_path,
    new_span_id,
    new_trace_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL, NullTracer, Span, Tracer, TracerLike

_TRACER: TracerLike = NULL
_METRICS = MetricsRegistry()


def tracer() -> TracerLike:
    """The active tracer (the no-op :data:`NULL` unless installed)."""
    return _TRACER


def metrics() -> MetricsRegistry:
    """The active metrics registry (always a real registry)."""
    return _METRICS


def install(tracer: TracerLike | None = None,
            metrics: MetricsRegistry | None = None) -> None:
    """Swap in an active tracer and/or metrics registry."""
    global _TRACER, _METRICS
    if tracer is not None:
        _TRACER = tracer
    if metrics is not None:
        _METRICS = metrics


def uninstall() -> None:
    """Back to the defaults: no-op tracer, fresh registry."""
    global _TRACER, _METRICS
    _TRACER = NULL
    _METRICS = MetricsRegistry()


@contextlib.contextmanager
def capture(
    sampling: t.Mapping[str, float] | None = None,
    self_profile: bool = False,
) -> t.Iterator[tuple[Tracer, MetricsRegistry]]:
    """Install a fresh tracer + registry for the enclosed block.

    The previous tracer/registry are restored on exit, so captures
    nest and never leak into later runs (or other tests).
    """
    previous_tracer, previous_metrics = _TRACER, _METRICS
    fresh_tracer = Tracer(sampling=sampling, self_profile=self_profile)
    fresh_metrics = MetricsRegistry()
    install(fresh_tracer, fresh_metrics)
    try:
        yield fresh_tracer, fresh_metrics
    finally:
        install(previous_tracer, previous_metrics)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullTracer",
    "Span",
    "SpanRecord",
    "TRACE_HEADER",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "TracerLike",
    "capture",
    "connected",
    "critical_path",
    "install",
    "metrics",
    "new_span_id",
    "new_trace_id",
    "tracer",
    "uninstall",
]

"""Labeled counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named metrics, each
holding one time series per label combination — queue depths, per-stage
cycle totals, hot-plug latencies, scheduler decision counts.  The
design follows the Prometheus client model reduced to what the
simulator needs: get-or-create accessors, label sets as keyword
arguments, and plain-data snapshots for exporting.

Aggregation is constant-memory: histograms keep per-bucket counts (and
sum/min/max), never raw samples, so instrumenting a million-packet run
costs a few dicts.
"""

from __future__ import annotations

import bisect
import typing as t

from repro.errors import ConfigurationError

LabelKey = t.Tuple[t.Tuple[str, str], ...]

#: Default histogram buckets: latencies from 1 us to ~1 s (seconds).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 2.56e-1, 1.0,
)


def _key(labels: t.Mapping[str, t.Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format escaping: backslash, quote, newline.

    Order matters — escape the backslash first or the other two
    escapes get double-escaped.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (the round-trip guarantee)."""
    out: list[str] = []
    it = iter(value)
    for c in it:
        if c != "\\":
            out.append(c)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _label_text(key: LabelKey) -> str:
    """Render a (sorted) label key as ``{a="x",b="y"}``.

    ``_key`` already sorted the pairs, so the rendered order is stable
    for any insertion order; values are escaped so a hostile label
    (embedded quote, backslash, newline) cannot break the line format.
    """
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: t.Any) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount!r})"
            )
        key = _key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: t.Any) -> float:
        return self._values.get(_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        return dict(self._values)


class Gauge:
    """A point-in-time value per label set (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._peaks: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: t.Any) -> None:
        key = _key(labels)
        value = float(value)
        self._values[key] = value
        if value > self._peaks.get(key, float("-inf")):
            self._peaks[key] = value

    def add(self, amount: float, **labels: t.Any) -> None:
        key = _key(labels)
        value = self._values.get(key, 0.0) + amount
        self._values[key] = value
        if value > self._peaks.get(key, float("-inf")):
            self._peaks[key] = value

    def value(self, **labels: t.Any) -> float:
        return self._values.get(_key(labels), 0.0)

    def peak(self, **labels: t.Any) -> float:
        """The largest value ever set for this label set (0.0 if none)."""
        return self._peaks.get(_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        return dict(self._values)


class _HistSeries:
    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * (nbuckets + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram:
    """Fixed upper-bound buckets per label set (plus an overflow).

    ``quantile`` answers from bucket boundaries — exact enough for
    "p99 hot-plug latency is under 120 ms" style assertions.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: t.Sequence[float] = DEFAULT_BUCKETS,
                 help: str = "") -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._series: dict[LabelKey, _HistSeries] = {}

    def observe(self, value: float, **labels: t.Any) -> None:
        key = _key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.buckets))
        value = float(value)
        series.counts[bisect.bisect_left(self.buckets, value)] += 1
        series.count += 1
        series.total += value
        series.min = min(series.min, value)
        series.max = max(series.max, value)

    def count(self, **labels: t.Any) -> int:
        series = self._series.get(_key(labels))
        return series.count if series else 0

    def total(self, **labels: t.Any) -> float:
        series = self._series.get(_key(labels))
        return series.total if series else 0.0

    def mean(self, **labels: t.Any) -> float:
        series = self._series.get(_key(labels))
        if not series or series.count == 0:
            return 0.0
        return series.total / series.count

    def quantile(self, q: float, **labels: t.Any) -> float:
        """The bucket upper bound covering quantile *q* in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1]: {q!r}")
        series = self._series.get(_key(labels))
        if not series or series.count == 0:
            return 0.0
        target = q * series.count
        running = 0
        for i, upper in enumerate(self.buckets):
            running += series.counts[i]
            if running >= target:
                return upper
        return series.max

    def series(self) -> dict[LabelKey, dict[str, t.Any]]:
        out: dict[LabelKey, dict[str, t.Any]] = {}
        for key, s in self._series.items():
            out[key] = {
                "count": s.count,
                "sum": s.total,
                "min": s.min if s.count else 0.0,
                "max": s.max if s.count else 0.0,
                "buckets": dict(zip(self.buckets, s.counts)),
                "overflow": s.counts[-1],
            }
        return out


Metric = t.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named set of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: str) -> Metric | None:
        metric = self._metrics.get(name)
        if metric is not None and metric.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"not a {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get(name, "counter")
        if metric is None:
            metric = self._metrics[name] = Counter(name, help)
        return t.cast(Counter, metric)

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get(name, "gauge")
        if metric is None:
            metric = self._metrics[name] = Gauge(name, help)
        return t.cast(Gauge, metric)

    def histogram(self, name: str,
                  buckets: t.Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        metric = self._get(name, "histogram")
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets, help)
        return t.cast(Histogram, metric)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigurationError(f"unknown metric {name!r}") from None

    def snapshot(self) -> dict[str, t.Any]:
        """Plain-data dump: ``{name: {kind, series: {label-text: ...}}}``."""
        out: dict[str, t.Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            series = {
                _label_text(key) or "{}": value
                for key, value in metric.series().items()
            }
            out[name] = {"kind": metric.kind, "series": series}
        return out

    def render_text(self) -> str:
        """Prometheus-flavoured plain text, one line per series.

        Histograms follow the real exposition format: ``_bucket``
        counts are *cumulative* in ``le`` order, closed by the
        mandatory ``le="+Inf"`` bucket that equals ``_count``.
        """
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            lines.append(f"# TYPE {name} {metric.kind}")
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Histogram):
                for key, data in sorted(metric.series().items()):
                    label = _label_text(key)
                    lines.append(f"{name}_count{label} {data['count']}")
                    lines.append(f"{name}_sum{label} {data['sum']:.9g}")
                    running = 0
                    for upper, n in data["buckets"].items():
                        running += n
                        with_le = tuple(sorted((*key, ("le", f"{upper:g}"))))
                        lines.append(
                            f"{name}_bucket{_label_text(with_le)} {running}")
                    with_inf = tuple(sorted((*key, ("le", "+Inf"))))
                    lines.append(
                        f"{name}_bucket{_label_text(with_inf)} "
                        f"{data['count']}")
            else:
                for key, value in sorted(metric.series().items()):
                    lines.append(f"{name}{_label_text(key)} {value:.9g}")
        return "\n".join(lines) + ("\n" if lines else "")


def _merge_hist_series(into: dict[str, t.Any],
                       data: t.Mapping[str, t.Any]) -> None:
    into["count"] += data["count"]
    into["sum"] += data["sum"]
    if data["count"]:
        have = into["count"] > data["count"]  # non-empty before this merge
        into["min"] = min(into["min"], data["min"]) if have else data["min"]
        into["max"] = max(into["max"], data["max"]) if have else data["max"]
    for upper, n in data["buckets"].items():
        into["buckets"][upper] = into["buckets"].get(upper, 0) + n
    into["overflow"] += data["overflow"]


def merge_snapshots(
    snapshots: t.Iterable[t.Mapping[str, t.Any]],
) -> dict[str, t.Any]:
    """Combine several :meth:`MetricsRegistry.snapshot` dumps into one.

    This is how the campaign runner aggregates metrics across worker
    processes: each worker ships its registry's plain-data snapshot
    back over the result queue, and the union is merged here without
    ever reconstructing live metric objects.  Per series: counters add,
    gauges keep the maximum (the campaign-wide peak — per-worker "last
    value" has no meaning once runs interleave), histograms add their
    bucket counts and combine sum/min/max.

    Merging a name recorded with different kinds raises
    :class:`ConfigurationError`, mirroring the registry's own check.
    """
    merged: dict[str, t.Any] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            kind = data["kind"]
            target = merged.get(name)
            if target is None:
                target = merged[name] = {"kind": kind, "series": {}}
            elif target["kind"] != kind:
                raise ConfigurationError(
                    f"cannot merge metric {name!r}: {target['kind']} vs {kind}"
                )
            series = target["series"]
            for label, value in data["series"].items():
                if kind == "histogram":
                    if label not in series:
                        series[label] = {
                            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                            "buckets": {}, "overflow": 0,
                        }
                    _merge_hist_series(series[label], value)
                elif kind == "counter":
                    series[label] = series.get(label, 0.0) + value
                else:  # gauge
                    prior = series.get(label)
                    series[label] = value if prior is None else max(prior,
                                                                    value)
    return dict(sorted(merged.items()))


def render_snapshot(snapshot: t.Mapping[str, t.Any]) -> str:
    """Prometheus-flavoured text for a (possibly merged) snapshot."""
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data["kind"]
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            for label, series in sorted(data["series"].items()):
                prefix = "" if label == "{}" else label
                lines.append(f"{name}_count{prefix} {series['count']}")
                lines.append(f"{name}_sum{prefix} {series['sum']:.9g}")
        else:
            for label, value in sorted(data["series"].items()):
                prefix = "" if label == "{}" else label
                lines.append(f"{name}{prefix} {value:.9g}")
    return "\n".join(lines) + ("\n" if lines else "")

"""Trace exporters: JSON-Lines, Chrome ``trace_event``, text summary.

* :func:`write_spans_jsonl` — one JSON object per span/event, the
  machine-readable archive format.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON object
  format; the file opens directly in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``.  Each simulation environment becomes a
  "process"; each CPU domain (or category, for spans without a domain
  attribute) becomes a "thread", so concurrent transfers render as
  parallel tracks.
* :func:`distributed_chrome_trace` — the service's merged distributed
  trace (``GET /jobs/<id>/trace``) as trace_event JSON: one Perfetto
  "process" row per participant (``http``, ``service``, each shard,
  each worker pid), the wall-clock phase spans on one track and the
  worker's sim-time spans on a sibling track, offset to nest inside
  the worker span that produced them.
* :func:`summary` — a plain-text top-N table by total simulated time,
  the quick where-did-the-cycles-go answer.

Timestamps are simulated seconds; the Chrome export scales them to the
format's microseconds.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

from repro.obs.metrics import Counter, MetricsRegistry, _label_text
from repro.obs.trace import NullTracer, Span, Tracer

TracerLike = t.Union[Tracer, NullTracer]

#: Simulated seconds → trace_event microseconds.
_US = 1e6


def span_record(span: Span, kind: str = "span") -> dict[str, t.Any]:
    """One span/event as a JSON-ready dict."""
    record: dict[str, t.Any] = {
        "kind": kind,
        "sid": span.sid,
        "cat": span.category,
        "name": span.name,
        "ts": span.start,
        "dur": span.duration,
        "run": span.run,
    }
    if span.parent is not None:
        record["parent"] = span.parent
    if span.wall_s is not None and span.wall_s >= 0:
        record["wall_s"] = span.wall_s
    if span.attrs:
        record["attrs"] = span.attrs
    return record


def iter_records(tracer: TracerLike) -> t.Iterator[dict[str, t.Any]]:
    """All spans and events, ordered by (run, start time, id)."""
    merged = [(s, "span") for s in tracer.spans]
    merged.extend((e, "event") for e in tracer.events)
    merged.sort(key=lambda pair: (pair[0].run, pair[0].start, pair[0].sid))
    for span, kind in merged:
        yield span_record(span, kind)


def write_spans_jsonl(tracer: TracerLike, path: str | pathlib.Path) -> pathlib.Path:
    """Write the JSON-Lines span dump; returns the path."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for record in iter_records(tracer):
            fh.write(json.dumps(record, default=str))
            fh.write("\n")
    return path


def _track_of(span: Span) -> str:
    domain = span.attrs.get("domain")
    return str(domain) if domain is not None else span.category


def chrome_trace(tracer: TracerLike) -> dict[str, t.Any]:
    """The trace as a Chrome ``trace_event`` JSON object."""
    events: list[dict[str, t.Any]] = []
    tids: dict[str, int] = {}
    named_runs: set[int] = set()

    def tid_for(run: int, track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": run, "tid": tid,
                "args": {"name": track},
            })
        return tid

    def name_run(run: int) -> None:
        if run not in named_runs:
            named_runs.add(run)
            events.append({
                "ph": "M", "name": "process_name", "pid": run,
                "args": {"name": f"sim-run-{run}"},
            })

    for span in tracer.spans:
        name_run(span.run)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": span.run,
            "tid": tid_for(span.run, _track_of(span)),
            "args": {k: _arg(v) for k, v in span.attrs.items()},
        })
    for event in tracer.events:
        name_run(event.run)
        events.append({
            "name": event.name,
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": event.start * _US,
            "pid": event.run,
            "tid": tid_for(event.run, _track_of(event)),
            "args": {k: _arg(v) for k, v in event.attrs.items()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _arg(value: t.Any) -> t.Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def write_chrome_trace(tracer: TracerLike,
                       path: str | pathlib.Path) -> pathlib.Path:
    """Write the Chrome/Perfetto trace JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(tracer)))
    return path


def records_chrome_trace(
    records: t.Iterable[t.Mapping[str, t.Any]],
    run_names: t.Mapping[int, str] | None = None,
) -> dict[str, t.Any]:
    """A Chrome ``trace_event`` object built from plain span records.

    The records are the dicts produced by :func:`span_record` /
    :func:`iter_records` — i.e. what a campaign worker ships back over
    a queue, or what a ``.spans.jsonl`` file contains.  Working on
    plain data instead of a live :class:`Tracer` is what makes traces
    *mergeable*: the campaign runner re-numbers each worker's ``run``
    ids into one namespace, concatenates the records, and exports the
    union as a single file with one Perfetto "process" per run.

    ``run_names`` optionally labels runs (``{run: "fig04@quick/r1"}``);
    unlisted runs fall back to ``sim-run-<n>``.
    """
    names = dict(run_names or {})
    events: list[dict[str, t.Any]] = []
    tids: dict[str, int] = {}
    named_runs: set[int] = set()

    def tid_for(run: int, track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": run, "tid": tid,
                "args": {"name": track},
            })
        return tid

    for record in records:
        run = int(record.get("run", 0))
        if run not in named_runs:
            named_runs.add(run)
            events.append({
                "ph": "M", "name": "process_name", "pid": run,
                "args": {"name": names.get(run, f"sim-run-{run}")},
            })
        attrs = record.get("attrs") or {}
        track = str(attrs["domain"]) if "domain" in attrs else record["cat"]
        base = {
            "name": record["name"],
            "cat": record["cat"],
            "ts": float(record["ts"]) * _US,
            "pid": run,
            "tid": tid_for(run, track),
            "args": {k: _arg(v) for k, v in attrs.items()},
        }
        if record.get("kind") == "event":
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({
                **base, "ph": "X", "dur": float(record.get("dur", 0.0)) * _US,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_records_chrome_trace(
    records: t.Iterable[t.Mapping[str, t.Any]],
    path: str | pathlib.Path,
    run_names: t.Mapping[int, str] | None = None,
) -> pathlib.Path:
    """Write :func:`records_chrome_trace` output; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(records_chrome_trace(records, run_names)))
    return path


def distributed_chrome_trace(
    trace_doc: t.Mapping[str, t.Any],
) -> dict[str, t.Any]:
    """A service distributed trace as a Chrome ``trace_event`` object.

    *trace_doc* is what ``TraceService.trace(job_id)`` (and therefore
    ``GET /jobs/<id>/trace``) returns: plain span docs with wall-clock
    ``start_s``/``end_s`` for ``kind="service"`` spans and sim-time
    seconds for ``kind="sim"`` spans.

    Layout: one "process" per distinct ``worker`` (``http``/``service``
    wall phases, ``shard-N`` queue/gate spans, ``pid-NNNN`` sim spans),
    so the cross-process story reads as parallel rows exactly like the
    real deployment.  Wall timestamps are re-based to the trace's first
    span; sim spans are offset by their worker span's wall start so the
    engine's timeline renders *inside* the worker execution that
    produced it, sharing one clock axis.
    """
    spans = [dict(span) for span in trace_doc.get("spans", [])]
    events: list[dict[str, t.Any]] = []
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    wall_starts = [s["start_s"] for s in spans if s.get("kind") != "sim"]
    t0 = min(wall_starts) if wall_starts else 0.0
    by_id = {s["span_id"]: s for s in spans}

    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}

    def pid_for(worker: str) -> int:
        pid = pids.get(worker)
        if pid is None:
            pid = pids[worker] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": worker},
            })
            events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "args": {"sort_index": pid},
            })
        return pid

    def tid_for(pid: int, track: str) -> int:
        tid = tids.get((pid, track))
        if tid is None:
            tid = tids[(pid, track)] = (
                len([k for k in tids if k[0] == pid]) + 1
            )
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return tid

    def wall_offset_s(span: t.Mapping[str, t.Any]) -> float:
        # Sim span ids are namespaced "<workerspan>.r<run>s<sid>"; the
        # prefix names the wall-clock worker span they nest under.
        anchor = by_id.get(str(span["span_id"]).split(".", 1)[0])
        return float(anchor["start_s"]) if anchor else t0

    for span in spans:
        sim = span.get("kind") == "sim"
        worker = str(span.get("worker", "service"))
        pid = pid_for(worker)
        tid = tid_for(pid, "sim-time" if sim else "wall")
        start = float(span["start_s"])
        ts = (start - t0 if not sim
              else wall_offset_s(span) - t0 + start)
        duration = max(0.0, float(span["end_s"]) - start)
        args: dict[str, t.Any] = {
            k: _arg(v) for k, v in (span.get("tags") or {}).items()
        }
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        base = {
            "name": span["name"],
            "cat": "sim" if sim else "service",
            "ts": ts * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if duration <= 0.0 and not sim:
            events.append({**base, "ph": "i", "s": "p"})
        else:
            events.append({**base, "ph": "X", "dur": duration * _US})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_distributed_chrome_trace(
    trace_doc: t.Mapping[str, t.Any],
    path: str | pathlib.Path,
) -> pathlib.Path:
    """Write :func:`distributed_chrome_trace` output; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(distributed_chrome_trace(trace_doc)))
    return path


def write_records_jsonl(
    records: t.Iterable[t.Mapping[str, t.Any]],
    path: str | pathlib.Path,
) -> pathlib.Path:
    """Write plain span records as JSON-Lines; returns the path."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for record in records:
            fh.write(json.dumps(record, default=str))
            fh.write("\n")
    return path


def summary(tracer: TracerLike, top: int = 10,
            metrics: MetricsRegistry | None = None) -> str:
    """A top-N table of span groups by total simulated time.

    Groups by ``(category, name)`` and reports count, total simulated
    seconds, total cycles (when spans carry a ``cycles`` attribute) and
    total self-profiled wall seconds (when enabled).

    When a *metrics* registry is given, a counter table follows —
    including every labelled series (``net.frames_dropped{reason=...}``
    and friends), which the span table alone can never show.
    """
    groups: dict[tuple[str, str], dict[str, float]] = {}
    for span in tracer.spans:
        g = groups.setdefault(
            (span.category, span.name),
            {"count": 0, "sim_s": 0.0, "cycles": 0.0, "wall_s": 0.0},
        )
        g["count"] += 1
        g["sim_s"] += span.duration
        g["cycles"] += float(span.attrs.get("cycles", 0.0) or 0.0)
        if span.wall_s is not None and span.wall_s >= 0:
            g["wall_s"] += span.wall_s
    n_events = len(tracer.events)
    if not groups:
        lines = [f"(no spans recorded; {n_events} events)"]
        lines.extend(_counter_lines(metrics, top))
        return "\n".join(lines)

    ranked = sorted(
        groups.items(), key=lambda item: item[1]["sim_s"], reverse=True
    )[:top]
    has_cycles = any(g["cycles"] > 0 for _, g in ranked)
    has_wall = any(g["wall_s"] > 0 for _, g in ranked)

    header = ["span", "count", "sim total"]
    if has_cycles:
        header.append("cycles")
    if has_wall:
        header.append("wall total")
    rows = []
    for (category, name), g in ranked:
        row = [f"{category}:{name}", str(int(g["count"])),
               f"{g['sim_s'] * 1e6:.1f} us"]
        if has_cycles:
            row.append(f"{g['cycles']:.0f}")
        if has_wall:
            row.append(f"{g['wall_s'] * 1e3:.2f} ms")
        rows.append(row)

    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]
    lines = [
        f"== trace summary: top {len(rows)} of {len(groups)} span groups "
        f"({len(tracer.spans)} spans, {n_events} events) =="
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    lines.extend(_counter_lines(metrics, top))
    return "\n".join(lines)


def _counter_lines(metrics: MetricsRegistry | None, top: int) -> list[str]:
    """A top-N counter table, one row per (possibly labelled) series.

    Labelled series are first-class rows — ``net.frames_dropped``
    incremented with ``reason=...`` labels shows up as one row per
    reason, not zero rows (the bug this fixes).
    """
    if metrics is None:
        return []
    series: list[tuple[str, float]] = []
    for name in metrics.names():
        metric = metrics.get(name)
        if not isinstance(metric, Counter):
            continue
        for key, value in metric.series().items():
            series.append((f"{name}{_label_text(key)}", value))
    if not series:
        return []
    ranked = sorted(series, key=lambda item: (-item[1], item[0]))[:top]
    width = max(len("counter"), *(len(name) for name, _ in ranked))
    lines = [
        "",
        f"== counters: top {len(ranked)} of {len(series)} series ==",
        f"{'counter'.ljust(width)}  value",
        f"{'-' * width}  -----",
    ]
    for name, value in ranked:
        lines.append(f"{name.ljust(width)}  {value:g}")
    return lines

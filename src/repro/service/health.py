"""Service health: standing invariants behind ``GET /healthz``.

The same move :mod:`repro.health.invariants` makes for the network —
pure check functions returning :class:`~repro.health.invariants.
Violation` records — applied to the service's own accounting.  Checks
never mutate; the HTTP layer turns a non-empty list into a 503.

What must always hold on a live service:

* every shard loop task is alive (a crashed loop strands its queue),
* job accounting conserves: every job is in exactly one state, and
  every terminal job completed exactly once (the exactly-once ledger),
* the backlog respects the admission bound it was admitted under,
* terminal jobs carry what their state promises (a result when done,
  an error when failed),
* every shard breaker is internally consistent (an open breaker knows
  when it opened; a closed one is under its failure threshold),
* no SLO burn-rate alert is firing (``service.slo`` — the one *soft*
  check here: it clears itself as the windows roll; see
  :mod:`repro.service.slo`).
"""

from __future__ import annotations

import typing as t

from repro.health.invariants import Violation
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service.jobs import DONE, FAILED, QUEUED, RUNNING, TERMINAL

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.service.core import TraceService


def shard_loops_alive(service: "TraceService") -> list[Violation]:
    violations = []
    for task in service.shard_tasks():
        if task.done() and not task.cancelled():
            exc = task.exception()
            violations.append(Violation(
                check="service.shard_alive",
                subject=task.get_name(),
                detail=f"shard loop exited: {exc!r}",
            ))
    return violations


def accounting_conserved(service: "TraceService") -> list[Violation]:
    violations = []
    counts = service.counts()
    if sum(counts.values()) != len(service.jobs()):
        violations.append(Violation(
            check="service.accounting",
            subject="jobs",
            detail=f"state counts {counts} do not cover every job",
        ))
    for job in service.jobs():
        expected = 1 if job.state in TERMINAL else 0
        if job.completions != expected:
            violations.append(Violation(
                check="service.exactly_once",
                subject=job.id,
                detail=(f"{job.state} job completed {job.completions} "
                        f"times (expected {expected})"),
            ))
    return violations


def backlog_bounded(service: "TraceService") -> list[Violation]:
    counts = service.counts()
    backlog = counts[QUEUED] + counts[RUNNING]
    if backlog > service.admission.capacity:
        return [Violation(
            check="service.backlog",
            subject="queue",
            detail=(f"backlog {backlog} exceeds admitted capacity "
                    f"{service.admission.capacity}"),
        )]
    return []


def terminal_jobs_complete(service: "TraceService") -> list[Violation]:
    violations = []
    for job in service.jobs():
        if job.state == DONE and job.result is None:
            violations.append(Violation(
                check="service.result_present",
                subject=job.id,
                detail="done job carries no result",
            ))
        if job.state == FAILED and job.error is None:
            violations.append(Violation(
                check="service.error_present",
                subject=job.id,
                detail="failed job carries no error",
            ))
    return violations


def breakers_consistent(service: "TraceService") -> list[Violation]:
    violations = []
    for breaker in service.breakers:
        if breaker.state not in (CLOSED, OPEN, HALF_OPEN):
            violations.append(Violation(
                check="service.breaker",
                subject=breaker.name,
                detail=f"unknown breaker state {breaker.state!r}",
            ))
            continue
        if breaker.state == OPEN and breaker.opened_at is None:
            violations.append(Violation(
                check="service.breaker",
                subject=breaker.name,
                detail="open breaker has no opened_at timestamp",
            ))
        if (breaker.state == CLOSED and breaker.consecutive_failures
                >= breaker.config.failure_threshold):
            violations.append(Violation(
                check="service.breaker",
                subject=breaker.name,
                detail=(f"closed breaker holds "
                        f"{breaker.consecutive_failures} consecutive "
                        f"failures (threshold "
                        f"{breaker.config.failure_threshold})"),
            ))
    return violations


def slo_within_budget(service: "TraceService") -> list[Violation]:
    """The ``service.slo`` check: no objective's multi-window burn
    alert may be firing.  Unlike the hard invariants above this one is
    *operational* — it turns ``/healthz`` red while the error budget
    is burning faster than the alert threshold in both windows, and
    clears itself as the windows roll past the bad period."""
    slo = getattr(service, "slo", None)
    if slo is None:
        return []
    violations = []
    for objective in slo.objectives():
        if slo.alerting(objective):
            config = slo.config
            violations.append(Violation(
                check="service.slo",
                subject=objective,
                detail=(
                    f"burn rate over {config.burn_threshold:g}x in both "
                    f"windows ({config.short_window_s:g}s short / "
                    f"{config.long_window_s:g}s long): "
                    f"short={slo.burn_rate(objective, config.short_window_s):.2f} "
                    f"long={slo.burn_rate(objective, config.long_window_s):.2f}"
                ),
            ))
    return violations


ALL_CHECKS = (
    shard_loops_alive,
    accounting_conserved,
    backlog_bounded,
    terminal_jobs_complete,
    breakers_consistent,
    slo_within_budget,
)


def check_service(service: "TraceService") -> list[Violation]:
    """Run every standing invariant; empty list means healthy."""
    violations: list[Violation] = []
    for check in ALL_CHECKS:
        violations.extend(check(service))
    return violations

"""A hand-rolled asyncio HTTP/1.1 + SSE front end for the service.

No third-party web framework: the dependency budget is the stdlib, and
the API surface is small enough that ``asyncio.start_server`` plus a
~hundred-line request parser is the honest cost.  One connection = one
request (``Connection: close``), which keeps the parser trivial and is
plenty for a campaign driver; SSE streams hold their connection open
until the job's terminal event, exactly as the protocol intends.

Routes:

====== ========================== =======================================
POST   /jobs                      submit ``{"kind", "payload",
                                  "client", "priority", "deadline_s"}``
                                  → job summary (429 + Retry-After when
                                  refused, 503 + Retry-After while the
                                  service drains)
GET    /jobs                      service status + job listing
GET    /jobs/<id>                 one job's status document
POST   /jobs/<id>/cancel          cancel queued/running work
GET    /jobs/<id>/stream          SSE: replayed + live lifecycle events
GET    /healthz                   200/503 from repro.service.health
GET    /metrics                   text exposition of the obs registry
====== ========================== =======================================

SSE framing is ``id: <seq>`` / ``event: <name>`` / ``data: <json>``
per event; the ``id`` is the job-local sequence number so a client
reconnecting mid-stream dedupes replayed history.  A client that goes
away mid-stream is noticed by awaiting its half of the socket for EOF
concurrently with the event queue — the handler unsubscribes and the
job keeps running (disconnection is not cancellation).
"""

from __future__ import annotations

import asyncio
import json
import typing as t

from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.health import check_service
from repro.service.jobs import TERMINAL, JobEvent

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.service.core import TraceService

MAX_BODY = 1 << 20  # 1 MiB of JSON is already an abuse of this API

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(ServiceError):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpServer:
    """The asyncio server owning one :class:`TraceService` front end."""

    def __init__(self, service: "TraceService", *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Bind and listen; returns the actual port (for ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, headers = await self._read_head(reader)
            body = await self._read_body(reader, headers)
            await self._route(method, path, body, reader, writer)
        except HttpError as exc:
            await self._respond(writer, exc.status, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond(writer, 500, {"error": repr(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict[str, str]]:
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    @staticmethod
    async def _read_body(reader: asyncio.StreamReader,
                         headers: dict[str, str]) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise HttpError(400, f"body too large: {length} bytes")
        return await reader.readexactly(length) if length else b""

    # -- routing ------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        parts = path.strip("/").split("/")

        if path == "/healthz":
            self._expect(method, "GET")
            return await self._healthz(writer)
        if path == "/metrics":
            self._expect(method, "GET")
            return await self._respond_text(
                writer, 200, self.service.metrics.render_text()
            )
        if path == "/jobs":
            if method == "POST":
                return await self._submit(body, writer)
            self._expect(method, "GET")
            return await self._respond(writer, 200, self.service.describe())
        if parts[0] == "jobs" and len(parts) == 2:
            self._expect(method, "GET")
            return await self._respond(
                writer, 200, self._job(parts[1]).summary()
            )
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "cancel":
            self._expect(method, "POST")
            job = await self.service.cancel(self._job(parts[1]).id)
            return await self._respond(writer, 200, job.summary())
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "stream":
            self._expect(method, "GET")
            return await self._stream(parts[1], reader, writer)
        raise HttpError(404, f"no such route: {path}")

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise HttpError(405, f"{method} not allowed (use {allowed})")

    def _job(self, job_id: str) -> t.Any:
        try:
            return self.service.job(job_id)
        except ServiceError as exc:
            raise HttpError(404, str(exc)) from None

    # -- handlers -----------------------------------------------------

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not JSON: {exc}") from None
        if not isinstance(doc, dict) or "kind" not in doc:
            raise HttpError(400, 'body must be {"kind": ..., "payload": ...}')
        deadline = doc.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"bad deadline_s: {exc}") from None
            if deadline <= 0:
                raise HttpError(
                    400, f"bad deadline_s: must be positive, "
                         f"got {deadline:g}")
        try:
            priority = int(doc.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad priority: {exc}") from None
        try:
            job = self.service.submit(
                doc["kind"],
                doc.get("payload") or {},
                client=str(doc.get("client", "anonymous")),
                priority=priority,
                deadline_s=deadline,
            )
        except AdmissionError as exc:
            await self._respond(
                writer, 429,
                {"error": str(exc), "reason": exc.reason,
                 "retry_after_s": exc.retry_after_s},
                extra_headers={"Retry-After": f"{exc.retry_after_s:g}"},
            )
            return
        except ServiceUnavailableError as exc:
            # Draining: the go-away answer is load-independent, so it
            # gets its own status — clients should try the next
            # instance, not just back off.
            await self._respond(
                writer, 503,
                {"error": str(exc), "reason": "draining",
                 "retry_after_s": exc.retry_after_s},
                extra_headers={"Retry-After": f"{exc.retry_after_s:g}"},
            )
            return
        except ServiceError as exc:
            raise HttpError(400, str(exc)) from None
        await self._respond(writer, 200, job.summary())

    async def _healthz(self, writer: asyncio.StreamWriter) -> None:
        violations = check_service(self.service)
        status = 200 if not violations else 503
        await self._respond(writer, status, {
            "status": "ok" if not violations else "unhealthy",
            "draining": self.service.draining,
            "counts": self.service.counts(),
            "violations": [
                {"check": v.check, "subject": v.subject, "detail": v.detail}
                for v in violations
            ],
        })

    async def _stream(self, job_id: str, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        job = self._job(job_id)
        history, queue = self.service.subscribe(job.id)
        eof = asyncio.ensure_future(reader.read(1))  # EOF = client gone
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            seen = 0
            for event in history:
                self._write_event(writer, event)
                seen = event.seq
            await writer.drain()
            terminal = any(e.event in ("done", "failed", "cancelled")
                           for e in history)
            while not terminal:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, eof}, return_when=asyncio.FIRST_COMPLETED
                )
                if eof in done:  # client disconnected mid-stream
                    getter.cancel()
                    break
                event = getter.result()
                if event.seq <= seen:  # replay raced the live feed
                    continue
                seen = event.seq
                self._write_event(writer, event)
                await writer.drain()
                terminal = event.event in ("done", "failed", "cancelled")
        finally:
            self.service.unsubscribe(job.id, queue)
            eof.cancel()

    @staticmethod
    def _write_event(writer: asyncio.StreamWriter, event: JobEvent) -> None:
        data = json.dumps(event.data, default=str)
        writer.write(
            f"id: {event.seq}\nevent: {event.event}\n"
            f"data: {data}\n\n".encode("utf-8")
        )

    # -- response plumbing --------------------------------------------

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, doc: dict[str, t.Any],
        *, extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(doc, default=str).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    @staticmethod
    async def _respond_text(writer: asyncio.StreamWriter, status: int,
                            text: str) -> None:
        body = text.encode("utf-8")
        writer.write((
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: text/plain; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1") + body)
        await writer.drain()

"""A hand-rolled asyncio HTTP/1.1 + SSE front end for the service.

No third-party web framework: the dependency budget is the stdlib, and
the API surface is small enough that ``asyncio.start_server`` plus a
~hundred-line request parser is the honest cost.  One connection = one
request (``Connection: close``), which keeps the parser trivial and is
plenty for a campaign driver; SSE streams hold their connection open
until the job's terminal event, exactly as the protocol intends.

Routes:

====== ========================== =======================================
POST   /jobs                      submit ``{"kind", "payload",
                                  "client", "priority", "deadline_s"}``
                                  → job summary (429 + Retry-After when
                                  refused, 503 + Retry-After while the
                                  service drains)
GET    /jobs                      service status + job listing
GET    /jobs/<id>                 one job's status document
POST   /jobs/<id>/cancel          cancel queued/running work
GET    /jobs/<id>/stream          SSE: replayed + live lifecycle events
GET    /jobs/<id>/trace           the job's distributed trace: spans,
                                  connectivity, critical path
                                  (``?format=chrome`` → Perfetto JSON)
GET    /healthz                   200/503 from repro.service.health
GET    /metrics                   text exposition of the obs registry
====== ========================== =======================================

Every response carries an ``X-Trace-Id`` header: the job's trace id on
job-scoped routes, the request's (inbound header honoured, else fresh)
everywhere else — so a client can grep journals, traces and logs by
one id.  ``POST /jobs`` also records the ``http.parse`` span that
roots a freshly admitted job's trace.

SSE framing is ``id: <seq>`` / ``event: <name>`` / ``data: <json>``
per event; the ``id`` is the job-local sequence number so a client
reconnecting mid-stream dedupes replayed history.  A client that goes
away mid-stream is noticed by awaiting its half of the socket for EOF
concurrently with the event queue — the handler unsubscribes and the
job keeps running (disconnection is not cancellation).
"""

from __future__ import annotations

import asyncio
import json
import time
import typing as t

from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.obs import distributed as dist
from repro.obs.distributed import TRACE_HEADER, TraceContext
from repro.service.health import check_service
from repro.service.jobs import TERMINAL, JobEvent

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.service.core import TraceService

MAX_BODY = 1 << 20  # 1 MiB of JSON is already an abuse of this API

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(ServiceError):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpServer:
    """The asyncio server owning one :class:`TraceService` front end."""

    def __init__(self, service: "TraceService", *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Bind and listen; returns the actual port (for ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        t_start = time.time()
        trace_id = dist.new_trace_id()
        try:
            method, path, headers = await self._read_head(reader)
            # Honour a caller-minted id so one trace spans client and
            # service; mint locally when absent or malformed.
            inbound = dist.sanitize_trace_id(
                headers.get(TRACE_HEADER.lower(), "")
            )
            if inbound:
                trace_id = inbound
            await self._route(
                method, path, body=await self._read_body(reader, headers),
                reader=reader, writer=writer,
                trace_id=trace_id, t_start=t_start,
            )
        except HttpError as exc:
            await self._respond(
                writer, exc.status, {"error": str(exc)}, trace_id=trace_id
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond(
                    writer, 500, {"error": repr(exc)}, trace_id=trace_id
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, dict[str, str]]:
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    @staticmethod
    async def _read_body(reader: asyncio.StreamReader,
                         headers: dict[str, str]) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            raise HttpError(400, f"body too large: {length} bytes")
        return await reader.readexactly(length) if length else b""

    # -- routing ------------------------------------------------------

    async def _route(self, method: str, path: str, *, body: bytes,
                     reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter,
                     trace_id: str, t_start: float) -> None:
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        parts = path.strip("/").split("/")

        if path == "/healthz":
            self._expect(method, "GET")
            return await self._healthz(writer, trace_id)
        if path == "/metrics":
            self._expect(method, "GET")
            return await self._respond_text(
                writer, 200, self.service.metrics.render_text(),
                trace_id=trace_id,
            )
        if path == "/jobs":
            if method == "POST":
                return await self._submit(body, writer, trace_id, t_start)
            self._expect(method, "GET")
            return await self._respond(
                writer, 200, self.service.describe(), trace_id=trace_id
            )
        if parts[0] == "jobs" and len(parts) == 2:
            self._expect(method, "GET")
            job = self._job(parts[1])
            return await self._respond(
                writer, 200, job.summary(),
                trace_id=job.trace_id or trace_id,
            )
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "cancel":
            self._expect(method, "POST")
            job = await self.service.cancel(self._job(parts[1]).id)
            return await self._respond(
                writer, 200, job.summary(),
                trace_id=job.trace_id or trace_id,
            )
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "stream":
            self._expect(method, "GET")
            return await self._stream(parts[1], reader, writer)
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "trace":
            self._expect(method, "GET")
            return await self._trace(parts[1], query, writer, trace_id)
        raise HttpError(404, f"no such route: {path}")

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise HttpError(405, f"{method} not allowed (use {allowed})")

    def _job(self, job_id: str) -> t.Any:
        try:
            return self.service.job(job_id)
        except ServiceError as exc:
            raise HttpError(404, str(exc)) from None

    # -- handlers -----------------------------------------------------

    async def _submit(self, body: bytes, writer: asyncio.StreamWriter,
                      trace_id: str, t_start: float) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not JSON: {exc}") from None
        if not isinstance(doc, dict) or "kind" not in doc:
            raise HttpError(400, 'body must be {"kind": ..., "payload": ...}')
        deadline = doc.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError) as exc:
                raise HttpError(400, f"bad deadline_s: {exc}") from None
            if deadline <= 0:
                raise HttpError(
                    400, f"bad deadline_s: must be positive, "
                         f"got {deadline:g}")
        try:
            priority = int(doc.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad priority: {exc}") from None
        parse_span = dist.new_span_id()
        t_parsed = time.time()
        try:
            job = self.service.submit(
                doc["kind"],
                doc.get("payload") or {},
                client=str(doc.get("client", "anonymous")),
                priority=priority,
                deadline_s=deadline,
                trace=TraceContext(
                    trace_id=trace_id, parent_span_id=parse_span
                ),
            )
        except AdmissionError as exc:
            await self._respond(
                writer, 429,
                {"error": str(exc), "reason": exc.reason,
                 "retry_after_s": exc.retry_after_s},
                extra_headers={"Retry-After": f"{exc.retry_after_s:g}"},
                trace_id=trace_id,
            )
            return
        except ServiceUnavailableError as exc:
            # Draining: the go-away answer is load-independent, so it
            # gets its own status — clients should try the next
            # instance, not just back off.
            await self._respond(
                writer, 503,
                {"error": str(exc), "reason": "draining",
                 "retry_after_s": exc.retry_after_s},
                extra_headers={"Retry-After": f"{exc.retry_after_s:g}"},
                trace_id=trace_id,
            )
            return
        except ServiceError as exc:
            raise HttpError(400, str(exc)) from None
        if job.trace_id == trace_id:
            # Fresh admission (not a dedupe twin riding an older
            # trace): the HTTP parse becomes the trace's true root and
            # the job span's parent.
            self.service.record_span(
                trace_id=trace_id, span_id=parse_span, name="http.parse",
                start_s=t_start, end_s=t_parsed,
                tags={"kind": str(doc["kind"]),
                      "client": str(doc.get("client", "anonymous"))},
            )
        await self._respond(
            writer, 200, job.summary(), trace_id=job.trace_id or trace_id
        )

    async def _trace(self, job_id: str, query: str,
                     writer: asyncio.StreamWriter, trace_id: str) -> None:
        job = self._job(job_id)
        doc = self.service.trace(job.id)
        if "format=chrome" in query:
            from repro.obs.export import distributed_chrome_trace

            doc = distributed_chrome_trace(doc)
        await self._respond(
            writer, 200, doc, trace_id=job.trace_id or trace_id
        )

    async def _healthz(self, writer: asyncio.StreamWriter,
                       trace_id: str) -> None:
        violations = check_service(self.service)
        status = 200 if not violations else 503
        await self._respond(writer, status, {
            "status": "ok" if not violations else "unhealthy",
            "draining": self.service.draining,
            "counts": self.service.counts(),
            "violations": [
                {"check": v.check, "subject": v.subject, "detail": v.detail}
                for v in violations
            ],
        }, trace_id=trace_id)

    async def _stream(self, job_id: str, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        job = self._job(job_id)
        history, queue = self.service.subscribe(job.id)
        eof = asyncio.ensure_future(reader.read(1))  # EOF = client gone
        try:
            writer.write((
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                f"{TRACE_HEADER}: {job.trace_id or 'untraced'}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1"))
            await writer.drain()
            seen = 0
            for event in history:
                self._write_event(writer, event)
                seen = event.seq
            await writer.drain()
            terminal = any(e.event in ("done", "failed", "cancelled")
                           for e in history)
            while not terminal:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, eof}, return_when=asyncio.FIRST_COMPLETED
                )
                if eof in done:  # client disconnected mid-stream
                    getter.cancel()
                    break
                event = getter.result()
                if event.seq <= seen:  # replay raced the live feed
                    continue
                seen = event.seq
                self._write_event(writer, event)
                await writer.drain()
                terminal = event.event in ("done", "failed", "cancelled")
        finally:
            self.service.unsubscribe(job.id, queue)
            eof.cancel()

    @staticmethod
    def _write_event(writer: asyncio.StreamWriter, event: JobEvent) -> None:
        data = json.dumps(event.data, default=str)
        writer.write(
            f"id: {event.seq}\nevent: {event.event}\n"
            f"data: {data}\n\n".encode("utf-8")
        )

    # -- response plumbing --------------------------------------------

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, doc: dict[str, t.Any],
        *, extra_headers: dict[str, str] | None = None,
        trace_id: str | None = None,
    ) -> None:
        body = json.dumps(doc, default=str).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if trace_id:
            head += f"{TRACE_HEADER}: {trace_id}\r\n"
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    @staticmethod
    async def _respond_text(writer: asyncio.StreamWriter, status: int,
                            text: str, *,
                            trace_id: str | None = None) -> None:
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: text/plain; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if trace_id:
            head += f"{TRACE_HEADER}: {trace_id}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

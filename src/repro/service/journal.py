"""Write-ahead job journal: the service's crash-durability ledger.

Every lifecycle transition the :class:`~repro.service.core.TraceService`
makes — ``accepted``, ``dispatched``, ``done``, ``failed``,
``cancelled`` — is appended here *before* the service acts on it, so a
SIGKILL at any instant loses no accepted work: the next boot replays
the journal and re-admits whatever was in flight.  Design rules, in
the order they matter:

* **Never corrupt what was durable.**  Records are one JSON object per
  line, framed as ``<crc32-hex> <json>\\n``; a reader validates the
  CRC before trusting a line.  A torn tail (the write the crash
  interrupted) is truncated and counted, never fatal; a corrupt record
  mid-stream (bit rot) is skipped and counted.
* **Bound the fsync tax.**  ``fsync="always"`` syncs every append
  (every transition is durable the moment the call returns);
  ``fsync="batch"`` (the default) syncs once per
  :attr:`JournalConfig.batch_records` appends or whenever a *terminal*
  transition lands, whichever comes first.  Every append is handed to
  the OS (``flush``) regardless of policy, so a SIGKILL — which only
  forfeits user-space buffers — never loses a record under any mode;
  the fsync policy solely bounds what a *power loss* can take, and
  that window is a few non-terminal transitions, which recovery
  handles anyway (a lost ``dispatched`` record just replays as
  ``accepted``).  ``fsync="never"`` leaves durability to the OS
  (tests).
* **Bound the disk.**  The journal is a directory of numbered
  segments; when the active segment exceeds
  :attr:`JournalConfig.rotate_records` records, compaction rewrites
  the *live* state (one ``accepted`` record per non-terminal job) into
  a fresh segment — written to a temp file, fsynced, atomically
  renamed, and only then are the old segments unlinked.  Terminal jobs
  leave the journal entirely at compaction; their results already
  live in the content-addressed cache.
* **A clean shutdown is free.**  Drain writes a ``shutdown`` marker as
  the final record; a boot that finds it skips replay entirely.

Failed appends (disk full — see the ``service.disk_full`` fault kind)
raise :class:`JournalWriteError`; the service counts them and keeps
serving (availability over durability, loudly).

The ``accepted`` envelope is folded back into resubmission keyword-for-
keyword, so fields the journal never interprets ride along for free —
notably ``trace_id``: a job re-admitted by crash recovery keeps its
original distributed-trace id (with a ``recovered`` baggage tag), and
a trace that straddles a crash stays one trace.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import typing as t
import zlib

from repro import faults
from repro.errors import ConfigurationError, ServiceError

#: Bump when the record grammar changes; checked (leniently) on replay.
JOURNAL_SCHEMA = 1

#: Record types.  ``accepted`` carries the full resubmittable envelope;
#: the rest reference it by job id.
ACCEPTED = "accepted"
DISPATCHED = "dispatched"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
SHUTDOWN = "shutdown"

TERMINAL_RECORDS = frozenset({DONE, FAILED, CANCELLED})
RECORD_TYPES = frozenset(
    {ACCEPTED, DISPATCHED, SHUTDOWN} | TERMINAL_RECORDS
)

FSYNC_MODES = ("always", "batch", "never")


class JournalWriteError(ServiceError):
    """An append could not be made durable (disk full, dead segment)."""


@dataclasses.dataclass(frozen=True)
class JournalConfig:
    """Durability knobs for one :class:`JobJournal`."""

    fsync: str = "batch"
    #: ``fsync="batch"``: sync after this many unsynced appends.
    batch_records: int = 16
    #: Rotate + compact once the active segment holds this many records.
    rotate_records: int = 4096

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_MODES:
            raise ConfigurationError(
                f"fsync must be one of {FSYNC_MODES}: {self.fsync!r}"
            )
        if self.batch_records < 1:
            raise ConfigurationError("batch_records must be >= 1")
        if self.rotate_records < 2:
            raise ConfigurationError("rotate_records must be >= 2")


@dataclasses.dataclass
class ReplayState:
    """What a journal replay recovered.

    ``live`` maps job id → the ``accepted`` envelope of every job that
    was accepted (and possibly dispatched) but never reached a
    terminal record — the jobs a restarted service must re-admit.
    ``terminal`` maps job id → its final record type for the audit
    trail.  ``clean`` is True when the last record was a clean
    ``shutdown`` marker, in which case ``live`` is empty by
    construction.
    """

    live: dict[str, dict[str, t.Any]] = dataclasses.field(
        default_factory=dict)
    terminal: dict[str, str] = dataclasses.field(default_factory=dict)
    clean: bool = False
    records: int = 0
    torn_records: int = 0
    corrupt_records: int = 0
    segments: int = 0


def _frame(record: dict[str, t.Any]) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=str)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode("utf-8")


def _parse_line(line: bytes) -> dict[str, t.Any] | None:
    """Decode one framed record; ``None`` when the CRC or JSON lies."""
    if not line.endswith(b"\n"):
        return None  # torn: the trailing write never finished
    try:
        crc_hex, body = line[:-1].split(b" ", 1)
        if int(crc_hex, 16) != zlib.crc32(body) & 0xFFFFFFFF:
            return None
        record = json.loads(body)
    except (ValueError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or record.get("t") not in RECORD_TYPES:
        return None
    return record


class JobJournal:
    """Append-only, CRC-framed, segment-rotated lifecycle journal."""

    def __init__(self, root: str | pathlib.Path,
                 config: JournalConfig | None = None) -> None:
        self.root = pathlib.Path(root)
        self.config = config or JournalConfig()
        self.root.mkdir(parents=True, exist_ok=True)
        self.write_errors = 0
        self.records_written = 0
        self._fh: t.IO[bytes] | None = None
        self._seq = max(
            (self._segment_index(p) for p in self._segments()), default=0
        )
        self._active_records = 0
        self._unsynced = 0

    # -- segments -----------------------------------------------------

    def _segments(self) -> list[pathlib.Path]:
        return sorted(self.root.glob("seg-*.jsonl"))

    @staticmethod
    def _segment_index(path: pathlib.Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _segment_path(self, seq: int) -> pathlib.Path:
        return self.root / f"seg-{seq:08d}.jsonl"

    @property
    def active_segment(self) -> pathlib.Path:
        return self._segment_path(self._seq)

    def _open_active(self) -> t.IO[bytes]:
        if self._fh is None or self._fh.closed:
            if self._seq == 0:
                self._seq = 1
            self._fh = open(self.active_segment, "ab")
            self._active_records = self._count_records(self.active_segment)
        return self._fh

    @staticmethod
    def _count_records(path: pathlib.Path) -> int:
        try:
            with open(path, "rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    # -- appends ------------------------------------------------------

    def append(self, record_type: str, **fields: t.Any) -> None:
        """Durably (per the fsync policy) log one transition.

        Raises :class:`JournalWriteError` when the disk refuses; the
        caller decides whether that is fatal (it never is for the
        service, which counts and carries on).
        """
        if record_type not in RECORD_TYPES:
            raise ServiceError(
                f"unknown journal record type: {record_type!r}")
        record = {"t": record_type, "schema": JOURNAL_SCHEMA, **fields}
        inj = faults.injector()
        if inj.enabled and inj.fires(
                "service.disk_full", self.active_segment.name):
            self.write_errors += 1
            raise JournalWriteError(
                f"journal write failed: no space left on "
                f"{self.active_segment.name} (injected)"
            )
        try:
            fh = self._open_active()
            fh.write(_frame(record))
            # Hand every record to the OS immediately: a SIGKILL only
            # loses what sits in *user-space* buffers, so this alone
            # makes appends kill-durable.  The fsync policy below only
            # governs the (expensive) power-loss guarantee.
            fh.flush()
            self._active_records += 1
            self.records_written += 1
            self._unsynced += 1
            force = (self.config.fsync == "always"
                     or record_type in TERMINAL_RECORDS
                     or record_type == SHUTDOWN)
            if self.config.fsync != "never" and (
                    force or self._unsynced >= self.config.batch_records):
                self.flush()
        except OSError as exc:
            self.write_errors += 1
            raise JournalWriteError(
                f"journal write failed: {exc}") from exc
        if self._active_records >= self.config.rotate_records:
            self.rotate()

    def flush(self) -> None:
        if self._fh is None or self._fh.closed:
            return
        self._fh.flush()
        if self.config.fsync != "never":
            os.fsync(self._fh.fileno())
        self._unsynced = 0

    # -- rotation and compaction --------------------------------------

    def rotate(self, live: t.Iterable[dict[str, t.Any]] | None = None
               ) -> pathlib.Path:
        """Compact every segment into a fresh one and drop the old.

        *live* is the snapshot of still-resubmittable ``accepted``
        envelopes to carry forward; when ``None`` it is derived by
        replaying the existing segments (what :meth:`append` does on
        auto-rotation).  The new segment is written aside, fsynced,
        atomically renamed into place, and only then are the old
        segments unlinked — a crash at any point leaves either the old
        segments or a complete new one, never neither.
        """
        try:
            self.flush()  # replay reads disk; push buffered appends out
        except OSError:
            self.write_errors += 1
        if live is None:
            state = self.replay()
            live = list(state.live.values())
        old = self._segments()
        self.close(mark_clean=False)
        self._seq += 1
        target = self._segment_path(self._seq)
        tmp = target.with_name(target.name + ".tmp")
        with open(tmp, "wb") as fh:
            for envelope in live:
                fh.write(_frame({"t": ACCEPTED, "schema": JOURNAL_SCHEMA,
                                 **envelope}))
            fh.flush()
            if self.config.fsync != "never":
                os.fsync(fh.fileno())
        os.replace(tmp, target)
        for path in old:
            if path != target:
                path.unlink(missing_ok=True)
        self._fh = open(target, "ab")
        self._active_records = self._count_records(target)
        self._unsynced = 0
        return target

    # -- replay -------------------------------------------------------

    def replay(self) -> ReplayState:
        """Fold every segment into the recovered state.

        Torn tails are truncated on disk (so the next append starts at
        a record boundary) and counted; corrupt mid-stream records are
        skipped and counted.  Neither is ever fatal.
        """
        state = ReplayState()
        segments = self._segments()
        state.segments = len(segments)
        for segment in segments:
            self._replay_segment(segment, state,
                                 truncate_tail=segment == segments[-1])
        if state.clean:
            state.live.clear()
        return state

    def _replay_segment(self, segment: pathlib.Path, state: ReplayState,
                        *, truncate_tail: bool) -> None:
        try:
            raw = segment.read_bytes()
        except OSError:
            return
        offset = 0
        good_end = 0
        while offset < len(raw):
            end = raw.find(b"\n", offset)
            line = raw[offset:] if end < 0 else raw[offset:end + 1]
            record = _parse_line(line)
            if record is None:
                if end < 0 or offset + len(line) >= len(raw):
                    # The unfinished write at the very tail.
                    state.torn_records += 1
                else:
                    state.corrupt_records += 1
                offset = len(raw) if end < 0 else end + 1
                continue
            good_end = end + 1
            offset = end + 1
            state.records += 1
            self._fold(record, state)
        if truncate_tail and good_end < len(raw):
            with open(segment, "ab") as fh:
                fh.truncate(good_end)

    @staticmethod
    def _fold(record: dict[str, t.Any], state: ReplayState) -> None:
        kind = record["t"]
        if kind == SHUTDOWN:
            state.clean = bool(record.get("clean", False))
            return
        state.clean = False  # any activity after a marker reopens it
        job_id = record.get("id")
        if job_id is None:
            return
        if kind == ACCEPTED:
            envelope = {key: value for key, value in record.items()
                        if key not in ("t", "schema")}
            state.live[job_id] = envelope
            state.terminal.pop(job_id, None)
        elif kind in TERMINAL_RECORDS:
            state.live.pop(job_id, None)
            state.terminal[job_id] = kind
        # DISPATCHED does not change liveness: an accepted job stays
        # live until a terminal record lands.

    # -- shutdown -----------------------------------------------------

    def mark_clean(self) -> None:
        """Append the clean-shutdown marker (skips replay next boot)."""
        self.append(SHUTDOWN, clean=True)

    def close(self, *, mark_clean: bool = False) -> None:
        if mark_clean:
            self.mark_clean()
        if self._fh is not None and not self._fh.closed:
            try:
                self.flush()
            except OSError:
                self.write_errors += 1
            self._fh.close()
        self._fh = None

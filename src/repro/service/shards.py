"""Shard routing and per-shard job executors.

The service's parallelism model is N independent *shards*, each owning
one executor and one priority queue.  A job's shard is a pure function
of its key (:class:`ShardRouter`), which gives two properties for free:

* two submissions of the same key land on the same shard, so the
  dedupe map in :class:`~repro.service.core.TraceService` never races
  a twin running elsewhere, and
* load spreads statistically without any coordination between shards
  (the ECMP argument from the fabric, applied to compute).

Two executors implement the same small async surface:

* :class:`ThreadExecutor` — runs jobs on the default thread pool.
  Fast to start, shares the interpreter; a cancelled job is
  *abandoned* (its thread finishes into the void) because threads
  cannot be killed.  The default for tests and in-process embedding.
* :class:`SpawnExecutor` — one persistent ``spawn`` worker process per
  shard, reusing the campaign pool's ``_worker_main`` loop.  Crashes
  and timeouts surface as :class:`WorkerCrashError` so the shard loop
  can requeue under the :mod:`repro.faults` retry policy, and cancel
  is real: terminate + respawn.

Executor methods are called only from the service's event loop; the
blocking pieces run via ``asyncio.to_thread``.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import queue as queue_mod
import threading
import time
import typing as t

from repro.campaign.pool import _worker_main
from repro.errors import ConfigurationError, ServiceError


class WorkerCrashError(ServiceError):
    """The worker executing a job died or went overdue — an
    *environmental* failure, retryable under the shard's RetryPolicy."""

    def __init__(self, message: str, *, reason: str = "crash") -> None:
        super().__init__(message)
        self.reason = reason


class JobExecutionError(ServiceError):
    """The job function itself raised — deterministic, never retried
    (rerunning identical code on identical input fails identically)."""


class JobAbortedError(ServiceError):
    """The in-flight job was cancelled out from under its executor."""


class ShardRouter:
    """``key -> shard`` by stable hash; no coordination, no state."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(f"need at least one shard: {shards!r}")
        self.shards = int(shards)

    def shard_for(self, key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.shards


class ThreadExecutor:
    """Run jobs on the event loop's thread pool; cancel by abandonment."""

    kind = "thread"

    def __init__(self, *, timeout_s: float = 300.0) -> None:
        self.timeout_s = float(timeout_s)

    async def run(self, fn: t.Callable[..., t.Any],
                  args: tuple[t.Any, ...]) -> t.Any:
        def call() -> t.Any:
            try:
                return ("ok", fn(*args))
            except BaseException as exc:  # noqa: BLE001 - ferried across
                return ("error", f"{type(exc).__name__}: {exc}")

        # Not wait_for(): cancelling wait_for() around a *running*
        # thread blocks until the thread finishes, which would make
        # cancel-while-running wait out the whole job.  asyncio.wait
        # never cancels its children, so a cancelled run() (or a
        # timeout) abandons the thread and returns immediately.
        task = asyncio.ensure_future(asyncio.to_thread(call))
        try:
            done, _pending = await asyncio.wait(
                {task}, timeout=self.timeout_s
            )
        except asyncio.CancelledError:
            self._abandon(task)
            raise
        if not done:
            self._abandon(task)
            raise WorkerCrashError(
                f"job exceeded {self.timeout_s}s on the thread executor",
                reason="timeout",
            )
        status, payload = task.result()
        if status == "error":
            raise JobExecutionError(payload)
        return payload

    @staticmethod
    def _abandon(task: asyncio.Task) -> None:
        """Walk away from a task whose thread we cannot stop.

        The cancel is best-effort (a running thread-pool future will
        not cancel); silencing ``_log_destroy_pending`` keeps asyncio
        from warning about the deliberately-orphaned task if the loop
        closes before the thread drains.
        """
        task.cancel()
        task._log_destroy_pending = False  # noqa: SLF001 - by design

    def worker_pid(self) -> int | None:
        """Thread jobs run in-process; the pid is our own."""
        import os

        return os.getpid()

    async def abort(self) -> None:
        """Nothing to kill: the thread finishes into the void and the
        shard loop discards whatever it returns."""

    async def aclose(self) -> None:
        pass


class SpawnExecutor:
    """One persistent ``spawn`` worker process; real crash recovery."""

    kind = "spawn"

    def __init__(self, *, timeout_s: float = 300.0,
                 poll_s: float = 0.05) -> None:
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.timeout_s = float(timeout_s)
        self._poll_s = float(poll_s)
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._generation = 0
        self._proc: t.Any = None
        self._inbox: t.Any = None
        self._outbox: t.Any = None

    def _ensure_worker(self) -> None:
        with self._lock:
            if self._proc is not None and self._proc.is_alive():
                return
            self._respawn_locked()

    def _respawn_locked(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        if self._inbox is not None:
            self._inbox.cancel_join_thread()
            self._outbox.cancel_join_thread()
        self._inbox = self._ctx.Queue()
        self._outbox = self._ctx.Queue()
        self._proc = self._ctx.Process(
            target=_worker_main, args=(self._inbox, self._outbox),
            daemon=True,
        )
        self._proc.start()
        self._generation += 1

    async def run(self, fn: t.Callable[..., t.Any],
                  args: tuple[t.Any, ...]) -> t.Any:
        return await asyncio.to_thread(self._run_blocking, fn, args)

    def _run_blocking(self, fn: t.Callable[..., t.Any],
                      args: tuple[t.Any, ...]) -> t.Any:
        self._ensure_worker()
        with self._lock:
            generation = self._generation
            proc, outbox = self._proc, self._outbox
            self._inbox.put((0, fn, tuple(args)))
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                _, status, payload = outbox.get(timeout=self._poll_s)
            except queue_mod.Empty:
                with self._lock:
                    if self._generation != generation:
                        raise JobAbortedError(
                            "job aborted: worker replaced mid-flight"
                        ) from None
                if not proc.is_alive():
                    raise WorkerCrashError(
                        f"shard worker died (exitcode "
                        f"{proc.exitcode})", reason="crash",
                    )
                if time.monotonic() > deadline:
                    self._kill_and_respawn()
                    raise WorkerCrashError(
                        f"job exceeded {self.timeout_s}s; worker "
                        "replaced", reason="timeout",
                    )
                continue
            if status == "error":
                raise JobExecutionError(payload)
            return payload

    def worker_pid(self) -> int | None:
        """The current worker process's pid (None before first use or
        after a crash) — lets a worker span name its process even when
        the attempt died and no trace doc came back."""
        with self._lock:
            if self._proc is not None and self._proc.is_alive():
                return self._proc.pid
            return None

    def _kill_and_respawn(self) -> None:
        with self._lock:
            self._respawn_locked()

    async def abort(self) -> None:
        """Kill whatever runs now; the waiting ``run`` call sees the
        generation bump and raises :class:`JobAbortedError`."""
        await asyncio.to_thread(self._kill_and_respawn)

    async def aclose(self) -> None:
        def close() -> None:
            with self._lock:
                if self._proc is None:
                    return
                if self._proc.is_alive():
                    self._proc.terminate()
                    self._proc.join(timeout=5.0)
                self._inbox.cancel_join_thread()
                self._outbox.cancel_join_thread()
                self._proc = None

        await asyncio.to_thread(close)


EXECUTORS: dict[str, type] = {
    "thread": ThreadExecutor,
    "spawn": SpawnExecutor,
}


def make_executor(kind: str, *, timeout_s: float) -> t.Any:
    try:
        cls = EXECUTORS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {kind!r}; expected one of "
            f"{sorted(EXECUTORS)}"
        ) from None
    return cls(timeout_s=timeout_s)

"""The ``service`` experiment: the live service proving itself.

Registered like any figure, this boots real :class:`~repro.service.
thread.ServiceThread` instances on loopback sockets and drives them the
way production traffic would — concurrent HTTP clients, SSE streams,
resubmits against a shared cache directory — then reports one row per
scenario lane:

* ``admission``   — a capacity-2, quota-1 instance refuses the right
  submissions with 429 + Retry-After (capacity and quota separately).
* ``mixed-load``  — ``service_clients`` threads submit a mixed bag of
  experiment/trace/sleep jobs over HTTP and stream each to completion;
  exactly-once is asserted per job key (duplicate submissions across
  clients attach to one job; nothing is lost, nothing runs twice).
* ``warm-resubmit`` — a *fresh* instance pointed at the same cache
  directory answers the identical cacheable submissions from disk;
  the hit-rate must clear 95%.
* ``crash-requeue`` — a one-shard ``spawn`` instance loses its worker
  mid-job and requeues onto a fresh one (attempt 2 succeeds).
* ``recovery``    — a journaled instance is killed abruptly with one
  job running and three queued; the next boot replays all four from
  the write-ahead journal and finishes each exactly once.
* ``drain``       — SIGTERM semantics over HTTP: mid-drain submits get
  503 + Retry-After, the in-flight job still finishes, and the clean-
  shutdown marker makes the next boot skip replay entirely.
* ``breaker``     — a worker hard-exit trips the one-failure breaker;
  admission sheds while it cools, the half-open probe re-runs the job
  and closes the breaker again.
* ``telemetry``   — one HTTP job on a ``spawn`` shard yields one
  connected distributed trace (submit → admission → queue → worker →
  publish, with the engine's sim-time spans as children) whose
  critical-path components sum to the end-to-end latency within 5 %.
* ``slo``         — a burst of deterministic failures drives the
  multi-window burn rate over threshold (``service.slo`` turns
  ``/healthz`` red, ``service_slo_burn`` spikes); a run of good jobs
  slides the short window clean and the alert clears.
* ``health``      — ``/healthz`` is green and the exactly-once ledger
  balances after all of the above.

Rows carry only deterministic values; measured rates (sustained
jobs/sec, p50/p99 submit→terminal stream latency) go to ``meta``,
which is how ``BENCH_service.json`` feeds the perf-regression gate
without poisoning the result cache.
"""

from __future__ import annotations

import concurrent.futures
import os
import statistics
import tempfile
import threading
import time
import typing as t

from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig, TraceService
from repro.service.thread import ServiceThread


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Service self-check: admission, mixed load, warm cache, recovery."""
    config = config or ExperimentConfig()
    rows: list[dict[str, t.Any]] = []
    meta: dict[str, t.Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-service-") as root:
        cache_dir = os.path.join(root, "cache")
        rows.append(_admission_lane())
        mixed_row, submissions = _mixed_load_lane(config, cache_dir, meta)
        rows.append(mixed_row)
        rows.append(_warm_resubmit_lane(config, cache_dir, submissions))
        rows.append(_crash_requeue_lane(root))
        rows.append(_recovery_lane(root))
        rows.append(_drain_lane(root))
        rows.append(_breaker_lane(root))
        rows.append(_telemetry_lane(config))
        rows.append(_slo_lane())
    notes = (
        f'{config.service_clients} concurrent HTTP clients, '
        f'{mixed_row["jobs_submitted"]} submissions over '
        f'{mixed_row["unique_keys"]} distinct job keys; '
        f'warm resubmit hit-rate '
        f'{rows[2]["hit_rate"]:.2f}',
        f'durability: {rows[4]["replayed"]} journaled jobs replayed '
        f'after an abrupt kill, drain refused mid-shutdown submits '
        f'with 503, breaker reclosed after its half-open probe',
        f'telemetry: one connected trace of {rows[7]["spans"]} spans '
        f'({rows[7]["sim_spans"]} sim-time children), critical path '
        f'covers {rows[7]["coverage"]:.3f} of e2e; SLO burn alert '
        f'fired and cleared in the fault lane',
        "rows are deterministic; sustained jobs/sec and stream "
        "latencies live in meta (BENCH_service.json gates the wall)",
    )
    return ExperimentResult(
        experiment="service",
        title="Trace service: admission, mixed load, cache, durability",
        rows=tuple(rows),
        notes=notes,
        meta=meta,
    )


def _admission_lane() -> dict[str, t.Any]:
    service_config = ServiceConfig(
        shards=1, capacity=2, per_client_quota=1,
        executor="thread", retry_after_s=0.1,
    )
    rejected_capacity = rejected_quota = 0
    retry_after_ok = True
    with ServiceThread(service_config) as live:
        client = ServiceClient(port=live.port)
        held = []
        # Two distinct clients fill the backlog (quota is 1 each).
        # 5s holds: cancelled thread jobs are *abandoned*, and their
        # threads must not outlive the whole experiment (non-daemon
        # pool threads delay interpreter exit); 5s still dwarfs the
        # few loopback round-trips the lane makes while they run.
        for i in range(2):
            held.append(client.submit(
                "sleep", {"duration_s": 5.0, "label": f"hold{i}"},
                client=f"filler-{i}",
            ))
        # ...so a third client hits the capacity wall...
        try:
            client.submit("sleep", {"duration_s": 1.0, "label": "over"},
                          client="late")
        except AdmissionError as exc:
            rejected_capacity += 1
            retry_after_ok &= exc.retry_after_s > 0
            retry_after_ok &= exc.reason == "capacity"
        for job in held:
            client.cancel(job["id"])
        # ...and with the backlog drained, one client over-asking
        # trips its per-client quota instead.
        first = client.submit(
            "sleep", {"duration_s": 5.0, "label": "mine"}, client="greedy"
        )
        try:
            client.submit("sleep", {"duration_s": 1.0, "label": "more"},
                          client="greedy")
        except AdmissionError as exc:
            rejected_quota += 1
            retry_after_ok &= exc.reason == "quota"
        client.cancel(first["id"])
    return {
        "scenario": "admission",
        "capacity": service_config.capacity,
        "quota": service_config.per_client_quota,
        "rejected_capacity": rejected_capacity,
        "rejected_quota": rejected_quota,
        "retry_after_ok": retry_after_ok,
    }


def _client_submissions(
    config: ExperimentConfig, client_index: int
) -> list[tuple[str, dict[str, t.Any]]]:
    """The mixed bag one load-generator client submits.

    Deliberately overlapping across clients: every client asks for the
    shared fig08 job and the shared trace, so dedupe and exactly-once
    are exercised by construction, while per-client seeds keep some
    work unique.
    """
    jobs: list[tuple[str, dict[str, t.Any]]] = [
        ("experiment", {"experiment": "fig08", "preset": "quick",
                        "seed": config.seed}),
        ("trace", {"seed": config.seed,
                   "users": config.service_trace_users}),
        ("experiment", {"experiment": "fig02", "preset": "quick",
                        "seed": config.seed + client_index}),
        ("sleep", {"duration_s": 0.01, "label": f"c{client_index}"}),
    ]
    return jobs[:config.service_jobs_per_client]


def _mixed_load_lane(
    config: ExperimentConfig, cache_dir: str, meta: dict[str, t.Any],
) -> tuple[dict[str, t.Any], list[tuple[str, dict[str, t.Any]]]]:
    service_config = ServiceConfig(
        shards=config.service_shards,
        capacity=max(64, config.service_clients
                     * config.service_jobs_per_client * 2),
        per_client_quota=max(16, config.service_jobs_per_client * 2),
        executor=config.service_executor,
        cache_dir=cache_dir,
    )
    latencies: list[float] = []
    submissions: list[tuple[str, dict[str, t.Any]]] = []
    started = time.perf_counter()
    with ServiceThread(service_config) as live:

        def drive(client_index: int) -> list[dict[str, t.Any]]:
            client = ServiceClient(port=live.port, timeout_s=300.0)
            finals = []
            for kind, payload in _client_submissions(config, client_index):
                t0 = time.perf_counter()
                doc = client.submit_with_backoff(
                    kind, payload, client=f"load-{client_index}",
                    max_wait_s=120.0,
                )
                final = client.wait(doc["id"], timeout_s=300.0)
                elapsed = time.perf_counter() - t0
                # Submit→terminal latency net of the job's own run
                # time: what the queue + shards + SSE pipeline added.
                latencies.append(max(0.0, elapsed - (final.get("wall_s")
                                                     or 0.0)))
                finals.append(final)
            return finals

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=config.service_clients
        ) as pool:
            all_finals = [
                final
                for finals in pool.map(drive,
                                       range(config.service_clients))
                for final in finals
            ]
        client = ServiceClient(port=live.port)
        overview = client.overview()
        health = client.healthz()
        wall_s = time.perf_counter() - started

        for client_index in range(config.service_clients):
            submissions.extend(_client_submissions(config, client_index))

        ids_by_key: dict[str, set[str]] = {}
        for final in all_finals:
            ids_by_key.setdefault(final["key"], set()).add(final["id"])
        unique_keys = len(ids_by_key)
        exactly_once = all(len(ids) == 1 for ids in ids_by_key.values())
        done = sum(1 for final in all_finals if final["state"] == "done")
        meta.update({
            "mixed_wall_s": round(wall_s, 3),
            "jobs_per_s": round(len(all_finals) / wall_s, 3),
            "stream_p50_ms": round(
                statistics.median(latencies) * 1e3, 3),
            "stream_p99_ms": round(
                sorted(latencies)[int(0.99 * (len(latencies) - 1))] * 1e3,
                3),
        })
        return {
            "scenario": "mixed-load",
            "clients": config.service_clients,
            "shards": config.service_shards,
            "executor": config.service_executor,
            "jobs_submitted": len(all_finals),
            "unique_keys": unique_keys,
            "done": done,
            "failed": sum(1 for f in all_finals if f["state"] == "failed"),
            "jobs_on_server": len(overview["jobs"]),
            "exactly_once": exactly_once
            and len(overview["jobs"]) == unique_keys,
            "healthz": health["status"],
            "violations": len(health["violations"]),
        }, submissions


def _warm_resubmit_lane(
    config: ExperimentConfig, cache_dir: str,
    submissions: list[tuple[str, dict[str, t.Any]]],
) -> dict[str, t.Any]:
    service_config = ServiceConfig(
        shards=config.service_shards,
        executor="thread",
        cache_dir=cache_dir,
    )
    cacheable = [(kind, payload) for kind, payload in submissions
                 if kind in ("experiment", "trace")]
    hits = 0
    with ServiceThread(service_config) as live:
        client = ServiceClient(port=live.port, timeout_s=300.0)
        for kind, payload in cacheable:
            doc = client.submit(kind, payload, client="resubmitter")
            if doc["state"] != "done":
                doc = client.wait(doc["id"], timeout_s=300.0)
            # A disk hit completes before submit() returns; a repeat
            # key later in this loop attaches to that same job and
            # inherits its cache_hit flag.
            if doc["cache_hit"]:
                hits += 1
        # Deduped resubmissions of the same key only touch disk once;
        # count distinct keys for the honest denominator.
        distinct = {
            (kind, tuple(sorted(payload.items(), key=str)))
            for kind, payload in cacheable
        }
    return {
        "scenario": "warm-resubmit",
        "resubmitted": len(cacheable),
        "distinct_keys": len(distinct),
        "hits": hits,
        "hit_rate": round(hits / len(cacheable), 4) if cacheable else 1.0,
    }


def _crash_requeue_lane(root: str) -> dict[str, t.Any]:
    service_config = ServiceConfig(
        shards=1, executor="spawn", job_timeout_s=120.0,
    )
    marker = os.path.join(root, "crash-once")
    with ServiceThread(service_config) as live:
        client = ServiceClient(port=live.port, timeout_s=180.0)
        doc = client.submit("sleep", {
            "duration_s": 0.0, "crash_unless": marker, "label": "crashy",
        })
        events = [event for event, _data in client.stream(doc["id"])]
        final = client.status(doc["id"])
    return {
        "scenario": "crash-requeue",
        "state": final["state"],
        "attempts": final["attempts"],
        "requeued": "requeued" in events,
        "marker_left": os.path.exists(marker),
    }


def _poll(predicate: t.Callable[[], bool], *, timeout_s: float = 60.0,
          interval_s: float = 0.02, what: str = "condition") -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise ServiceError(f"timed out waiting for {what}")


async def _read_recovery(service: TraceService) -> t.Any:
    return service.last_recovery


async def _jobs_snapshot(service: TraceService) -> list[dict[str, t.Any]]:
    return [
        {"state": job.state, "completions": job.completions}
        for job in service.jobs()
    ]


async def _breaker_doc(service: TraceService) -> dict[str, t.Any]:
    return service.breakers[0].describe()


async def _probe_breaker_shed(service: TraceService) -> bool:
    """While the shard breaker is cooling, admission must shed with the
    ``breaker`` reason.  Checked on the service loop so the shedding
    test and the submit are one atomic step — no HTTP race with the
    half-open probe.  Vacuously true once the breaker stops shedding.
    """
    breaker = service.breakers[0]
    if not breaker.shedding:
        return True
    try:
        service.submit("sleep", {"label": "shed-me"}, client="impatient")
    except AdmissionError as exc:
        return exc.reason == "breaker"
    return False


def _recovery_lane(root: str) -> dict[str, t.Any]:
    """Kill a journaled instance mid-flight; the next boot replays."""
    journal_dir = os.path.join(root, "journal-recovery")

    def instance() -> ServiceThread:
        return ServiceThread(ServiceConfig(
            shards=1, executor="thread", journal_dir=journal_dir,
        ))

    with instance() as live:
        client = ServiceClient(port=live.port)
        # One running + three queued at the kill.  The hold is long
        # enough that abrupt teardown beats its completion, short
        # enough that the reboot's full re-run stays cheap.
        hold = client.submit("sleep", {"duration_s": 2.0, "label": "hold"})
        for i in range(3):
            client.submit("sleep", {"duration_s": 0.0, "label": f"q{i}"},
                          client=f"survivor-{i}")
        _poll(lambda: client.status(hold["id"])["state"] == "running",
              what="hold job to start")
        # Context exit stops the loop abruptly — no drain, no clean
        # marker: the in-process stand-in for SIGKILL.
    with instance() as live:
        recovery = live.call(_read_recovery)
        client = ServiceClient(port=live.port, timeout_s=120.0)
        for doc in client.overview()["jobs"]:
            client.wait(doc["id"], timeout_s=120.0)
        snapshot = live.call(_jobs_snapshot)
        live.drain()
    return {
        "scenario": "recovery",
        "clean_boot": recovery.clean,  # False: the kill left it dirty
        "replayed": len(recovery.live),
        "completed": sum(1 for job in snapshot if job["state"] == "done"),
        "exactly_once": all(job["completions"] == 1 for job in snapshot),
        "torn_records": recovery.torn_records,
    }


def _drain_lane(root: str) -> dict[str, t.Any]:
    """SIGTERM semantics over HTTP, then a clean-marker reboot."""
    journal_dir = os.path.join(root, "journal-drain")
    refused_503 = retry_after_ok = False
    live = ServiceThread(ServiceConfig(
        shards=1, executor="thread", journal_dir=journal_dir,
    )).start()
    try:
        client = ServiceClient(port=live.port)
        inflight = client.submit("sleep", {"duration_s": 2.0,
                                           "label": "inflight"})
        _poll(lambda: client.status(inflight["id"])["state"] == "running",
              what="in-flight job to start")
        drainer = threading.Thread(target=live.drain, daemon=True)
        drainer.start()
        _poll(lambda: bool(client.healthz().get("draining")),
              what="drain to begin")
        try:
            client.submit("sleep", {"duration_s": 0.0, "label": "late"})
        except ServiceUnavailableError as exc:
            refused_503 = True
            retry_after_ok = exc.retry_after_s > 0
        drainer.join(timeout=60.0)
    finally:
        live.stop()
    with ServiceThread(ServiceConfig(
        shards=1, executor="thread", journal_dir=journal_dir,
    )) as live:
        recovery = live.call(_read_recovery)
    return {
        "scenario": "drain",
        "refused_503": refused_503,
        "retry_after_ok": retry_after_ok,
        # The clean marker proves the in-flight job finished before
        # shutdown; replay on the next boot had nothing to do.
        "clean_boot": recovery.clean,
        "replayed": len(recovery.live),
    }


def _telemetry_lane(config: ExperimentConfig) -> dict[str, t.Any]:
    """One HTTP job = one connected distributed trace.

    A ``spawn`` shard so the trace genuinely crosses a process
    boundary: the worker's sim-clock spans come back over the queue
    and hang off the worker span.  The critical-path breakdown must
    tile the end-to-end wall time (the ±5 % acceptance bound).
    """
    service_config = ServiceConfig(
        shards=1, executor="spawn", job_timeout_s=300.0,
    )
    with ServiceThread(service_config) as live:
        client = ServiceClient(port=live.port, timeout_s=300.0)
        doc = client.submit(
            "experiment",
            {"experiment": "fig02", "preset": "quick", "seed": config.seed},
            client="telemetry",
        )
        header_on_submit = client.last_trace_id
        final = client.wait(doc["id"], timeout_s=300.0)
        trace = client.trace(doc["id"])
        chrome = client.trace(doc["id"], fmt="chrome")
    spans = trace["spans"]
    sim_spans = sum(1 for span in spans if span.get("kind") == "sim")
    path = trace["critical_path"]
    components_sum = sum(path["components"].values())
    e2e = path["e2e_s"]
    return {
        "scenario": "telemetry",
        "state": final["state"],
        "spans": len(spans),
        "sim_spans": sim_spans,
        "connected": trace["connected"],
        "coverage": round(path["coverage"], 4),
        "components_sum_ok": (
            e2e > 0 and abs(components_sum - e2e) <= 0.05 * e2e
        ),
        "trace_id_consistent": (
            bool(trace["trace_id"])
            and trace["trace_id"] == final.get("trace_id")
            and trace["trace_id"] == header_on_submit
        ),
        "chrome_events": len(chrome["traceEvents"]),
    }


def _slo_lane() -> dict[str, t.Any]:
    """Drive the burn-rate alert over threshold, then clear it.

    Windows are shrunk to seconds so the lane runs in wall time a test
    can afford: a burst of deterministic failures (the ``fail`` knob)
    pushes the short *and* long availability burn past the threshold —
    ``/healthz`` goes red with a ``service.slo`` violation and the
    ``service_slo_burn`` gauge spikes — then a run of good jobs plus
    the sliding short window brings the alert back down.
    """
    from repro.service.slo import SloConfig

    slo = SloConfig(
        availability_target=0.9, latency_target_s=60.0,
        short_window_s=1.5, long_window_s=6.0,
        burn_threshold=2.0, min_samples=5,
    )
    service_config = ServiceConfig(shards=1, executor="thread", slo=slo)
    burn_peak = 0.0
    with ServiceThread(service_config) as live:
        client = ServiceClient(port=live.port, timeout_s=60.0)

        def slo_alerting() -> bool:
            return any(v["check"] == "service.slo"
                       for v in client.healthz()["violations"])

        for i in range(8):
            doc = client.submit("sleep", {"fail": True, "label": f"bad{i}"},
                                client="chaos")
            client.wait(doc["id"], timeout_s=60.0)
        _poll(slo_alerting, timeout_s=30.0, what="SLO burn alert to fire")
        alert_fired = True
        for line in client.metrics_text().splitlines():
            if line.startswith("service_slo_burn{"):
                burn_peak = max(burn_peak, float(line.rsplit(" ", 1)[1]))

        good = 0

        def recovered() -> bool:
            nonlocal good
            if slo_alerting():
                doc = client.submit(
                    "sleep", {"duration_s": 0.0, "label": f"good{good}"},
                    client="steady",
                )
                client.wait(doc["id"], timeout_s=60.0)
                good += 1
                return False
            return True

        _poll(recovered, timeout_s=60.0, interval_s=0.1,
              what="SLO burn alert to clear")
    return {
        "scenario": "slo",
        "alert_fired": alert_fired,
        "alert_cleared": True,  # _poll raised otherwise
        "burn_over_threshold": burn_peak > slo.burn_threshold,
        "good_jobs_to_clear": good,
    }


def _breaker_lane(root: str) -> dict[str, t.Any]:
    """A worker hard-exit trips the breaker; the probe re-closes it."""
    service_config = ServiceConfig(
        shards=1, executor="spawn", job_timeout_s=120.0,
        breaker_failures=1, breaker_cooldown_s=0.5,
    )
    marker = os.path.join(root, "breaker-crash-once")
    with ServiceThread(service_config) as live:
        client = ServiceClient(port=live.port, timeout_s=180.0)
        doc = client.submit("sleep", {
            "duration_s": 0.0, "crash_unless": marker, "label": "tripper",
        })
        _poll(lambda: live.call(_breaker_doc)["state"] != "closed",
              timeout_s=120.0, what="breaker to trip")
        shed_enforced = live.call(_probe_breaker_shed)
        final = client.wait(doc["id"], timeout_s=180.0)
        end = live.call(_breaker_doc)
    return {
        "scenario": "breaker",
        "state": final["state"],
        "attempts": final["attempts"],
        "tripped": end["trips"] >= 1,
        "reclosed": end["state"] == "closed",
        "shed_enforced": shed_enforced,
    }

"""A blocking stdlib client for the trace service.

``http.client`` only — usable from tests, the harness experiment's
load-generator threads, and interactive sessions without any third-
party HTTP stack.  One method per route; SSE streaming is a generator
of parsed ``(event, data)`` pairs.

429 responses raise the same :class:`~repro.errors.AdmissionError`
the server raised, and 503 from job routes (a draining instance)
raises :class:`~repro.errors.ServiceUnavailableError`, both with
``retry_after_s`` recovered from the ``Retry-After`` header — so a
polite load generator can implement backoff with the exact vocabulary
the admission controller speaks.  With ``max_retries > 0``,
:meth:`ServiceClient.submit` does the polite thing itself: it sleeps
the server's hint (jittered, capped at ``backoff_cap_s``) and
resubmits, up to the retry budget.  The default budget is 0 — an
unconfigured client surfaces every refusal, which is what tests and
admission experiments want.

Tracing: every response's ``X-Trace-Id`` header lands in
:attr:`ServiceClient.last_trace_id`, :meth:`ServiceClient.submit` can
carry a caller-minted ``trace_id`` so client-side spans join the
service's trace, and :meth:`ServiceClient.trace` fetches the merged
distributed trace with its critical-path breakdown.
:meth:`ServiceClient.healthz` never raises on 503 — an unhealthy
verdict *is* the answer, not a transport failure — so probes and
chaos lanes can read the violation list straight off the document.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import typing as t

from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.obs.distributed import TRACE_HEADER


class ServiceClient:
    """Talk to one ``repro.service`` instance at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8700,
                 *, timeout_s: float = 60.0, max_retries: int = 0,
                 backoff_cap_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = float(timeout_s)
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0: {max_retries!r}")
        if backoff_cap_s <= 0:
            raise ServiceError(
                f"backoff_cap_s must be positive: {backoff_cap_s!r}")
        self.max_retries = int(max_retries)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Injection points so tests drive the backoff deterministically.
        self._sleep: t.Callable[[float], None] = time.sleep
        self._rng = random.Random()
        #: ``X-Trace-Id`` from the most recent response (any route).
        self.last_trace_id: str = ""

    # -- plumbing -----------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def _request(self, method: str, path: str,
                 body: dict[str, t.Any] | None = None,
                 *, trace_id: str | None = None) -> dict[str, t.Any]:
        conn = self._connect()
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            if trace_id:
                headers[TRACE_HEADER] = trace_id
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            doc = json.loads(raw) if raw else {}
            self.last_trace_id = response.getheader(TRACE_HEADER) or ""
            if response.status == 429:
                raise AdmissionError(
                    doc.get("error", "service refused the submission"),
                    reason=doc.get("reason", "capacity"),
                    retry_after_s=float(
                        response.getheader("Retry-After")
                        or doc.get("retry_after_s", 1.0)
                    ),
                )
            if response.status == 503:
                raise ServiceUnavailableError(
                    doc.get("error", "service unavailable"),
                    retry_after_s=float(
                        response.getheader("Retry-After")
                        or doc.get("retry_after_s", 1.0)
                    ),
                )
            if response.status >= 400:
                detail = doc.get("error") or repr(raw[:200])
                raise ServiceError(
                    f"{method} {path} -> {response.status}: {detail}"
                )
            return doc
        finally:
            conn.close()

    # -- routes -------------------------------------------------------

    def submit(self, kind: str, payload: dict[str, t.Any] | None = None,
               *, client: str = "anonymous", priority: int = 0,
               deadline_s: float | None = None,
               trace_id: str | None = None) -> dict[str, t.Any]:
        """Submit one job; retries 429/503 up to ``max_retries`` times,
        sleeping the server's Retry-After hint (jittered, capped).

        The returned summary carries ``trace_id`` — the server's if it
        minted one, or the caller's *trace_id* when supplied (so the
        client can pre-correlate its own spans before submitting).
        """
        body: dict[str, t.Any] = {
            "kind": kind, "payload": payload or {},
            "client": client, "priority": priority,
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        attempt = 0
        while True:
            try:
                return self._request("POST", "/jobs", body,
                                     trace_id=trace_id)
            except (AdmissionError, ServiceUnavailableError) as exc:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self._sleep(self._backoff_s(exc.retry_after_s, attempt))

    def _backoff_s(self, hint_s: float, attempt: int) -> float:
        """The server's hint, doubled per attempt, capped, then
        jittered to 50–100% so a herd of refused clients decorrelates
        instead of returning in lockstep."""
        base = min(self.backoff_cap_s,
                   max(0.0, hint_s) * (2 ** (attempt - 1)))
        return base * self._rng.uniform(0.5, 1.0)

    def submit_with_backoff(
        self, kind: str, payload: dict[str, t.Any] | None = None,
        *, client: str = "anonymous", priority: int = 0,
        max_wait_s: float = 30.0,
    ) -> dict[str, t.Any]:
        """Submit, honouring 429/503 Retry-After until *max_wait_s*."""
        deadline = time.monotonic() + max_wait_s
        while True:
            try:
                return self._request("POST", "/jobs", {
                    "kind": kind, "payload": payload or {},
                    "client": client, "priority": priority,
                })
            except (AdmissionError, ServiceUnavailableError) as exc:
                if time.monotonic() + exc.retry_after_s > deadline:
                    raise
                self._sleep(exc.retry_after_s)

    def status(self, job_id: str) -> dict[str, t.Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def trace(self, job_id: str, *,
              fmt: str | None = None) -> dict[str, t.Any]:
        """The job's merged distributed trace (spans + critical path);
        ``fmt="chrome"`` returns the Perfetto/Chrome trace_event form."""
        path = f"/jobs/{job_id}/trace"
        if fmt:
            path += f"?format={fmt}"
        return self._request("GET", path)

    def cancel(self, job_id: str) -> dict[str, t.Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def overview(self) -> dict[str, t.Any]:
        return self._request("GET", "/jobs")

    def healthz(self) -> dict[str, t.Any]:
        """The health document, whatever the verdict.

        Deliberately does **not** go through :meth:`_request`: a 503
        here means "unhealthy" (a perfectly good probe answer), not
        "go away", so raising ``ServiceUnavailableError`` would hide
        exactly the violations the caller asked for.  The document's
        ``status``/``violations`` fields carry the verdict instead.
        """
        conn = self._connect()
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            raw = response.read()
            self.last_trace_id = response.getheader(TRACE_HEADER) or ""
            if response.status not in (200, 503):
                raise ServiceError(f"/healthz -> {response.status}")
            return json.loads(raw) if raw else {}
        finally:
            conn.close()

    def metrics_text(self) -> str:
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(f"/metrics -> {response.status}")
            return response.read().decode("utf-8")
        finally:
            conn.close()

    # -- SSE ----------------------------------------------------------

    def stream(self, job_id: str) -> t.Iterator[tuple[str, dict[str, t.Any]]]:
        """Yield ``(event, data)`` pairs until the job's terminal event
        (after which the server closes the stream)."""
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    f"stream {job_id} -> {response.status}: "
                    f"{response.read()[:200]!r}"
                )
            event_name, data = "", None
            while True:
                line = response.fp.readline()
                if not line:
                    return
                line = line.decode("utf-8").rstrip("\n")
                if line.startswith("event:"):
                    event_name = line.split(":", 1)[1].strip()
                elif line.startswith("data:"):
                    data = json.loads(line.split(":", 1)[1].strip())
                elif not line and data is not None:
                    yield event_name, data
                    if event_name in ("done", "failed", "cancelled"):
                        return
                    event_name, data = "", None
        finally:
            conn.close()

    def wait(self, job_id: str,
             timeout_s: float = 120.0) -> dict[str, t.Any]:
        """Stream until terminal; returns the final status document."""
        deadline = time.monotonic() + timeout_s
        for _event, _data in self.stream(job_id):
            if time.monotonic() > deadline:
                raise ServiceError(f"job {job_id} not terminal "
                                   f"after {timeout_s}s")
        doc = self.status(job_id)
        if doc["state"] not in ("done", "failed", "cancelled"):
            raise ServiceError(
                f"stream for {job_id} ended in state {doc['state']}"
            )
        return doc

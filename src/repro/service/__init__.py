"""A long-lived async campaign/trace service: queue → shards → SSE.

The ROADMAP's "millions of users" north star turned into standing
infrastructure: instead of one-shot CLI runs, a :class:`TraceService`
accepts experiment, streaming-trace, and calibration jobs over HTTP,
runs them on sharded workers that share the campaign's content-
addressed result cache, and streams lifecycle events back over SSE.

* :mod:`repro.service.core` — the service itself (admission, dedupe,
  cache probe, shard loops, event fan-out).
* :mod:`repro.service.queue` — admission policy (capacity + quota →
  429 with Retry-After).
* :mod:`repro.service.shards` — key-hash shard routing and the thread
  / spawn-process executors with crash requeue.
* :mod:`repro.service.jobs` — job vocabulary and the one picklable
  worker function.
* :mod:`repro.service.http` — hand-rolled asyncio HTTP/1.1 + SSE.
* :mod:`repro.service.client` — blocking stdlib client (tests, load
  generators, humans).
* :mod:`repro.service.health` — standing invariants behind /healthz.
* :mod:`repro.service.thread` — a live instance on a background loop.
* :mod:`repro.service.journal` — write-ahead job journal (crash
  recovery, clean-shutdown markers).
* :mod:`repro.service.breaker` — per-shard circuit breakers.
* :mod:`repro.service.slo` — rolling-window SLOs and multi-window
  burn-rate alerts behind the ``service.slo`` health check.

Boot one with ``python -m repro.service --port 8700`` or embed it via
:class:`~repro.service.thread.ServiceThread`.
"""

from repro.errors import ServiceUnavailableError
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig, TraceService
from repro.service.health import check_service
from repro.service.http import HttpServer
from repro.service.jobs import Job, JobEvent, job_key, run_payload
from repro.service.journal import JobJournal, JournalConfig, ReplayState
from repro.service.queue import AdmissionController
from repro.service.shards import ShardRouter
from repro.service.slo import SloConfig, SloTracker
from repro.service.thread import ServiceThread

__all__ = [
    "AdmissionController",
    "BreakerConfig",
    "CircuitBreaker",
    "HttpServer",
    "Job",
    "JobEvent",
    "JobJournal",
    "JournalConfig",
    "ReplayState",
    "ServiceClient",
    "ServiceConfig",
    "ServiceThread",
    "ServiceUnavailableError",
    "ShardRouter",
    "SloConfig",
    "SloTracker",
    "TraceService",
    "check_service",
    "job_key",
    "run_payload",
]

"""Rolling-window SLOs with multi-window burn-rate alerts.

The service's health checks (:mod:`repro.service.health`) are hard
invariants: any violation is a bug.  SLOs are the *soft* contract —
"99 % of jobs complete, 95 % complete within the latency target" —
and the operationally honest way to alert on one is the burn rate:

    burn = observed error rate / error budget   (budget = 1 − target)

A burn of 1.0 spends the budget exactly on schedule; 2.0 exhausts it
in half the window.  Alerting on a single window is a trap — a short
window pages on blips, a long one pages an hour late — so the tracker
follows the multi-window rule: the alert fires only when the burn
exceeds the threshold over **both** a short and a long rolling window
(the short window proves the problem is still happening, the long one
proves it is material), and only once the short window holds at least
``min_samples`` events so a single failed job on an idle service can
never page.

Two objectives are tracked per service:

* ``availability`` — a job that reaches ``done`` is good; ``failed``
  jobs and load-shed submissions (breaker open) are bad.  Cancelled
  jobs are client choices and count for neither side.
* ``latency`` — among completed jobs, done within
  ``latency_target_s`` is good.

:class:`SloTracker` is deliberately service-agnostic (events in,
verdicts out, injectable clock) so the unit tests drive it with a fake
clock and the service experiment's fault lane can use sub-second
windows to watch an alert fire *and clear* inside one test run.
"""

from __future__ import annotations

import collections
import dataclasses
import time
import typing as t

from repro.errors import ConfigurationError

AVAILABILITY = "availability"
LATENCY = "latency"

OBJECTIVES = (AVAILABILITY, LATENCY)

#: The gauge/alert window labels, in (name, config attr) order.
WINDOWS = ("short", "long")


@dataclasses.dataclass(frozen=True)
class SloConfig:
    """Targets, windows, and the alerting rule's knobs."""

    #: Fraction of jobs that must complete successfully.
    availability_target: float = 0.99
    #: Fraction of completed jobs that must finish within the latency
    #: target.
    latency_target: float = 0.95
    #: The latency objective's per-job budget in wall seconds.
    latency_target_s: float = 60.0
    #: Rolling windows the burn rate is measured over.
    short_window_s: float = 300.0
    long_window_s: float = 3600.0
    #: Burn-rate multiple that constitutes an alert (in both windows).
    burn_threshold: float = 2.0
    #: Events required in the short window before alerting is allowed.
    min_samples: int = 10

    def __post_init__(self) -> None:
        for name in ("availability_target", "latency_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ConfigurationError(
                    f"{name} must be in (0, 1): {value!r}")
        if self.latency_target_s <= 0:
            raise ConfigurationError("latency_target_s must be positive")
        if not 0 < self.short_window_s <= self.long_window_s:
            raise ConfigurationError(
                f"windows must satisfy 0 < short <= long: "
                f"{self.short_window_s!r} / {self.long_window_s!r}")
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn_threshold must be positive")
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")

    def window_s(self, window: str) -> float:
        if window == "short":
            return self.short_window_s
        if window == "long":
            return self.long_window_s
        raise ConfigurationError(f"unknown window {window!r}")

    def target(self, objective: str) -> float:
        if objective == AVAILABILITY:
            return self.availability_target
        if objective == LATENCY:
            return self.latency_target
        raise ConfigurationError(f"unknown objective {objective!r}")


class _Event(t.NamedTuple):
    at: float
    #: Per objective: True good, False bad, None not applicable.
    verdicts: tuple[bool | None, bool | None]


class SloTracker:
    """Record job outcomes; answer burn rates and alert verdicts."""

    def __init__(self, config: SloConfig | None = None,
                 *, clock: t.Callable[[], float] = time.monotonic) -> None:
        self.config = config or SloConfig()
        self._clock = clock
        self._events: collections.deque[_Event] = collections.deque()
        #: Total events ever recorded (the windows forget; this doesn't).
        self.recorded = 0

    # -- recording ----------------------------------------------------

    def record_completion(self, *, ok: bool,
                          latency_s: float | None = None) -> None:
        """One terminal job: *ok* is the availability verdict; the
        latency verdict applies only to successful completions that
        report a latency."""
        latency_ok: bool | None = None
        if ok and latency_s is not None:
            latency_ok = latency_s <= self.config.latency_target_s
        self._push(_Event(self._clock(), (ok, latency_ok)))

    def record_shed(self) -> None:
        """A load-shed submission (open breaker): the client was
        turned away, which is an availability miss with no latency."""
        self._push(_Event(self._clock(), (False, None)))

    def _push(self, event: _Event) -> None:
        self._events.append(event)
        self.recorded += 1
        self._prune(event.at)

    def _prune(self, now: float) -> None:
        horizon = now - self.config.long_window_s
        while self._events and self._events[0].at < horizon:
            self._events.popleft()

    # -- answering ----------------------------------------------------

    def objectives(self) -> tuple[str, ...]:
        return OBJECTIVES

    def _window_counts(self, objective: str,
                       window_s: float) -> tuple[int, int]:
        """(events, bad) for *objective* within the last *window_s*."""
        index = OBJECTIVES.index(objective)
        horizon = self._clock() - window_s
        events = bad = 0
        for event in reversed(self._events):
            if event.at < horizon:
                break
            verdict = event.verdicts[index]
            if verdict is None:
                continue
            events += 1
            if not verdict:
                bad += 1
        return events, bad

    def burn_rate(self, objective: str, window_s: float) -> float:
        """Error rate over the window divided by the error budget."""
        budget = 1.0 - self.config.target(objective)
        events, bad = self._window_counts(objective, window_s)
        if events == 0:
            return 0.0
        return (bad / events) / budget

    def alerting(self, objective: str) -> bool:
        """The multi-window rule: burn above threshold in the short
        *and* the long window, with the short window holding at least
        ``min_samples`` events."""
        events, _ = self._window_counts(
            objective, self.config.short_window_s)
        if events < self.config.min_samples:
            return False
        return all(
            self.burn_rate(objective, self.config.window_s(window))
            > self.config.burn_threshold
            for window in WINDOWS
        )

    def describe(self) -> dict[str, t.Any]:
        """The JSON-able SLO status document (``GET /jobs`` carries
        it; the fault-lane recipe in EXPERIMENTS.md reads it)."""
        doc: dict[str, t.Any] = {
            "recorded": self.recorded,
            "window_events": len(self._events),
            "objectives": {},
        }
        for objective in OBJECTIVES:
            events, bad = self._window_counts(
                objective, self.config.long_window_s)
            doc["objectives"][objective] = {
                "target": self.config.target(objective),
                "events": events,
                "bad": bad,
                "burn": {
                    window: round(self.burn_rate(
                        objective, self.config.window_s(window)), 4)
                    for window in WINDOWS
                },
                "alerting": self.alerting(objective),
            }
        return doc

"""``python -m repro.service``: boot a live trace service.

The operational entry point the README quickstart documents::

    python -m repro.service --port 8700 --cache .cache &
    curl -s localhost:8700/jobs -d '{"kind": "experiment",
        "payload": {"experiment": "fig08", "preset": "quick"}}'
    curl -N localhost:8700/jobs/j00000/stream

Runs until interrupted; ``--shards``/``--executor`` size the worker
side, ``--capacity``/``--quota`` bound admission, ``--cache`` points
at (and shares) a campaign result-cache directory, and ``--journal``
turns on the write-ahead job journal: a killed service replays it on
the next boot and finishes what it had accepted.  ``--slo-*`` tune
the rolling availability/latency objectives behind the
``service.slo`` health check and the ``service_slo_burn`` gauge;
``--trace-keep`` sizes the in-memory distributed-trace store behind
``GET /jobs/<id>/trace``.

SIGTERM is the graceful exit: admission flips to 503 + Retry-After,
in-flight jobs finish (up to ``--drain-timeout``), the journal gets
its clean-shutdown marker, and the process leaves 0.  SIGINT (^C)
stays abrupt — on a journaled service that is exactly the crash the
journal exists for.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import typing as t

from repro.service.core import ServiceConfig, TraceService
from repro.service.http import HttpServer
from repro.service.shards import EXECUTORS
from repro.service.slo import SloConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived campaign/trace job service (HTTP + SSE).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8700,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shards (default: 2)")
    parser.add_argument("--executor", choices=sorted(EXECUTORS),
                        default="spawn",
                        help="per-shard executor (default: spawn)")
    parser.add_argument("--capacity", type=int, default=64,
                        help="max queued+running jobs before 429s")
    parser.add_argument("--quota", type=int, default=16,
                        help="max active jobs per client")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed result cache directory "
                             "(shared with campaign --cache)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-job wall-clock timeout seconds")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="write-ahead job journal directory; a "
                             "restarted service replays it and finishes "
                             "accepted work (default: no journal)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds SIGTERM waits for in-flight jobs "
                             "before giving up (default: 30)")
    parser.add_argument("--slo-availability", type=float, default=0.99,
                        help="availability objective: fraction of "
                             "completions that must succeed "
                             "(default: 0.99)")
    parser.add_argument("--slo-latency-target", type=float, default=60.0,
                        help="latency objective threshold: seconds a "
                             "successful job may take end-to-end "
                             "(default: 60)")
    parser.add_argument("--slo-windows", metavar="SHORT,LONG",
                        default="300,3600",
                        help="burn-rate windows in seconds, short,long "
                             "(default: 300,3600)")
    parser.add_argument("--trace-keep", type=int, default=256,
                        help="distributed traces retained in memory "
                             "for GET /jobs/<id>/trace (default: 256)")
    return parser


def _parse_windows(raw: str) -> tuple[float, float]:
    try:
        short_s, long_s = (float(part) for part in raw.split(","))
    except ValueError:
        raise SystemExit(
            f"--slo-windows wants SHORT,LONG seconds, got {raw!r}"
        ) from None
    return short_s, long_s


async def serve(config: ServiceConfig, host: str, port: int,
                announce: t.Callable[[str], None] = print) -> None:
    service = TraceService(config)
    server = HttpServer(service, host=host, port=port)
    await service.start()
    bound = await server.start()
    announce(
        f"repro.service listening on http://{host}:{bound} "
        f"({config.shards} {config.executor} shards, "
        f"capacity {config.capacity}, quota {config.per_client_quota})"
    )
    drain = asyncio.Event()
    loop = asyncio.get_running_loop()
    with contextlib.suppress(NotImplementedError):  # non-Unix loops
        loop.add_signal_handler(signal.SIGTERM, drain.set)
    drained = False
    try:
        await drain.wait()  # SIGTERM, or cancelled from outside
        announce("repro.service draining (SIGTERM): finishing "
                 "in-flight jobs, refusing new work with 503")
        await service.aclose(drain=True)
        drained = True
    finally:
        with contextlib.suppress(NotImplementedError):
            loop.remove_signal_handler(signal.SIGTERM)
        await server.aclose()
        if not drained:
            await service.aclose()


def main(argv: t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    short_s, long_s = _parse_windows(args.slo_windows)
    config = ServiceConfig(
        shards=args.shards,
        capacity=args.capacity,
        per_client_quota=args.quota,
        executor=args.executor,
        cache_dir=args.cache,
        job_timeout_s=args.timeout,
        journal_dir=args.journal,
        drain_timeout_s=args.drain_timeout,
        slo=SloConfig(
            availability_target=args.slo_availability,
            latency_target_s=args.slo_latency_target,
            short_window_s=short_s,
            long_window_s=long_s,
        ),
        trace_keep=args.trace_keep,
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(serve(config, args.host, args.port))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro.service``: boot a live trace service.

The operational entry point the README quickstart documents::

    python -m repro.service --port 8700 --cache .cache &
    curl -s localhost:8700/jobs -d '{"kind": "experiment",
        "payload": {"experiment": "fig08", "preset": "quick"}}'
    curl -N localhost:8700/jobs/j00000/stream

Runs until interrupted; ``--shards``/``--executor`` size the worker
side, ``--capacity``/``--quota`` bound admission, ``--cache`` points
at (and shares) a campaign result-cache directory.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import typing as t

from repro.service.core import ServiceConfig, TraceService
from repro.service.http import HttpServer
from repro.service.shards import EXECUTORS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived campaign/trace job service (HTTP + SSE).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8700,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shards (default: 2)")
    parser.add_argument("--executor", choices=sorted(EXECUTORS),
                        default="spawn",
                        help="per-shard executor (default: spawn)")
    parser.add_argument("--capacity", type=int, default=64,
                        help="max queued+running jobs before 429s")
    parser.add_argument("--quota", type=int, default=16,
                        help="max active jobs per client")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed result cache directory "
                             "(shared with campaign --cache)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-job wall-clock timeout seconds")
    return parser


async def serve(config: ServiceConfig, host: str, port: int,
                announce: t.Callable[[str], None] = print) -> None:
    service = TraceService(config)
    server = HttpServer(service, host=host, port=port)
    await service.start()
    bound = await server.start()
    announce(
        f"repro.service listening on http://{host}:{bound} "
        f"({config.shards} {config.executor} shards, "
        f"capacity {config.capacity}, quota {config.per_client_quota})"
    )
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        await server.aclose()
        await service.aclose()


def main(argv: t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        shards=args.shards,
        capacity=args.capacity,
        per_client_quota=args.quota,
        executor=args.executor,
        cache_dir=args.cache,
        job_timeout_s=args.timeout,
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(serve(config, args.host, args.port))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Run a live service + HTTP server on a background event loop.

Tests, the harness experiment, and ``--serve`` all need the same
thing: a real socket-listening service while the caller stays
synchronous.  :class:`ServiceThread` owns a daemon thread running its
own event loop, starts the :class:`~repro.service.core.TraceService`
and :class:`~repro.service.http.HttpServer` on it, and exposes the
bound port.  Use it as a context manager; exit tears down the HTTP
listener, the shard loops, and the loop itself, in that order.
"""

from __future__ import annotations

import asyncio
import threading
import typing as t

from repro.errors import ServiceError
from repro.service.core import ServiceConfig, TraceService
from repro.service.http import HttpServer


class ServiceThread:
    """A live service instance on its own daemon thread."""

    def __init__(self, config: ServiceConfig | None = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.config = config or ServiceConfig()
        self.host = host
        self.port = port
        self.service: TraceService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ServiceError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("service thread failed to come up")
        if self._failure is not None:
            raise ServiceError(
                f"service thread died on startup: {self._failure!r}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        service = TraceService(self.config)
        server = HttpServer(service, host=self.host, port=self.port)

        async def up() -> None:
            await service.start()
            self.port = await server.start()
            self.service = service

        try:
            loop.run_until_complete(up())
        except BaseException as exc:  # noqa: BLE001 - ferried to caller
            self._failure = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.aclose())
            loop.run_until_complete(service.aclose())
            loop.close()

    def call(self, coro_fn: t.Callable[[TraceService], t.Any]) -> t.Any:
        """Run ``await coro_fn(service)`` on the service's loop."""
        if self._loop is None or self.service is None:
            raise ServiceError("service thread is not running")
        future = asyncio.run_coroutine_threadsafe(
            coro_fn(self.service), self._loop
        )
        return future.result(timeout=60.0)

    def drain(self, timeout_s: float | None = None) -> None:
        """Gracefully drain the service (503s + in-flight completion)
        before stopping the loop; the journaled clean-shutdown path."""
        if self._loop is None or self.service is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.aclose(drain=True, drain_timeout_s=timeout_s),
            self._loop,
        )
        future.result(timeout=(timeout_s or 60.0) + 30.0)
        self.stop()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: t.Any) -> None:
        self.stop()

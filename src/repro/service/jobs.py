"""Service job vocabulary: requests, runtime state, and the worker fn.

A *job* is one unit of service work.  Three kinds exist:

* ``experiment`` — run one harness experiment (the same unit a
  campaign job is), addressed by the campaign job key
  (``fig08@quick#s3``) so the service shares the campaign's
  content-addressed result cache byte-for-byte.
* ``trace`` — stream a synthetic Google-trace population through
  :func:`repro.traces.google.iter_users` and reduce it to the
  constant-memory statistics summary.  This is the million-user lane:
  the trace is never materialised, only folded.
* ``sleep`` — a calibration job that holds a worker for a fixed time.
  It exists for deterministic tests and load experiments (admission at
  capacity, cancel-while-running, crash/requeue) and supports two
  fault knobs: ``fail`` raises deterministically, ``crash_unless``
  hard-exits the worker process unless a marker file exists (creating
  it first, so the *retry* succeeds — the requeue-once story).

Whatever the kind, :func:`run_payload` — the only code a worker ever
runs — returns the same plain-data envelope the campaign pool ships:
``{"result_json": <ExperimentResult JSON>, "wall_s": float}``.  One
envelope means one cache schema, one SSE payload shape, and one
client-side decoder for all three kinds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import typing as t

from repro.errors import ServiceError

#: Job lifecycle states.  REJECTED submissions never become jobs, so
#: it does not appear here; terminal states are the last three.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL = frozenset({DONE, FAILED, CANCELLED})

KINDS = ("experiment", "trace", "sleep")


def job_key(kind: str, payload: t.Mapping[str, t.Any]) -> str:
    """The dedupe identity of a submission — stable across clients.

    Experiment jobs reuse the campaign job-key grammar so a service
    job and a campaign job for the same work share one identity; an
    ``overrides`` mapping, when present, is folded in as a short
    digest suffix (two override sets differing anywhere get distinct
    keys).
    """
    if kind == "experiment":
        base = (f'{payload["experiment"]}@{payload.get("preset", "quick")}'
                f'#s{int(payload.get("seed", 0))}')
        overrides = payload.get("overrides") or {}
        if overrides:
            digest = hashlib.sha256(
                json.dumps(overrides, sort_keys=True, default=str)
                .encode("utf-8")
            ).hexdigest()[:8]
            base += f"+{digest}"
        return base
    if kind == "trace":
        return (f'trace:s{int(payload.get("seed", 2019))}'
                f':u{int(payload.get("users", 492))}')
    if kind == "sleep":
        label = payload.get("label", "")
        return f'sleep:{float(payload.get("duration_s", 0.0))}:{label}'
    raise ServiceError(f"unknown job kind: {kind!r}")


def validate_payload(kind: str, payload: t.Mapping[str, t.Any]) -> None:
    """Reject a bad submission at the door, not in a worker."""
    if kind not in KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; expected one of {KINDS}"
        )
    if kind == "experiment":
        from repro.harness.registry import EXPERIMENTS

        name = payload.get("experiment")
        if name not in EXPERIMENTS:
            raise ServiceError(f"unknown experiment: {name!r}")
        _experiment_config(payload)  # raises ConfigurationError if bad
    elif kind == "trace":
        users = int(payload.get("users", 492))
        if users < 1:
            raise ServiceError(f"trace users must be >= 1: {users!r}")
    elif kind == "sleep":
        duration = float(payload.get("duration_s", 0.0))
        if duration < 0:
            raise ServiceError(f"sleep duration must be >= 0: {duration!r}")


def _experiment_config(payload: t.Mapping[str, t.Any]) -> t.Any:
    import dataclasses as dc

    from repro.harness.config import ExperimentConfig

    base = ExperimentConfig.preset(payload.get("preset", "quick"))
    overrides = dict(payload.get("overrides") or {})
    return dc.replace(base, seed=int(payload.get("seed", 0)), **overrides)


def cache_key_for(kind: str, payload: t.Mapping[str, t.Any]) -> str | None:
    """The content address of this job's result, or ``None`` for kinds
    that are not cacheable (``sleep`` — its value *is* the wall time).

    Experiment jobs derive the *campaign's* cache key from an
    equivalent :class:`~repro.campaign.spec.JobSpec`, so the service
    and ``--cache`` campaign runs share entries byte-for-byte.  Trace
    summaries are deterministic in (seed, users, chunk) and hash those
    under the same source fingerprint.
    """
    from repro.campaign.cache import (
        SCHEMA,
        job_cache_key,
        source_fingerprint,
    )
    from repro.campaign.spec import JobSpec

    if kind == "experiment":
        return job_cache_key(JobSpec(
            experiment=payload["experiment"],
            preset=payload.get("preset", "quick"),
            seed=int(payload.get("seed", 0)),
            config=_experiment_config(payload),
        ))
    if kind == "trace":
        body = json.dumps(
            {
                "schema": SCHEMA,
                "kind": "trace",
                "seed": int(payload.get("seed", 2019)),
                "users": int(payload.get("users", 492)),
                "chunk": int(payload.get("chunk", 0) or 0),
                "source": source_fingerprint(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()
    return None


# --------------------------------------------------------------------
# The worker side.  Top-level and import-clean so ``spawn`` workers can
# pickle it by reference (the same rule the campaign pool enforces).
# --------------------------------------------------------------------

#: Sim-tracer records shipped back per attempt; more get truncated
#: (flagged in the trace doc) rather than flooding the spawn queue.
TRACE_RECORD_LIMIT = 2048


def run_payload(kind: str, payload: dict[str, t.Any],
                trace: dict[str, t.Any] | None = None) -> dict[str, t.Any]:
    """Execute one job; the only function service workers ever run.

    *trace* is the distributed-trace context crossing the spawn
    boundary: ``{"trace_id", "span_id", "capture_sim", "sampling"}``.
    When present, the returned envelope grows a ``"trace"`` doc — the
    worker's pid plus (under ``capture_sim``) the sim-clock tracer's
    span records as plain data, exactly how the campaign pool ships
    traces home.  The service strips the doc back out before caching,
    so the cache schema never sees it.
    """
    if trace is None:
        return _execute(kind, payload)
    return _execute_traced(kind, payload, dict(trace))


def _execute(kind: str, payload: dict[str, t.Any]) -> dict[str, t.Any]:
    start = time.perf_counter()
    if kind == "experiment":
        result = _run_experiment(payload)
    elif kind == "trace":
        result = _run_trace(payload)
    elif kind == "sleep":
        result = _run_sleep(payload)
    else:  # pragma: no cover - submit() validates kinds
        raise ServiceError(f"unknown job kind: {kind!r}")
    wall_s = time.perf_counter() - start
    result = result.with_meta(wall_s=round(wall_s, 6))
    return {"result_json": result.to_json(), "wall_s": wall_s}


def _execute_traced(kind: str, payload: dict[str, t.Any],
                    trace: dict[str, t.Any]) -> dict[str, t.Any]:
    """Run under the worker's own sim-span capture when asked.

    ``capture_sim`` installs a process-global tracer, which is only
    safe when this worker owns the whole process — the service sets it
    for ``spawn`` executors and never for threads (two thread jobs
    capturing concurrently would interleave their spans).
    """
    from repro.campaign.pool import worker_identity

    trace_doc: dict[str, t.Any] = {
        "trace_id": trace.get("trace_id", ""),
        "span_id": trace.get("span_id", ""),
        **worker_identity(),
    }
    if not trace.get("capture_sim"):
        envelope = _execute(kind, payload)
        envelope["trace"] = trace_doc
        return envelope

    from repro import obs
    from repro.obs import export

    with obs.capture(sampling=trace.get("sampling")) as (tracer, _metrics):
        envelope = _execute(kind, payload)
    records = []
    truncated = False
    for record in export.iter_records(tracer):
        if len(records) >= TRACE_RECORD_LIMIT:
            truncated = True
            break
        records.append(record)
    trace_doc["records"] = records
    trace_doc["truncated"] = truncated
    envelope["trace"] = trace_doc
    return envelope


def _run_experiment(payload: dict[str, t.Any]) -> t.Any:
    from repro.harness.registry import run_experiment

    return run_experiment(payload["experiment"], _experiment_config(payload))


def _run_trace(payload: dict[str, t.Any]) -> t.Any:
    from repro.harness.results import ExperimentResult
    from repro.traces import google

    seed = int(payload.get("seed", 2019))
    users = int(payload.get("users", 492))
    chunk = int(payload.get("chunk", 0) or google.DEFAULT_CHUNK)
    config = dataclasses.replace(
        google.TraceConfig(), seed=seed, users=users
    )
    stats = google.stream_statistics(
        google.iter_users(config, chunk=chunk)
    )
    return ExperimentResult(
        experiment="trace",
        title=f"Streaming trace summary: {users} users, seed {seed}",
        rows=({"seed": seed, "users": users, **stats},),
    )


def _run_sleep(payload: dict[str, t.Any]) -> t.Any:
    from repro.harness.results import ExperimentResult

    marker = payload.get("crash_unless")
    if marker and not os.path.exists(marker):
        # Leave the marker *before* dying so the requeued attempt
        # survives: the crash-then-recover shape shard tests need.
        with open(marker, "w") as fh:
            fh.write("crashed once\n")
        os._exit(13)
    if payload.get("fail"):
        raise ServiceError(f'sleep job asked to fail: {payload.get("label")}')
    duration = float(payload.get("duration_s", 0.0))
    if duration:
        time.sleep(duration)
    return ExperimentResult(
        experiment="sleep",
        title="Worker hold",
        rows=({"slept_s": duration, "label": payload.get("label", "")},),
    )


# --------------------------------------------------------------------
# Runtime state held by the service (never crosses a process).
# --------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class JobEvent:
    """One SSE-streamable lifecycle event, ordered by ``seq``."""

    seq: int
    event: str
    data: dict[str, t.Any]


@dataclasses.dataclass
class Job:
    """One submission's full runtime record, service-internal."""

    id: str
    key: str
    kind: str
    payload: dict[str, t.Any]
    client: str
    priority: int
    shard: int
    deadline_s: float | None = None
    state: str = QUEUED
    attempts: int = 0
    cache_hit: bool = False
    result: dict[str, t.Any] | None = None
    error: str | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    events: list[JobEvent] = dataclasses.field(default_factory=list)
    completions: int = 0  # exactly-once guard: must never exceed 1
    #: Distributed trace identity; journaled so recovery re-admits the
    #: job under its original trace.
    trace_id: str = ""
    #: Wall-clock phase marks and open span ids, service-internal —
    #: the raw material GET /jobs/<id>/trace's spans are cut from.
    trace_marks: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    def envelope(self) -> dict[str, t.Any]:
        """The journal's ``accepted`` record body — everything a
        restarted service needs to re-admit this job as its old self
        (key, client, priority and deadline all restored)."""
        doc: dict[str, t.Any] = {
            "id": self.id,
            "key": self.key,
            "kind": self.kind,
            "payload": self.payload,
            "client": self.client,
            "priority": self.priority,
        }
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        return doc

    def summary(self) -> dict[str, t.Any]:
        """The status document the HTTP API serves."""
        doc: dict[str, t.Any] = {
            "id": self.id,
            "key": self.key,
            "kind": self.kind,
            "client": self.client,
            "priority": self.priority,
            "shard": self.shard,
            "state": self.state,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "trace_id": self.trace_id,
        }
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.error is not None:
            doc["error"] = self.error
        if self.result is not None:
            doc["wall_s"] = self.result.get("wall_s")
            doc["result"] = json.loads(self.result["result_json"])
        return doc

"""The long-lived trace service: queue → shards → cache → events.

:class:`TraceService` is the asyncio heart of :mod:`repro.service`.
One instance owns N shard loops (each an ``asyncio.Task`` draining a
priority queue into an executor), the shared content-addressed result
cache, the dedupe map, and the per-job event logs that SSE subscribers
replay.  The HTTP layer (:mod:`repro.service.http`) is a thin
translation onto this class; everything here is directly usable
in-process, which is how the unit tests and the harness experiment
drive it.

The submission path, in order:

1. **validate** the payload (bad requests never reach a worker),
2. **dedupe** by job key — an identical in-flight or completed job is
   returned as-is (a completed one counts as a cache hit),
3. **probe the disk cache** — a warm entry completes the job without
   queueing (this is what a fresh service instance pointed at a warm
   cache directory does for ≥95% of resubmitted work),
4. **admission** — capacity/quota bounds, 429 on the HTTP side,
5. **enqueue** on the key's shard, highest priority first.

Exactly-once: a job key maps to at most one live job; the shard loop
is the only writer of terminal states; ``Job.completions`` counts
terminal transitions and the health check flags any job where it is
not exactly 1.  Crashed or overdue workers requeue under the
:mod:`repro.faults` retry policy; in-job exceptions fail immediately
(the campaign pool's deterministic-failure rule).

Durability (``journal_dir`` set): every transition is written ahead to
the :class:`~repro.service.journal.JobJournal` — ``accepted`` before a
job joins its queue, ``dispatched`` before it reaches a worker, the
terminal record before subscribers hear about it.  A crashed instance
replays the journal on :meth:`TraceService.start` and re-admits every
in-flight job through the normal dedupe → cache-probe → admission
path, so work whose result landed in the content-addressed cache
before the crash completes at the door and only genuinely unfinished
work runs again.  ``aclose(drain=True)`` is the graceful exit: new
submissions get 503 + Retry-After, in-flight jobs finish up to the
drain deadline, and a clean-shutdown marker lets the next boot skip
replay.  Journal write failures (disk full) are counted and survived —
the service prefers staying up to staying durable, and says so in
``service_journal_errors_total``.

Telemetry (always on): every admitted job carries a distributed trace
context (:mod:`repro.obs.distributed`) — minted at the HTTP door or by
``submit`` itself, journaled in the envelope so recovery re-admits the
job under its original trace id, and handed across the spawn boundary
to the worker.  The service records contiguous wall-clock phase spans
(cache probe → admission → queue wait → breaker gate → worker →
publish) into a bounded :class:`~repro.obs.distributed.TraceStore`,
the worker ships back its sim-clock spans as children of its attempt
span, and ``GET /jobs/<id>/trace`` serves the joined tree plus the
critical-path breakdown.  The same phase timings feed explicit-bucket
latency histograms on ``/metrics`` and a rolling-window SLO tracker
(:mod:`repro.service.slo`) whose multi-window burn-rate alert backs
the ``service.slo`` health check and ``service_slo_burn`` gauge.

Overload (always on): each shard owns a
:class:`~repro.service.breaker.CircuitBreaker` fed by the same
crash/timeout verdicts the retry policy sees; a tripped shard stops
being fed and recovers through half-open probing.  Admission sheds
jobs bound for an open shard and jobs whose client deadline cannot be
met at current queue depth (``service_shed_total{reason}``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import pathlib
import time
import typing as t

from repro import faults
from repro.campaign.cache import CacheEntry, ResultCache
from repro.campaign.pool import DEFAULT_RETRY
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.faults.recovery import RetryPolicy
from repro.harness.results import ExperimentResult
from repro.obs import distributed as dist
from repro.obs.distributed import SpanRecord, TraceContext, TraceStore
from repro.obs.metrics import MetricsRegistry
from repro.service import jobs as jobs_mod
from repro.service.slo import SloConfig, SloTracker
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service import journal as journal_mod
from repro.service.journal import (
    JobJournal,
    JournalConfig,
    JournalWriteError,
    ReplayState,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
    Job,
    JobEvent,
    run_payload,
)
from repro.service.queue import AdmissionController
from repro.service.shards import (
    JobAbortedError,
    JobExecutionError,
    ShardRouter,
    WorkerCrashError,
    make_executor,
)


#: Explicit buckets for the service latency histograms: 1 ms to 60 s.
#: /metrics renders these as cumulative ``_bucket{le=...}`` series.
LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Sim-span sampling used when a spawn worker captures its engine
#: timeline (mirrors the harness's traced-run defaults; fetched
#: lazily because the registry imports this module's experiment).
_WORKER_SAMPLING: dict[str, float] | None = None


def _worker_sampling() -> dict[str, float]:
    global _WORKER_SAMPLING
    if _WORKER_SAMPLING is None:
        from repro.harness.registry import DEFAULT_TRACE_SAMPLING

        _WORKER_SAMPLING = dict(DEFAULT_TRACE_SAMPLING)
    return _WORKER_SAMPLING


def _crash_process() -> None:  # pragma: no cover - by definition
    """Die like SIGKILL: no atexit, no finally, no flushing.

    Module-level so chaos tests can monkeypatch it into something
    observable instead of actually losing the interpreter.
    """
    os._exit(137)


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`TraceService` instance is built from."""

    shards: int = 2
    capacity: int = 64
    per_client_quota: int = 16
    #: ``spawn`` (real worker processes, crash isolation — the
    #: production default) or ``thread`` (in-process, fast startup).
    executor: str = "spawn"
    cache_dir: str | pathlib.Path | None = None
    job_timeout_s: float = 300.0
    retry: RetryPolicy = DEFAULT_RETRY
    retry_after_s: float = 0.5
    #: Write-ahead journal directory; ``None`` disables durability.
    journal_dir: str | pathlib.Path | None = None
    #: Journal fsync policy: ``always`` / ``batch`` / ``never``.
    journal_fsync: str = "batch"
    #: Compact the journal once a segment holds this many records.
    journal_rotate_records: int = 4096
    #: How long ``aclose(drain=True)`` waits for in-flight jobs.
    drain_timeout_s: float = 30.0
    #: Consecutive worker crashes/timeouts that trip a shard breaker.
    breaker_failures: int = 3
    #: Seconds a tripped breaker cools before its half-open probe.
    breaker_cooldown_s: float = 5.0
    #: SLO objectives and burn-rate alert windows (``service.slo``).
    slo: SloConfig = dataclasses.field(default_factory=SloConfig)
    #: Distinct distributed traces held for ``GET /jobs/<id>/trace``.
    trace_keep: int = 256

    def __post_init__(self) -> None:
        if self.job_timeout_s <= 0:
            raise ConfigurationError("job_timeout_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ConfigurationError("drain_timeout_s must be positive")
        if self.trace_keep < 1:
            raise ConfigurationError("trace_keep must be >= 1")
        # Validate eagerly so a bad config dies at construction, not
        # at first journal append / breaker trip.
        JournalConfig(fsync=self.journal_fsync,
                      rotate_records=self.journal_rotate_records)
        BreakerConfig(failure_threshold=self.breaker_failures,
                      cooldown_s=self.breaker_cooldown_s)

    def journal_config(self) -> JournalConfig:
        return JournalConfig(fsync=self.journal_fsync,
                             rotate_records=self.journal_rotate_records)

    def breaker_config(self) -> BreakerConfig:
        return BreakerConfig(failure_threshold=self.breaker_failures,
                             cooldown_s=self.breaker_cooldown_s)


class TraceService:
    """Accept jobs, run them on sharded workers, stream their events."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.router = ShardRouter(self.config.shards)
        self.admission = AdmissionController(
            capacity=self.config.capacity,
            per_client_quota=self.config.per_client_quota,
            retry_after_s=self.config.retry_after_s,
        )
        self.cache: ResultCache | None = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None else None
        )
        self.metrics = MetricsRegistry()
        self._submitted = self.metrics.counter(
            "service_jobs_submitted_total", "Jobs accepted, by kind")
        self._rejected = self.metrics.counter(
            "service_admission_rejected_total", "429s, by reason")
        self._finished = self.metrics.counter(
            "service_jobs_finished_total", "Terminal transitions, by state")
        self._hits = self.metrics.counter(
            "service_cache_hits_total",
            "Submissions answered without running (dedupe or disk cache)")
        self._requeues = self.metrics.counter(
            "service_requeues_total", "Crash/timeout retries")
        self._shed = self.metrics.counter(
            "service_shed_total",
            "Submissions shed, by reason (deadline/breaker/draining)")
        self._recovered = self.metrics.counter(
            "service_recovered_total",
            "Journal-replayed jobs re-admitted at boot, by outcome")
        self._journal_errors = self.metrics.counter(
            "service_journal_errors_total",
            "Journal appends that failed (service kept running)")
        self._journal_bad = self.metrics.counter(
            "service_journal_bad_records_total",
            "Torn/corrupt journal records found at replay, by kind")
        self._breaker_events = self.metrics.counter(
            "service_breaker_transitions_total",
            "Circuit-breaker state transitions, by shard and new state")
        self._depth = self.metrics.gauge(
            "service_queue_depth", "Queued jobs right now")
        self._running = self.metrics.gauge(
            "service_jobs_running", "Jobs executing right now")
        self._wall = self.metrics.histogram(
            "service_job_wall_s", help="Fresh job execution seconds")
        self._admission_latency = self.metrics.histogram(
            "service_admission_latency_s", buckets=LATENCY_BUCKETS,
            help="Submit entry to enqueue seconds")
        self._queue_wait = self.metrics.histogram(
            "service_queue_wait_s", buckets=LATENCY_BUCKETS,
            help="Enqueue to shard dequeue seconds")
        self._worker_wall = self.metrics.histogram(
            "service_worker_wall_s", buckets=LATENCY_BUCKETS,
            help="Per-attempt worker execution seconds")
        self._e2e = self.metrics.histogram(
            "service_e2e_latency_s", buckets=LATENCY_BUCKETS,
            help="Accept to publish seconds, end to end")
        self._slo_burn = self.metrics.gauge(
            "service_slo_burn",
            "SLO burn rate, by objective and window")
        self.slo = SloTracker(self.config.slo)
        #: Distributed wall-clock spans, by trace id (bounded).
        self.traces = TraceStore(keep=self.config.trace_keep)

        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._queues: list[asyncio.PriorityQueue] = []
        self._executors: list[t.Any] = []
        self._loops: list[asyncio.Task] = []
        self._cancel_events: dict[str, asyncio.Event] = {}
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._next_id = 0
        self._enqueue_seq = 0
        self._closed = False
        self._draining = False
        self._ewma_wall_s = 0.0
        self.breakers: list[CircuitBreaker] = []
        self.journal: JobJournal | None = (
            JobJournal(self.config.journal_dir, self.config.journal_config())
            if self.config.journal_dir is not None else None
        )
        #: What the last :meth:`start` recovered (``None`` before it).
        self.last_recovery: ReplayState | None = None

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        if self._loops:
            raise ServiceError("service already started")
        for shard in range(self.config.shards):
            self._queues.append(asyncio.PriorityQueue())
            self._executors.append(make_executor(
                self.config.executor, timeout_s=self.config.job_timeout_s,
            ))
            self.breakers.append(CircuitBreaker(
                self.config.breaker_config(), name=f"shard-{shard}",
                on_transition=self._make_breaker_observer(shard),
            ))
            self._loops.append(asyncio.create_task(
                self._shard_loop(shard), name=f"service-shard-{shard}",
            ))
        if self.journal is not None:
            self._recover()

    def _make_breaker_observer(
        self, shard: int
    ) -> t.Callable[[str, str], None]:
        def observe(_old: str, new: str) -> None:
            self._breaker_events.inc(shard=str(shard), state=new)
        return observe

    def _recover(self) -> None:
        """Replay the journal and re-admit every in-flight job.

        Runs synchronously inside :meth:`start`, before any traffic:
        recovered jobs go through the ordinary ``submit`` path (dedupe,
        cache probe, admission), so a job whose result reached the
        disk cache before the crash completes at the door, and the
        rest requeue under their original keys, clients, priorities
        and deadlines.  A clean-shutdown marker makes all of this a
        no-op.  Nothing here is fatal: torn and corrupt records are
        counted, and a recovered job the admission bounds refuse
        (which cannot happen unless the capacity was lowered between
        boots) is counted as shed and dropped.
        """
        assert self.journal is not None
        state = self.journal.replay()
        self.last_recovery = state
        if state.torn_records:
            self._journal_bad.inc(state.torn_records, kind="torn")
        if state.corrupt_records:
            self._journal_bad.inc(state.corrupt_records, kind="corrupt")
        if state.clean or not state.live:
            # Nothing to re-admit; compact the (fully terminal) history
            # away and start a fresh segment.
            try:
                self.journal.rotate(live=[])
            except (OSError, JournalWriteError):
                self._journal_errors.inc(op="rotate")
            return
        for envelope in sorted(state.live.values(),
                               key=lambda e: str(e.get("id", ""))):
            recovered_trace = (
                TraceContext.root(str(envelope["trace_id"]),
                                  recovered="true")
                if envelope.get("trace_id") else None
            )
            try:
                job = self.submit(
                    envelope["kind"], envelope.get("payload") or {},
                    client=str(envelope.get("client", "anonymous")),
                    priority=int(envelope.get("priority", 0)),
                    deadline_s=envelope.get("deadline_s"),
                    trace=recovered_trace,
                )
            except AdmissionError as exc:
                self._shed.inc(reason=f"recovery-{exc.reason}")
                self._recovered.inc(outcome="shed")
                continue
            except ServiceError:
                # e.g. an experiment renamed away between boots; the
                # journal must never be able to wedge a boot.
                self._recovered.inc(outcome="invalid")
                continue
            self._recovered.inc(
                outcome="cache_hit" if job.cache_hit else "requeued")
        # Compact only now that every live envelope has been re-journaled
        # under its new id: until the rotate's atomic rename lands, the
        # old segments still hold the full recovered state, so a kill at
        # any instant during re-admission replays the same live set again
        # (submit's key dedupe makes that idempotent).  The compacted
        # segment carries exactly the jobs still in flight; terminal
        # history lives on in the result cache, not the journal.
        try:
            self.journal.rotate(live=[
                job.envelope() for job in self._jobs.values()
                if job.state not in TERMINAL
            ])
        except (OSError, JournalWriteError):
            self._journal_errors.inc(op="rotate")

    async def aclose(self, *, drain: bool = False,
                     drain_timeout_s: float | None = None) -> None:
        """Stop the service.

        ``drain=False`` (the default) is the abrupt path the tests and
        embedders use: shard loops are cancelled, the in-flight job
        (if any) is marked cancelled, queued jobs stay queued — on a
        journaled service they replay at the next boot, exactly like a
        crash.  ``drain=True`` is the operational path: admission
        flips to 503 + Retry-After immediately, in-flight and queued
        jobs run to completion (up to *drain_timeout_s*, default
        :attr:`ServiceConfig.drain_timeout_s`), and — when everything
        landed — the journal gets its clean-shutdown marker so the
        next boot skips replay.
        """
        if drain and not self._closed:
            self._draining = True
            deadline = time.monotonic() + (
                self.config.drain_timeout_s if drain_timeout_s is None
                else drain_timeout_s
            )
            while time.monotonic() < deadline and any(
                    job.state not in TERMINAL
                    for job in self._jobs.values()):
                await asyncio.sleep(0.02)
        self._closed = True
        self._draining = False
        for task in self._loops:
            task.cancel()
        if self._loops:
            # Bounded: a shard loop that mishandles its cancellation
            # must not wedge teardown (asyncio.wait never re-raises
            # the tasks' exceptions, and abandons them on timeout).
            await asyncio.wait(self._loops, timeout=5.0)
        for executor in self._executors:
            await executor.aclose()
        self._loops.clear()
        if self.journal is not None:
            clean = all(job.state in TERMINAL
                        for job in self._jobs.values())
            try:
                self.journal.close(mark_clean=clean)
            except JournalWriteError:
                self._journal_errors.inc(op="close")

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission ---------------------------------------------------

    def submit(self, kind: str, payload: t.Mapping[str, t.Any] | None = None,
               *, client: str = "anonymous", priority: int = 0,
               deadline_s: float | None = None,
               trace: TraceContext | None = None) -> Job:
        """Admit one job (or attach to its twin); returns its record.

        *deadline_s* is the client's completion budget in seconds; a
        submission whose estimated wait already exceeds it is shed
        with ``reason="deadline"`` instead of admitted.

        *trace* is the distributed trace context this submission
        continues (the HTTP layer passes the request's, parented
        under its parse span); omitted, a fresh root trace is minted —
        every admitted job has a trace id.  A submission that attaches
        to a twin keeps the *twin's* trace: the work only ran once,
        so there is only one trace to tell.
        """
        if self._closed:
            raise ServiceError("service is shutting down")
        if self._draining:
            self._shed.inc(reason="draining")
            raise ServiceUnavailableError(
                "service is draining; retry against the next instance",
                retry_after_s=self.config.retry_after_s,
            )
        payload = dict(payload or {})
        jobs_mod.validate_payload(kind, payload)
        key = jobs_mod.job_key(kind, payload)

        twin_id = self._by_key.get(key)
        if twin_id is not None:
            twin = self._jobs[twin_id]
            if twin.state not in (FAILED, CANCELLED):
                if twin.state == DONE:
                    self._hits.inc(source="dedupe")
                return twin
            # failed/cancelled twins may be resubmitted fresh

        ctx = trace or TraceContext.root()
        t0 = time.time()
        job = Job(
            id=f"j{self._next_id:05d}",
            key=key,
            kind=kind,
            payload=payload,
            client=client,
            priority=int(priority),
            shard=self.router.shard_for(key),
            deadline_s=None if deadline_s is None else float(deadline_s),
            submitted_at=time.monotonic(),
            trace_id=ctx.trace_id,
            trace_marks={
                "t0": t0,
                "job_span": dist.new_span_id(),
                "parent": ctx.parent_span_id,
            },
        )
        self._next_id += 1

        cached = self._probe_cache(kind, payload)
        t_probe = time.time()
        if cached is not None:
            self._span(job, "cache.probe", t0, t_probe, hit=True)
            # Completing at the door bypasses admission, the breaker
            # and the deadline check: the answer is already on disk.
            self._register(job)
            self._journal(journal_mod.ACCEPTED, **job.envelope())
            job.cache_hit = True
            job.result = cached
            self._span(job, "admission", t_probe, time.time(),
                       outcome="cache-hit")
            self._emit(job, "queued", {"cache": "probing"})
            self._complete(job, DONE)
            self._hits.inc(source="disk")
            return job

        backlog = sum(
            1 for other in self._jobs.values()
            if other.state in (QUEUED, RUNNING)
        )
        client_active = sum(
            1 for other in self._jobs.values()
            if other.client == client and other.state in (QUEUED, RUNNING)
        )
        breaker = (self.breakers[job.shard]
                   if job.shard < len(self.breakers) else None)
        try:
            if breaker is not None and breaker.shedding:
                self._shed.inc(reason="breaker")
                raise AdmissionError(
                    f"shard {job.shard} circuit breaker is open "
                    f"({breaker.consecutive_failures} consecutive "
                    f"worker failures)",
                    reason="breaker",
                    retry_after_s=round(
                        max(self.config.retry_after_s,
                            breaker.cooldown_remaining()), 3),
                )
            self.admission.check_deadline(
                job.deadline_s, self._estimated_wait_s(job.shard), backlog)
            self.admission.admit(client, backlog, client_active)
        except AdmissionError as exc:
            if exc.reason == "deadline":
                self._shed.inc(reason="deadline")
            if exc.reason in ("breaker", "deadline"):
                # Shed work is an availability miss the SLO must see:
                # the client asked and the service turned them away.
                self.slo.record_shed()
                self._update_slo_gauge()
            self._rejected.inc(reason=exc.reason)
            raise

        self._register(job)
        self._journal(journal_mod.ACCEPTED, **job.envelope())
        self._submitted.inc(kind=kind)
        self._cancel_events[job.id] = asyncio.Event()
        self._enqueue_seq += 1
        self._queues[job.shard].put_nowait(
            (-job.priority, self._enqueue_seq, job.id)
        )
        self._depth.add(1.0)
        t_enqueue = time.time()
        job.trace_marks["enqueued"] = t_enqueue
        self._span(job, "cache.probe", t0, t_probe, hit=False)
        self._span(job, "admission", t_probe, t_enqueue,
                   backlog=backlog, shard=job.shard)
        self._admission_latency.observe(
            t_enqueue - t0, **self._metric_labels(job))
        self._emit(job, "queued", {"shard": job.shard})
        return job

    def _estimated_wait_s(self, shard: int) -> float:
        """Projected submit→done wait for a new job on *shard*: the
        shard's backlog (plus the newcomer) times the EWMA of recent
        job walls.  Zero until the first completion — the estimator
        never sheds without evidence."""
        if self._ewma_wall_s <= 0.0 or shard >= len(self._queues):
            return 0.0
        shard_backlog = self._queues[shard].qsize() + sum(
            1 for job in self._jobs.values()
            if job.shard == shard and job.state == RUNNING
        )
        return (shard_backlog + 1) * self._ewma_wall_s

    def _note_wall(self, wall_s: float) -> None:
        if wall_s <= 0:
            return
        if self._ewma_wall_s <= 0.0:
            self._ewma_wall_s = wall_s
        else:
            self._ewma_wall_s = 0.2 * wall_s + 0.8 * self._ewma_wall_s

    def _journal(self, record_type: str, **fields: t.Any) -> None:
        """Best-effort durable append; failures counted, never raised."""
        if self.journal is None:
            return
        try:
            self.journal.append(record_type, **fields)
        except JournalWriteError:
            self._journal_errors.inc(op=record_type)

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._by_key[job.key] = job.id

    # -- distributed tracing ------------------------------------------

    def _span(self, job: Job, name: str, start_s: float, end_s: float,
              *, parent: str | None = "job", worker: str = "service",
              span_id: str | None = None, **tags: t.Any) -> None:
        """Record one service phase span under *job*'s trace.

        *span_id* is normally minted here; the worker span passes its
        pre-allocated id (the one sim child spans already reference).
        """
        if not job.trace_id:
            return
        parent_id = (job.trace_marks.get("job_span")
                     if parent == "job" else parent)
        self.traces.add(SpanRecord(
            trace_id=job.trace_id,
            span_id=span_id or dist.new_span_id(),
            name=name,
            start_s=start_s,
            end_s=end_s,
            parent_id=parent_id,
            worker=worker,
            tags={k: v for k, v in tags.items() if v is not None},
        ))

    def record_span(self, *, trace_id: str, span_id: str, name: str,
                    start_s: float, end_s: float,
                    parent_id: str | None = None, worker: str = "service",
                    tags: dict[str, t.Any] | None = None) -> None:
        """Public span intake for co-located layers (the HTTP front
        end records its ``http.parse`` span through this)."""
        self.traces.add(SpanRecord(
            trace_id=trace_id, span_id=span_id, name=name,
            start_s=start_s, end_s=end_s, parent_id=parent_id,
            worker=worker, tags=dict(tags or {}),
        ))

    def trace(self, job_id: str) -> dict[str, t.Any]:
        """The ``GET /jobs/<id>/trace`` document: every span recorded
        under the job's trace id, connectivity, and the critical-path
        breakdown."""
        job = self.job(job_id)
        spans = self.traces.spans(job.trace_id)
        return {
            "job_id": job.id,
            "trace_id": job.trace_id,
            "state": job.state,
            "connected": dist.connected(spans),
            "critical_path": dist.critical_path(spans),
            "dropped_spans": self.traces.dropped(job.trace_id),
            "spans": [span.to_doc() for span in spans],
        }

    def _metric_labels(self, job: Job) -> dict[str, str]:
        """Low-cardinality labels for the latency histograms."""
        return {
            "kind": job.kind,
            "backend": self.config.executor,
            "experiment": (str(job.payload.get("experiment", "-"))
                           if job.kind == "experiment" else "-"),
        }

    def _update_slo_gauge(self) -> None:
        for objective in self.slo.objectives():
            for window in ("short", "long"):
                self._slo_burn.set(
                    self.slo.burn_rate(
                        objective, self.config.slo.window_s(window)),
                    objective=objective, window=window,
                )

    def _probe_cache(
        self, kind: str, payload: dict[str, t.Any]
    ) -> dict[str, t.Any] | None:
        if self.cache is None:
            return None
        cache_key = jobs_mod.cache_key_for(kind, payload)
        if cache_key is None:
            return None
        entry = self.cache.get(cache_key)
        if entry is None:
            return None
        return {
            "result_json": entry.result.to_json(),
            "wall_s": entry.wall_s,
        }

    def _store(self, job: Job) -> None:
        if self.cache is None or job.result is None:
            return
        cache_key = jobs_mod.cache_key_for(job.kind, job.payload)
        if cache_key is None:
            return
        result = ExperimentResult.from_json(job.result["result_json"])
        self.cache.put(CacheEntry(
            key=cache_key,
            job_key=job.key,
            experiment=(job.payload.get("experiment", job.kind)
                        if job.kind == "experiment" else job.kind),
            preset=job.payload.get("preset", "-"),
            seed=int(job.payload.get("seed", 0)),
            wall_s=job.result["wall_s"],
            result=result,
        ))

    # -- queries ------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job: {job_id!r}") from None

    def jobs(self) -> tuple[Job, ...]:
        return tuple(self._jobs.values())

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    # -- cancel -------------------------------------------------------

    async def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job; terminal jobs are left be."""
        job = self.job(job_id)
        if job.state in TERMINAL:
            return job
        if job.state == QUEUED:
            self._complete(job, CANCELLED)
            self._depth.add(-1.0)
            return job
        # Running: flag it and kill the in-flight execution; the shard
        # loop owns the terminal transition.
        event = self._cancel_events.get(job.id)
        if event is not None:
            event.set()
        await self._executors[job.shard].abort()
        return job

    # -- events and streaming -----------------------------------------

    def _emit(self, job: Job, event: str,
              data: dict[str, t.Any] | None = None) -> None:
        payload = {"id": job.id, "key": job.key, "state": job.state}
        payload.update(data or {})
        record = JobEvent(seq=len(job.events) + 1, event=event, data=payload)
        job.events.append(record)
        for queue in self._subscribers.get(job.id, ()):  # fan out live
            queue.put_nowait(record)

    def subscribe(self, job_id: str) -> tuple[list[JobEvent], asyncio.Queue]:
        """Replay history + a live queue; always subscribe-then-replay
        so a reconnecting client can dedupe on ``seq`` and never miss
        an event between snapshot and subscription."""
        job = self.job(job_id)
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        return list(job.events), queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        listeners = self._subscribers.get(job_id)
        if listeners and queue in listeners:
            listeners.remove(queue)
        if listeners is not None and not listeners:
            del self._subscribers[job_id]

    def subscriber_count(self, job_id: str) -> int:
        return len(self._subscribers.get(job_id, ()))

    # -- the shard loop ----------------------------------------------

    def _complete(self, job: Job, state: str,
                  *, error: str | None = None) -> None:
        # WAL rule: the terminal record is durable before any
        # subscriber hears the terminal event.
        t_publish = time.time()
        self._journal(
            {DONE: journal_mod.DONE, FAILED: journal_mod.FAILED,
             CANCELLED: journal_mod.CANCELLED}[state],
            id=job.id, key=job.key, cache_hit=job.cache_hit,
        )
        job.state = state
        job.error = error
        job.finished_at = time.monotonic()
        job.completions += 1
        self._finished.inc(state=state)
        event = {DONE: "done", FAILED: "failed", CANCELLED: "cancelled"}
        data: dict[str, t.Any] = {}
        if error is not None:
            data["error"] = error
        if state == DONE and job.result is not None:
            data["wall_s"] = job.result["wall_s"]
            data["cache_hit"] = job.cache_hit
        marks = job.trace_marks
        traced = bool(job.trace_id) and "t0" in marks
        if traced:
            # The publish phase covers the WAL append and result
            # bookkeeping; the root span closes *before* the emit so
            # the critical path shipped in the terminal event already
            # covers the whole job.
            t_end = time.time()
            self._span(job, "publish", t_publish, t_end, state=state)
            self.traces.add(SpanRecord(
                trace_id=job.trace_id,
                span_id=marks["job_span"],
                name="job",
                start_s=marks["t0"],
                end_s=t_end,
                parent_id=marks.get("parent"),
                worker="service",
                tags={"job_id": job.id, "kind": job.kind, "state": state,
                      "client": job.client, "cache_hit": job.cache_hit,
                      "attempts": job.attempts},
            ))
            e2e_s = t_end - marks["t0"]
            self._e2e.observe(e2e_s, **self._metric_labels(job))
            data["trace_id"] = job.trace_id
            if state in (DONE, FAILED):
                path = dist.critical_path(self.traces.spans(job.trace_id))
                data["critical_path"] = {
                    "e2e_s": round(path["e2e_s"], 6),
                    "components": path["components"],
                    "coverage": path["coverage"],
                }
            if state == DONE:
                self.slo.record_completion(ok=True, latency_s=e2e_s)
            elif state == FAILED:
                self.slo.record_completion(ok=False)
            self._update_slo_gauge()
        self._emit(job, event[state], data)
        if traced:
            t_notify = time.time()
            self._span(job, "sse.notify", t_notify, t_notify,
                       subscribers=len(self._subscribers.get(job.id, ())))
        self._cancel_events.pop(job.id, None)

    async def _breaker_gate(self, breaker: CircuitBreaker) -> None:
        """Park the shard loop until its breaker admits a dispatch —
        either closed, or open-gone-half-open offering a probe slot."""
        while not breaker.allow():
            await asyncio.sleep(
                min(0.05, max(0.005, breaker.cooldown_remaining()))
            )

    async def _shard_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        executor = self._executors[shard]
        breaker = self.breakers[shard]
        while True:
            _, _, job_id = await queue.get()
            t_dequeue = time.time()
            job = self._jobs[job_id]
            if job.state != QUEUED:  # cancelled while waiting
                continue
            await self._breaker_gate(breaker)
            if job.state != QUEUED:
                # Cancelled while parked at an open breaker: cancel()
                # already completed it and settled the depth gauge.
                # The gate may have granted the half-open probe slot —
                # hand it back or the gate never opens again.
                breaker.release_probe()
                continue
            cancel = self._cancel_events.get(job.id)
            if cancel is None:
                # Defensive: a terminal transition raced the dequeue;
                # _complete already popped the event.
                breaker.release_probe()
                continue
            self._maybe_crash(shard)
            self._depth.add(-1.0)
            job.state = RUNNING
            self._running.add(1.0)
            t_gate = time.time()
            t_enqueued = job.trace_marks.get("enqueued", t_dequeue)
            self._span(job, "queue.wait", t_enqueued, t_dequeue,
                       worker=f"shard-{shard}", shard=shard)
            self._span(job, "breaker.gate", t_dequeue, t_gate,
                       worker=f"shard-{shard}", state=breaker.state)
            self._queue_wait.observe(
                t_dequeue - t_enqueued, **self._metric_labels(job))
            self._journal(journal_mod.DISPATCHED, id=job.id,
                          attempt=job.attempts + 1, shard=shard)
            self._emit(job, "started", {"shard": shard})
            try:
                await self._run_with_retry(job, executor, cancel, breaker)
            finally:
                self._running.add(-1.0)

    @staticmethod
    def _maybe_crash(shard: int) -> None:
        """The ``service.crash`` fault kind: chaos plans kill the
        whole service process at a dispatch point, exactly what a
        SIGKILL mid-campaign does — the journal is the only survivor."""
        inj = faults.injector()
        if inj.enabled and inj.fires(
                "service.crash", f"service-shard-{shard}"):
            _crash_process()

    async def _run_with_retry(self, job: Job, executor: t.Any,
                              cancel: asyncio.Event,
                              breaker: CircuitBreaker) -> None:
        retry = self.config.retry
        capture_sim = self.config.executor == "spawn"
        while True:
            job.attempts += 1
            attempt_start = time.time()
            worker_span = dist.new_span_id()
            trace_arg = {
                "trace_id": job.trace_id,
                "span_id": worker_span,
                "capture_sim": capture_sim,
                "sampling": _worker_sampling() if capture_sim else None,
            }
            run = asyncio.ensure_future(
                executor.run(run_payload,
                             (job.kind, job.payload, trace_arg))
            )
            stop = asyncio.ensure_future(cancel.wait())
            try:
                await asyncio.wait({run, stop},
                                   return_when=asyncio.FIRST_COMPLETED)
            except asyncio.CancelledError:
                # Service shutdown with this job still in flight: tidy
                # the helper tasks (one loop turn to let their
                # cancellations land), then let the shard loop die.
                stop.cancel()
                run.cancel()
                await asyncio.wait({run, stop}, timeout=1.0)
                raise
            if not run.done():
                # Cancelled mid-flight.  The executor was already told
                # to abort (see cancel()); abandon the awaitable — a
                # spawn worker is already dead, a thread finishes into
                # the void and its result is discarded either way.
                run.cancel()
                try:
                    await run
                except asyncio.CancelledError:
                    # Two cancellations look identical here: the one we
                    # just injected into ``run``, and the shard loop
                    # *itself* being cancelled by aclose().  Swallowing
                    # the latter would leave a zombie loop that aclose
                    # awaits forever, so re-raise when it is ours.
                    current = asyncio.current_task()
                    if current is not None and current.cancelling():
                        self._complete(job, CANCELLED)
                        raise
                except Exception:
                    pass
                self._complete(job, CANCELLED)
                stop.cancel()
                return
            stop.cancel()
            shard_row = f"shard-{job.shard}"
            try:
                payload = run.result()
            except JobAbortedError:
                self._complete(job, CANCELLED)
                return
            except JobExecutionError as exc:
                # Deterministic in-job failure: the *worker* is fine,
                # so the breaker hears success, not failure.
                breaker.record_success()
                self._span(job, "worker", attempt_start, time.time(),
                           span_id=worker_span, worker=shard_row,
                           outcome="error", attempt=job.attempts,
                           retry=job.attempts - 1, shard=job.shard,
                           pid=executor.worker_pid())
                self._complete(job, FAILED, error=str(exc))
                return
            except WorkerCrashError as exc:
                breaker.record_failure()
                t_crash = time.time()
                self._span(job, "worker", attempt_start, t_crash,
                           span_id=worker_span, worker=shard_row,
                           outcome=exc.reason, attempt=job.attempts,
                           retry=job.attempts - 1, shard=job.shard)
                if cancel.is_set():
                    self._complete(job, CANCELLED)
                    return
                if job.attempts < retry.max_attempts:
                    self._requeues.inc(reason=exc.reason)
                    self._emit(job, "requeued", {
                        "reason": exc.reason, "attempt": job.attempts,
                    })
                    # A tripped breaker pauses the retry too: hammering
                    # a sick shard with the same job is how one crashy
                    # submission burns a whole retry budget in <1s.
                    await self._breaker_gate(breaker)
                    self._span(job, "retry.wait", t_crash, time.time(),
                               worker=shard_row, attempt=job.attempts)
                    continue
                self._complete(
                    job, FAILED,
                    error=f"{exc.reason} after {job.attempts} attempts",
                )
                return
            breaker.record_success()
            if cancel.is_set():
                # Completion raced the cancel; cancel wins — the
                # client was already told the job was going away.
                self._complete(job, CANCELLED)
                return
            trace_doc = payload.pop("trace", None) or {}
            t_done = time.time()
            self._span(job, "worker", attempt_start, t_done,
                       span_id=worker_span, worker=shard_row,
                       outcome="ok", attempt=job.attempts,
                       retry=job.attempts - 1, shard=job.shard,
                       pid=trace_doc.get("pid"),
                       sim_truncated=trace_doc.get("truncated") or None)
            if trace_doc.get("records") and job.trace_id:
                sim_spans, _truncated = dist.sim_records_to_spans(
                    trace_doc["records"],
                    trace_id=job.trace_id,
                    parent_span_id=worker_span,
                    worker=f"pid-{trace_doc.get('pid', '?')}",
                )
                self.traces.extend(sim_spans)
            self._worker_wall.observe(
                payload["wall_s"], **self._metric_labels(job))
            job.result = payload
            self._wall.observe(payload["wall_s"])
            self._note_wall(payload["wall_s"])
            self._store(job)
            self._complete(job, DONE)
            return

    # -- introspection for /healthz ----------------------------------

    def shard_tasks(self) -> tuple[asyncio.Task, ...]:
        return tuple(self._loops)

    def queue_depths(self) -> tuple[int, ...]:
        return tuple(q.qsize() for q in self._queues)

    def describe(self) -> dict[str, t.Any]:
        """One JSON-able status document (the ``GET /jobs`` body)."""
        doc: dict[str, t.Any] = {
            "config": {
                "shards": self.config.shards,
                "capacity": self.config.capacity,
                "per_client_quota": self.config.per_client_quota,
                "executor": self.config.executor,
            },
            "counts": self.counts(),
            "queue_depths": list(self.queue_depths()),
            "draining": self._draining,
            "breakers": [b.describe() for b in self.breakers],
            "slo": self.slo.describe(),
            "traces_held": len(self.traces),
            "jobs": [job.summary() | {"result": None}
                     for job in self._jobs.values()],
        }
        if self.journal is not None:
            doc["journal"] = {
                "dir": str(self.journal.root),
                "records": self.journal.records_written,
                "write_errors": self.journal.write_errors,
            }
            if self.last_recovery is not None:
                state = self.last_recovery
                doc["journal"]["recovery"] = {
                    "clean": state.clean,
                    "replayed": len(state.live),
                    "torn": state.torn_records,
                    "corrupt": state.corrupt_records,
                }
        return doc

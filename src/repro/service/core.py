"""The long-lived trace service: queue → shards → cache → events.

:class:`TraceService` is the asyncio heart of :mod:`repro.service`.
One instance owns N shard loops (each an ``asyncio.Task`` draining a
priority queue into an executor), the shared content-addressed result
cache, the dedupe map, and the per-job event logs that SSE subscribers
replay.  The HTTP layer (:mod:`repro.service.http`) is a thin
translation onto this class; everything here is directly usable
in-process, which is how the unit tests and the harness experiment
drive it.

The submission path, in order:

1. **validate** the payload (bad requests never reach a worker),
2. **dedupe** by job key — an identical in-flight or completed job is
   returned as-is (a completed one counts as a cache hit),
3. **probe the disk cache** — a warm entry completes the job without
   queueing (this is what a fresh service instance pointed at a warm
   cache directory does for ≥95% of resubmitted work),
4. **admission** — capacity/quota bounds, 429 on the HTTP side,
5. **enqueue** on the key's shard, highest priority first.

Exactly-once: a job key maps to at most one live job; the shard loop
is the only writer of terminal states; ``Job.completions`` counts
terminal transitions and the health check flags any job where it is
not exactly 1.  Crashed or overdue workers requeue under the
:mod:`repro.faults` retry policy; in-job exceptions fail immediately
(the campaign pool's deterministic-failure rule).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import pathlib
import time
import typing as t

from repro.campaign.cache import CacheEntry, ResultCache
from repro.campaign.pool import DEFAULT_RETRY
from repro.errors import ConfigurationError, ServiceError
from repro.faults.recovery import RetryPolicy
from repro.harness.results import ExperimentResult
from repro.obs.metrics import MetricsRegistry
from repro.service import jobs as jobs_mod
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
    Job,
    JobEvent,
    run_payload,
)
from repro.service.queue import AdmissionController
from repro.service.shards import (
    JobAbortedError,
    JobExecutionError,
    ShardRouter,
    WorkerCrashError,
    make_executor,
)


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`TraceService` instance is built from."""

    shards: int = 2
    capacity: int = 64
    per_client_quota: int = 16
    #: ``spawn`` (real worker processes, crash isolation — the
    #: production default) or ``thread`` (in-process, fast startup).
    executor: str = "spawn"
    cache_dir: str | pathlib.Path | None = None
    job_timeout_s: float = 300.0
    retry: RetryPolicy = DEFAULT_RETRY
    retry_after_s: float = 0.5

    def __post_init__(self) -> None:
        if self.job_timeout_s <= 0:
            raise ConfigurationError("job_timeout_s must be positive")


class TraceService:
    """Accept jobs, run them on sharded workers, stream their events."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.router = ShardRouter(self.config.shards)
        self.admission = AdmissionController(
            capacity=self.config.capacity,
            per_client_quota=self.config.per_client_quota,
            retry_after_s=self.config.retry_after_s,
        )
        self.cache: ResultCache | None = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir is not None else None
        )
        self.metrics = MetricsRegistry()
        self._submitted = self.metrics.counter(
            "service_jobs_submitted_total", "Jobs accepted, by kind")
        self._rejected = self.metrics.counter(
            "service_admission_rejected_total", "429s, by reason")
        self._finished = self.metrics.counter(
            "service_jobs_finished_total", "Terminal transitions, by state")
        self._hits = self.metrics.counter(
            "service_cache_hits_total",
            "Submissions answered without running (dedupe or disk cache)")
        self._requeues = self.metrics.counter(
            "service_requeues_total", "Crash/timeout retries")
        self._depth = self.metrics.gauge(
            "service_queue_depth", "Queued jobs right now")
        self._running = self.metrics.gauge(
            "service_jobs_running", "Jobs executing right now")
        self._wall = self.metrics.histogram(
            "service_job_wall_s", help="Fresh job execution seconds")

        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._queues: list[asyncio.PriorityQueue] = []
        self._executors: list[t.Any] = []
        self._loops: list[asyncio.Task] = []
        self._cancel_events: dict[str, asyncio.Event] = {}
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._next_id = 0
        self._enqueue_seq = 0
        self._closed = False

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        if self._loops:
            raise ServiceError("service already started")
        for shard in range(self.config.shards):
            self._queues.append(asyncio.PriorityQueue())
            self._executors.append(make_executor(
                self.config.executor, timeout_s=self.config.job_timeout_s,
            ))
            self._loops.append(asyncio.create_task(
                self._shard_loop(shard), name=f"service-shard-{shard}",
            ))

    async def aclose(self) -> None:
        self._closed = True
        for task in self._loops:
            task.cancel()
        if self._loops:
            # Bounded: a shard loop that mishandles its cancellation
            # must not wedge teardown (asyncio.wait never re-raises
            # the tasks' exceptions, and abandons them on timeout).
            await asyncio.wait(self._loops, timeout=5.0)
        for executor in self._executors:
            await executor.aclose()
        self._loops.clear()

    # -- submission ---------------------------------------------------

    def submit(self, kind: str, payload: t.Mapping[str, t.Any] | None = None,
               *, client: str = "anonymous", priority: int = 0) -> Job:
        """Admit one job (or attach to its twin); returns its record."""
        if self._closed:
            raise ServiceError("service is shutting down")
        payload = dict(payload or {})
        jobs_mod.validate_payload(kind, payload)
        key = jobs_mod.job_key(kind, payload)

        twin_id = self._by_key.get(key)
        if twin_id is not None:
            twin = self._jobs[twin_id]
            if twin.state not in (FAILED, CANCELLED):
                if twin.state == DONE:
                    self._hits.inc(source="dedupe")
                return twin
            # failed/cancelled twins may be resubmitted fresh

        job = Job(
            id=f"j{self._next_id:05d}",
            key=key,
            kind=kind,
            payload=payload,
            client=client,
            priority=int(priority),
            shard=self.router.shard_for(key),
            submitted_at=time.monotonic(),
        )
        self._next_id += 1

        cached = self._probe_cache(kind, payload)
        if cached is not None:
            self._register(job)
            job.cache_hit = True
            job.result = cached
            self._emit(job, "queued", {"cache": "probing"})
            self._complete(job, DONE)
            self._hits.inc(source="disk")
            return job

        backlog = sum(
            1 for other in self._jobs.values()
            if other.state in (QUEUED, RUNNING)
        )
        client_active = sum(
            1 for other in self._jobs.values()
            if other.client == client and other.state in (QUEUED, RUNNING)
        )
        try:
            self.admission.admit(client, backlog, client_active)
        except Exception as exc:
            self._rejected.inc(reason=getattr(exc, "reason", "capacity"))
            raise

        self._register(job)
        self._submitted.inc(kind=kind)
        self._cancel_events[job.id] = asyncio.Event()
        self._enqueue_seq += 1
        self._queues[job.shard].put_nowait(
            (-job.priority, self._enqueue_seq, job.id)
        )
        self._depth.add(1.0)
        self._emit(job, "queued", {"shard": job.shard})
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._by_key[job.key] = job.id

    def _probe_cache(
        self, kind: str, payload: dict[str, t.Any]
    ) -> dict[str, t.Any] | None:
        if self.cache is None:
            return None
        cache_key = jobs_mod.cache_key_for(kind, payload)
        if cache_key is None:
            return None
        entry = self.cache.get(cache_key)
        if entry is None:
            return None
        return {
            "result_json": entry.result.to_json(),
            "wall_s": entry.wall_s,
        }

    def _store(self, job: Job) -> None:
        if self.cache is None or job.result is None:
            return
        cache_key = jobs_mod.cache_key_for(job.kind, job.payload)
        if cache_key is None:
            return
        result = ExperimentResult.from_json(job.result["result_json"])
        self.cache.put(CacheEntry(
            key=cache_key,
            job_key=job.key,
            experiment=(job.payload.get("experiment", job.kind)
                        if job.kind == "experiment" else job.kind),
            preset=job.payload.get("preset", "-"),
            seed=int(job.payload.get("seed", 0)),
            wall_s=job.result["wall_s"],
            result=result,
        ))

    # -- queries ------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job: {job_id!r}") from None

    def jobs(self) -> tuple[Job, ...]:
        return tuple(self._jobs.values())

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    # -- cancel -------------------------------------------------------

    async def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job; terminal jobs are left be."""
        job = self.job(job_id)
        if job.state in TERMINAL:
            return job
        if job.state == QUEUED:
            self._complete(job, CANCELLED)
            self._depth.add(-1.0)
            return job
        # Running: flag it and kill the in-flight execution; the shard
        # loop owns the terminal transition.
        event = self._cancel_events.get(job.id)
        if event is not None:
            event.set()
        await self._executors[job.shard].abort()
        return job

    # -- events and streaming -----------------------------------------

    def _emit(self, job: Job, event: str,
              data: dict[str, t.Any] | None = None) -> None:
        payload = {"id": job.id, "key": job.key, "state": job.state}
        payload.update(data or {})
        record = JobEvent(seq=len(job.events) + 1, event=event, data=payload)
        job.events.append(record)
        for queue in self._subscribers.get(job.id, ()):  # fan out live
            queue.put_nowait(record)

    def subscribe(self, job_id: str) -> tuple[list[JobEvent], asyncio.Queue]:
        """Replay history + a live queue; always subscribe-then-replay
        so a reconnecting client can dedupe on ``seq`` and never miss
        an event between snapshot and subscription."""
        job = self.job(job_id)
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        return list(job.events), queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        listeners = self._subscribers.get(job_id)
        if listeners and queue in listeners:
            listeners.remove(queue)
        if listeners is not None and not listeners:
            del self._subscribers[job_id]

    def subscriber_count(self, job_id: str) -> int:
        return len(self._subscribers.get(job_id, ()))

    # -- the shard loop ----------------------------------------------

    def _complete(self, job: Job, state: str,
                  *, error: str | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.monotonic()
        job.completions += 1
        self._finished.inc(state=state)
        event = {DONE: "done", FAILED: "failed", CANCELLED: "cancelled"}
        data: dict[str, t.Any] = {}
        if error is not None:
            data["error"] = error
        if state == DONE and job.result is not None:
            data["wall_s"] = job.result["wall_s"]
            data["cache_hit"] = job.cache_hit
        self._emit(job, event[state], data)
        self._cancel_events.pop(job.id, None)

    async def _shard_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        executor = self._executors[shard]
        while True:
            _, _, job_id = await queue.get()
            job = self._jobs[job_id]
            if job.state != QUEUED:  # cancelled while waiting
                continue
            self._depth.add(-1.0)
            cancel = self._cancel_events[job.id]
            job.state = RUNNING
            self._running.add(1.0)
            self._emit(job, "started", {"shard": shard})
            try:
                await self._run_with_retry(job, executor, cancel)
            finally:
                self._running.add(-1.0)

    async def _run_with_retry(self, job: Job, executor: t.Any,
                              cancel: asyncio.Event) -> None:
        retry = self.config.retry
        while True:
            job.attempts += 1
            run = asyncio.ensure_future(
                executor.run(run_payload, (job.kind, job.payload))
            )
            stop = asyncio.ensure_future(cancel.wait())
            try:
                await asyncio.wait({run, stop},
                                   return_when=asyncio.FIRST_COMPLETED)
            except asyncio.CancelledError:
                # Service shutdown with this job still in flight: tidy
                # the helper tasks (one loop turn to let their
                # cancellations land), then let the shard loop die.
                stop.cancel()
                run.cancel()
                await asyncio.wait({run, stop}, timeout=1.0)
                raise
            if not run.done():
                # Cancelled mid-flight.  The executor was already told
                # to abort (see cancel()); abandon the awaitable — a
                # spawn worker is already dead, a thread finishes into
                # the void and its result is discarded either way.
                run.cancel()
                try:
                    await run
                except asyncio.CancelledError:
                    # Two cancellations look identical here: the one we
                    # just injected into ``run``, and the shard loop
                    # *itself* being cancelled by aclose().  Swallowing
                    # the latter would leave a zombie loop that aclose
                    # awaits forever, so re-raise when it is ours.
                    current = asyncio.current_task()
                    if current is not None and current.cancelling():
                        self._complete(job, CANCELLED)
                        raise
                except Exception:
                    pass
                self._complete(job, CANCELLED)
                stop.cancel()
                return
            stop.cancel()
            try:
                payload = run.result()
            except JobAbortedError:
                self._complete(job, CANCELLED)
                return
            except JobExecutionError as exc:
                self._complete(job, FAILED, error=str(exc))
                return
            except WorkerCrashError as exc:
                if cancel.is_set():
                    self._complete(job, CANCELLED)
                    return
                if job.attempts < retry.max_attempts:
                    self._requeues.inc(reason=exc.reason)
                    self._emit(job, "requeued", {
                        "reason": exc.reason, "attempt": job.attempts,
                    })
                    continue
                self._complete(
                    job, FAILED,
                    error=f"{exc.reason} after {job.attempts} attempts",
                )
                return
            if cancel.is_set():
                # Completion raced the cancel; cancel wins — the
                # client was already told the job was going away.
                self._complete(job, CANCELLED)
                return
            job.result = payload
            self._wall.observe(payload["wall_s"])
            self._store(job)
            self._complete(job, DONE)
            return

    # -- introspection for /healthz ----------------------------------

    def shard_tasks(self) -> tuple[asyncio.Task, ...]:
        return tuple(self._loops)

    def queue_depths(self) -> tuple[int, ...]:
        return tuple(q.qsize() for q in self._queues)

    def describe(self) -> dict[str, t.Any]:
        """One JSON-able status document (the ``GET /jobs`` body)."""
        return {
            "config": {
                "shards": self.config.shards,
                "capacity": self.config.capacity,
                "per_client_quota": self.config.per_client_quota,
                "executor": self.config.executor,
            },
            "counts": self.counts(),
            "queue_depths": list(self.queue_depths()),
            "jobs": [job.summary() | {"result": None}
                     for job in self._jobs.values()],
        }

"""Per-shard circuit breakers: stop feeding a shard that keeps dying.

The classic three-state machine, sized for one shard's executor:

* **closed** — healthy; jobs flow.  Worker crashes and timeouts
  (:class:`~repro.service.shards.WorkerCrashError`, the *environmental*
  failures — a job's own deterministic exception never counts) add to
  a consecutive-failure streak; at
  :attr:`BreakerConfig.failure_threshold` the breaker trips.
* **open** — the shard is presumed sick.  The shard loop stops
  dispatching (jobs wait in the queue, admission sheds *new* work
  routed here with ``reason="breaker"``), and the cooldown clock runs.
* **half-open** — the cooldown elapsed; exactly one queued job is let
  through as a probe.  Success closes the breaker; another
  environmental failure re-opens it and restarts the cooldown.

The breaker deliberately consumes the same failure vocabulary the
retry policy and the ``service.shard_alive``/``service.exactly_once``
health invariants already speak: a requeue-worthy crash is also
breaker input, so a shard whose worker crash-loops converges to
half-open probing instead of burning its whole queue, and
``/healthz`` reports the breaker state alongside the invariants.

Time is injected (``clock=``) so tests and the harness lanes drive the
cooldown deterministically.
"""

from __future__ import annotations

import dataclasses
import time
import typing as t

from repro.errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Trip/probe policy for one shard's breaker."""

    #: Consecutive environmental failures (crash/timeout) that trip.
    failure_threshold: int = 3
    #: Seconds an open breaker waits before allowing a probe.
    cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise ConfigurationError("cooldown_s must be positive")


class CircuitBreaker:
    """One shard's health gate; all calls from the service loop."""

    def __init__(self, config: BreakerConfig | None = None, *,
                 name: str = "shard",
                 clock: t.Callable[[], float] = time.monotonic,
                 on_transition: t.Callable[[str, str], None] | None = None,
                 ) -> None:
        self.config = config or BreakerConfig()
        self.name = name
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.probe_in_flight = False
        self.transitions: list[tuple[str, str]] = []
        self._on_transition = on_transition

    def _become(self, state: str) -> None:
        if state == self.state:
            return
        previous, self.state = self.state, state
        self.transitions.append((previous, state))
        if self._on_transition is not None:
            self._on_transition(previous, state)

    # -- dispatch gate ------------------------------------------------

    def allow(self) -> bool:
        """May the shard loop dispatch a job right now?

        Open breakers flip to half-open when the cooldown elapses and
        admit exactly one probe; further calls say no until the probe
        resolves via :meth:`record_success`/:meth:`record_failure`.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.cooldown_remaining() > 0:
                return False
            self._become(HALF_OPEN)
            self.probe_in_flight = False
        if self.probe_in_flight:
            return False
        self.probe_in_flight = True
        return True

    def cooldown_remaining(self) -> float:
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        return max(
            0.0, self.config.cooldown_s - (self.clock() - self.opened_at)
        )

    @property
    def shedding(self) -> bool:
        """Should admission refuse *new* work routed to this shard?
        Only while fully open and still cooling — a half-open shard is
        accepting probes and will drain its queue if they succeed."""
        return self.state == OPEN and self.cooldown_remaining() > 0

    # -- outcome feedback ---------------------------------------------

    def record_failure(self) -> bool:
        """One environmental failure (crash/timeout); True if tripped."""
        self.probe_in_flight = False
        if self.state == HALF_OPEN:
            # The probe died: straight back to open, fresh cooldown.
            self.opened_at = self.clock()
            self.consecutive_failures += 1
            self._become(OPEN)
            return True
        self.consecutive_failures += 1
        if (self.state == CLOSED and self.consecutive_failures
                >= self.config.failure_threshold):
            self.opened_at = self.clock()
            self._become(OPEN)
            return True
        return False

    def release_probe(self) -> None:
        """The dispatch slot :meth:`allow` granted was never used (the
        dequeued job turned out cancelled before launch): hand the
        probe back so the next queued job can take it, reading nothing
        into the shard's health either way."""
        self.probe_in_flight = False

    def record_success(self) -> None:
        """A job ran to a verdict on a live worker; the shard is fine."""
        self.probe_in_flight = False
        self.consecutive_failures = 0
        self.opened_at = None
        self._become(CLOSED)

    # -- reporting ----------------------------------------------------

    def describe(self) -> dict[str, t.Any]:
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "cooldown_remaining_s": round(self.cooldown_remaining(), 3),
            "trips": sum(1 for _old, new in self.transitions
                         if new == OPEN),
        }

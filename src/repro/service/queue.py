"""Admission control: the service's front door.

The queue itself is plain ``asyncio.PriorityQueue`` machinery inside
:class:`~repro.service.core.TraceService`; what deserves its own module
is the *policy* of what gets in.  Two bounds apply, checked in order:

* **capacity** — total backlog (queued + running jobs) across all
  shards.  A full service answers 429 rather than queueing unboundedly;
  the bound is what makes memory use and tail latency predictable under
  overload (the same argument the fabric's bounded switch queues make).
* **quota** — active jobs per client, so one chatty client cannot
  occupy the whole backlog and starve the other seven.

A third, *load-shedding* bound applies when the client names a
deadline: if the estimated wait at the target shard's current queue
depth already exceeds the deadline, admitting the job would only burn
a worker on an answer nobody will read — it is refused up front with
``reason="deadline"`` (the service feeds the estimate from its EWMA of
recent job wall times; with no history yet, nothing is shed).

Rejections carry a ``Retry-After`` hint scaled by how overloaded the
queue is: a barely-full queue says "come right back", a deeply backed
up one (every slot taken by running work) says to wait for roughly a
job's worth of time.  Duplicate submissions and cache hits are *not*
admissions — they attach to existing results and bypass these bounds
entirely, which is what makes warm resubmits cheap under load.
"""

from __future__ import annotations

import dataclasses

from repro.errors import AdmissionError, ConfigurationError, ServiceError


@dataclasses.dataclass(frozen=True)
class AdmissionController:
    """Bounded-backlog, per-client-quota admission policy."""

    capacity: int = 64
    per_client_quota: int = 16
    retry_after_s: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1: {self.capacity!r}"
            )
        if self.per_client_quota < 1:
            raise ConfigurationError(
                f"per_client_quota must be >= 1: {self.per_client_quota!r}"
            )
        if self.retry_after_s <= 0:
            raise ConfigurationError("retry_after_s must be positive")

    def admit(self, client: str, backlog: int, client_active: int) -> None:
        """Raise :class:`AdmissionError` if this submission may not
        join the queue; return silently if it may.

        *backlog* is the service-wide queued+running count and
        *client_active* the submitting client's share of it, both
        measured **before** this job joins.
        """
        if backlog >= self.capacity:
            raise AdmissionError(
                f"queue at capacity ({backlog}/{self.capacity} jobs)",
                reason="capacity",
                retry_after_s=self._hint(backlog),
            )
        if client_active >= self.per_client_quota:
            raise AdmissionError(
                f"client {client!r} over quota "
                f"({client_active}/{self.per_client_quota} active jobs)",
                reason="quota",
                retry_after_s=self._hint(backlog),
            )

    def check_deadline(self, deadline_s: float | None,
                       estimated_wait_s: float, backlog: int) -> None:
        """Shed a job whose deadline cannot be met at current depth.

        *estimated_wait_s* is the service's projection of how long the
        job would sit before completing (shard queue depth times the
        EWMA job wall); zero means "no history yet" and never sheds.
        """
        if deadline_s is None:
            return
        if deadline_s <= 0:
            # A ServiceError (not ConfigurationError) so the HTTP layer
            # maps it to a 400 client error rather than a 500.
            raise ServiceError(
                f"deadline_s must be positive: {deadline_s!r}"
            )
        if estimated_wait_s > deadline_s:
            raise AdmissionError(
                f"deadline {deadline_s:g}s cannot be met: estimated "
                f"wait is {estimated_wait_s:.3f}s at current depth",
                reason="deadline",
                retry_after_s=self._hint(backlog),
            )

    def _hint(self, backlog: int) -> float:
        """Back off harder the deeper the backlog: 1x the base hint at
        the capacity line, up to 4x when far past it."""
        over = max(0, backlog - self.capacity)
        scale = min(4.0, 1.0 + over / max(1, self.capacity))
        return round(self.retry_after_s * scale, 3)

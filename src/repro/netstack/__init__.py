"""Pluggable network-stack backends (NSMs) behind one interface.

``repro.netstack`` treats a VM's network stack as a swappable module:
:class:`NetworkStackModule` is the contract, the registry maps names to
backends, and five built-ins cover the paper's deployment modes plus a
NetKernel-style offloaded stack.  See ``docs/architecture.md``
("Network-stack backends") and the ``netstack`` harness experiment for
the backend comparison matrix.
"""

from repro.netstack.backends import (
    BRFUSION,
    HOSTLO,
    IN_VM_NAT,
    OFFLOADED_NSM,
    VXLAN_OVERLAY,
    BrFusion,
    Hostlo,
    InVmNat,
    OffloadedNsm,
    VxlanOverlay,
)
from repro.netstack.module import NetworkStackModule, StackEndpoints
from repro.netstack.offload import (
    NSM_BRIDGE,
    NSM_SUBNET,
    ensure_nsm_bridge,
    provision_offload,
)
from repro.netstack.registry import (
    backend,
    backend_names,
    backends,
    cni_fallbacks,
    register,
)

__all__ = [
    "BRFUSION",
    "HOSTLO",
    "IN_VM_NAT",
    "NSM_BRIDGE",
    "NSM_SUBNET",
    "OFFLOADED_NSM",
    "VXLAN_OVERLAY",
    "BrFusion",
    "Hostlo",
    "InVmNat",
    "NetworkStackModule",
    "OffloadedNsm",
    "StackEndpoints",
    "VxlanOverlay",
    "backend",
    "backend_names",
    "backends",
    "cni_fallbacks",
    "ensure_nsm_bridge",
    "provision_offload",
    "register",
]

"""Provisioning for the offloaded network-stack module.

The offloaded NSM is the one backend that is genuinely *not* one of the
paper's deployment modes: the host owns the guest's entire protocol
stack (:class:`~repro.net.devices.NsmHostStack`) and the guest keeps
only a thin port whose frames cross a bounded shared-memory boundary —
the same single-copy + doorbell discipline as
:mod:`repro.virt.mempipe`, which is where the ``nsm_doorbell`` /
``nsm_copy`` stage constants come from (see
:meth:`repro.net.costs.CostModel.default`).

This module owns the testbed-level wiring: a dedicated bridge segment
for the host-side stacks and one
:class:`~repro.virt.vmm.NsmHandle` per participating VM.
"""

from __future__ import annotations

import typing as t

from repro.errors import TopologyError
from repro.net.addresses import cidr

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.testbed import Testbed
    from repro.virt.vm import VirtualMachine
    from repro.virt.vmm import NsmHandle

#: Bridge segment the host-side NSM stacks peer over.
NSM_BRIDGE = "nsmbr0"
#: Its subnet — distinct from virbr0 so NSM traffic never NATs.
NSM_SUBNET = "192.168.150.0/24"


def ensure_nsm_bridge(tb: "Testbed", name: str = NSM_BRIDGE) -> str:
    """Create the NSM bridge segment on *tb*'s host if missing."""
    if name not in tb.host.bridges():
        tb.host.add_bridge(name, cidr(NSM_SUBNET))
    return name


def provision_offload(
    tb: "Testbed",
    vms: t.Sequence["VirtualMachine"] | None = None,
    bridge: str = NSM_BRIDGE,
) -> list["NsmHandle"]:
    """Give each VM in *vms* an offloaded host stack on *bridge*.

    Idempotent per VM: a VM that already has an NSM keeps its handle
    (one offloaded stack per guest — the VMM enforces this).  Defaults
    to every VM on the testbed.
    """
    ensure_nsm_bridge(tb, bridge)
    targets = list(vms) if vms is not None else list(tb.vmm.vms.values())
    if not targets:
        raise TopologyError("no VMs to provision offloaded stacks for")
    handles = []
    for vm in targets:
        if tb.vmm.has_nsm(vm.name):
            handles.append(tb.vmm.nsm(vm.name))
        else:
            handles.append(tb.vmm.create_nsm(vm, bridge=bridge))
    return handles

"""Registry of network-stack backends.

Backends self-register at import time (``repro.netstack.backends``);
consumers look them up by name.  The orchestrator derives its default
CNI fallback chain from here so "BrFusion degrades to NAT" is a
property declared by the BrFusion *backend*, not hard-coded policy.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.netstack.module import NetworkStackModule

_REGISTRY: dict[str, NetworkStackModule] = {}


def register(module: NetworkStackModule) -> NetworkStackModule:
    """Add *module* under its ``name``; replacing a name is an error."""
    if not module.name:
        raise ConfigurationError("netstack backend has no name")
    if module.name in _REGISTRY:
        raise ConfigurationError(
            f"netstack backend {module.name!r} already registered"
        )
    _REGISTRY[module.name] = module
    return module


def backend(name: str) -> NetworkStackModule:
    """The registered backend called *name*.

    Raises :class:`ConfigurationError` listing the registered names —
    this is the error surfaced by ``--backend`` validation.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown netstack backend {name!r} "
            f"(registered: {', '.join(backend_names())})"
        ) from None


def backend_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def backends() -> tuple[NetworkStackModule, ...]:
    """All registered backends, in sorted-name order."""
    return tuple(_REGISTRY[name] for name in backend_names())


def cni_fallbacks() -> tuple[tuple[str, str], ...]:
    """CNI-level fallback pairs declared by the registered backends.

    Each backend naming a ``fallback`` contributes one
    ``(its cni_network, the fallback's cni_network)`` pair — the format
    :class:`repro.faults.recovery.RecoveryPolicy` consumes.  Backends
    without a CNI network (the offloaded NSM bypasses pod wiring)
    contribute nothing.
    """
    pairs: list[tuple[str, str]] = []
    for module in backends():
        if module.fallback is None or module.cni_network is None:
            continue
        target = backend(module.fallback)
        if target.cni_network is None:
            continue
        pairs.append((module.cni_network, target.cni_network))
    return tuple(pairs)

"""The built-in network-stack backends.

Four wrap the paper's deployment modes (the in-VM stack stays where the
guest put it; only the crossing differs) and one — ``offloaded_nsm`` —
moves the whole stack host-side behind a bounded shared-queue boundary,
NetKernel-style.  All five satisfy the same
:class:`~repro.netstack.module.NetworkStackModule` contract, so the
conservation ledger, ARQ, capture and fault injection run unchanged
against each.

Import discipline: ``repro.core`` (scenario builders, testbed) is
imported lazily inside ``attach`` so importing ``repro.netstack`` from
the orchestrator cannot cycle back through ``repro.core``.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.netstack.module import NetworkStackModule, StackEndpoints
from repro.netstack.offload import NSM_BRIDGE, provision_offload
from repro.netstack.registry import register

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.testbed import Testbed
    from repro.net.path import Datapath


def _ensure_vms(tb: "Testbed", count: int = 2) -> None:
    """Grow *tb* to *count* VMs so every backend sees the same rig."""
    while len(tb.vmm.vms) < count:
        tb.add_vm(tb.unique_name("vm"))


class _ScenarioBackend(NetworkStackModule):
    """A backend whose stacks are wired by a paper deployment mode.

    The guest kernels own their stacks; ``attach`` deploys the mode's
    pod topology and exposes the resulting flow.  Subclasses pin
    ``mode`` to a :class:`~repro.core.scenario.DeploymentMode` value.
    """

    mode: str = ""

    def attach(self, tb: "Testbed") -> StackEndpoints:
        from repro.core.scenario import DeploymentMode, build_scenario

        _ensure_vms(tb, 2)
        sc = build_scenario(tb, DeploymentMode(self.mode))
        taps = (
            *sc.src_ns.devices.values(),
            *sc.dst_ns.devices.values(),
        )
        return StackEndpoints(
            backend=self.name,
            src_ns=sc.src_ns, src_addr=sc.src_addr,
            dst_ns=sc.dst_ns, dst_addr=sc.dst_addr,
            dst_port=sc.dst_port, src_port=sc.src_port,
            taps=taps,
            detail={"scenario": sc, "mode": self.mode},
        )


class InVmNat(_ScenarioBackend):
    """The nested default: Docker bridge + NAT inside the VM."""

    name = "in_vm_nat"
    title = "in-VM bridge+NAT"
    cni_network = "nat"
    fault_kind = "frame.drop"
    mode = "nat"


class BrFusion(_ScenarioBackend):
    """§3: the pod NIC hot-plugged onto the host bridge (degrades to
    the in-VM NAT stack when hot-plug is unavailable)."""

    name = "brfusion"
    title = "BrFusion"
    cni_network = "brfusion"
    fallback = "in_vm_nat"
    fault_kind = "frame.drop"
    mode = "brfusion"


class Hostlo(_ScenarioBackend):
    """§4: split-pod localhost reflected through the host."""

    name = "hostlo"
    title = "Hostlo"
    cni_network = "hostlo"
    fault_kind = "hostlo.drop"
    mode = "hostlo"


class VxlanOverlay(_ScenarioBackend):
    """Docker Overlay: VXLAN encap between split pod halves."""

    name = "vxlan_overlay"
    title = "VXLAN overlay"
    cni_network = "overlay"
    fault_kind = "frame.drop"
    mode = "overlay"


class OffloadedNsm(NetworkStackModule):
    """Host-owned guest stack behind a bounded shared-queue boundary.

    The guest runs *no* TCP/IP: its :class:`~repro.net.devices.NsmPort`
    rings a doorbell, frames cross one bounded queue
    (:class:`~repro.net.devices.DeviceQueue`, mempipe copy semantics)
    and the host-side :class:`~repro.net.devices.NsmHostStack` does all
    protocol work in a ``kthread:`` domain.  No CNI network — the
    boundary bypasses pod wiring entirely, so there is no orchestrator
    fallback either; the stack *survives a guest crash* (it is host
    infrastructure) and merely stalls its boundary.
    """

    name = "offloaded_nsm"
    title = "offloaded NSM"
    cni_network = None
    fault_kind = "nsm.drop"

    def attach(self, tb: "Testbed") -> StackEndpoints:
        _ensure_vms(tb, 2)
        vms = list(tb.vmm.vms.values())[:2]
        src, dst = provision_offload(tb, vms)
        return StackEndpoints(
            backend=self.name,
            src_ns=vms[0].ns, src_addr=src.port.primary_ip,
            dst_ns=vms[1].ns, dst_addr=dst.port.primary_ip,
            dst_port=12865,
            tx_queue=src.stack.boundary,
            taps=(src.port, src.stack, dst.stack, dst.port),
            detail={"handles": (src, dst), "bridge": NSM_BRIDGE},
        )

    def detach(self, tb: "Testbed", endpoints: StackEndpoints) -> None:
        for handle in endpoints.detail.get("handles", ()):
            if tb.vmm.has_nsm(handle.vm):
                tb.vmm.remove_nsm(handle.vm)

    def refine(self, path: "Datapath") -> "Datapath":
        # The resolver walks the wired topology, which still charges the
        # guest's stack_tx/stack_rx; under offload the guest runs no
        # stack, so those stages (and their softirq reroutes) vanish —
        # the host-side nsm_host_stack stages already carry that work.
        stages = tuple(
            s for s in path.stages
            if not (
                s.stage in ("stack_tx", "stack_rx")
                and s.domain.startswith(("vm:", "softirq:vm:"))
            )
        )
        return dataclasses.replace(path, stages=stages)


#: Module-level singletons, registered in comparison-matrix row order.
IN_VM_NAT = register(InVmNat())
BRFUSION = register(BrFusion())
HOSTLO = register(Hostlo())
VXLAN_OVERLAY = register(VxlanOverlay())
OFFLOADED_NSM = register(OffloadedNsm())

"""The network-stack-module interface: one choke point per backend.

NetKernel's argument (PAPERS.md) is that a VM's network stack should be
a swappable module of the virtualized infrastructure, not a property
baked into the guest image.  This module is that boundary for the
simulator: a :class:`NetworkStackModule` owns how a VM pair's stacks
are provisioned (``attach``/``detach``), how a flow's datapath is
resolved (``resolve``/``ack_path`` plus the ``refine`` per-stage hook),
how frames are carried (``send`` at frame fidelity,
``reliable`` for ARQ-protected analytic transfers), which fault kind
can kill a frame inside the stack (``fault_plan``) and where capture
taps belong (``capture_taps``).

Everything downstream — the conservation ledger, ARQ, capture/flows,
fault injection, health invariants — works against the interface, so a
backend choice is a config knob (``--backend``), not a code path.

Import discipline: this module may import ``repro.net`` freely but must
not import ``repro.core`` or ``repro.virt`` at module level — backends
that provision topology do so lazily inside ``attach`` (the registry is
imported by the orchestrator, which sits below ``repro.core``).
"""

from __future__ import annotations

import abc
import dataclasses
import typing as t

from repro.net.path import Datapath, resolve_path

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.testbed import Testbed
    from repro.faults.plan import FaultPlan
    from repro.net.addresses import Ipv4Address
    from repro.net.arq import ReliableTransfer
    from repro.net.costs import CostModel
    from repro.net.devices import DeviceQueue, NetDevice
    from repro.net.forwarding import Delivery, ForwardingEngine
    from repro.net.links import PhysicalLink
    from repro.net.namespace import NetworkNamespace
    from repro.net.transfer import TransferEngine


@dataclasses.dataclass
class StackEndpoints:
    """One attached flow: who talks to whom through a backend's stacks.

    Returned by :meth:`NetworkStackModule.attach` and consumed by every
    other interface method; ``detail`` carries backend-specific state
    (the offloaded backend stores its NSM handles there) and ``taps``
    names the devices a capture session should tap to observe the
    backend's characteristic crossing.
    """

    backend: str
    src_ns: "NetworkNamespace"
    src_addr: "Ipv4Address"
    dst_ns: "NetworkNamespace"
    dst_addr: "Ipv4Address"
    dst_port: int
    src_port: int = 40000
    #: Bounded sender-side ring charged by the ARQ layer (overflow
    #: drops before any cycles); the offloaded backend wires its
    #: boundary queue here.
    tx_queue: "DeviceQueue | None" = None
    #: Physical links under the path (ARQ partition awareness).
    links: tuple["PhysicalLink", ...] = ()
    #: Devices worth tapping to watch this backend's crossing.
    taps: tuple["NetDevice", ...] = ()
    #: Backend-specific provisioning state.
    detail: dict[str, t.Any] = dataclasses.field(default_factory=dict)


class NetworkStackModule(abc.ABC):
    """One pluggable network-stack backend.

    Subclasses set the class attributes and implement :meth:`attach`;
    everything else has a default built on the resolved topology, with
    :meth:`refine` and :meth:`cost_model` as the per-stage cost hooks
    backends override to express *where their stack runs*.
    """

    #: Registry key (``--backend`` value).
    name: str = ""
    #: Human-readable row label for comparison tables.
    title: str = ""
    #: The CNI network this backend rides for pod wiring, or ``None``
    #: for VM-level backends that bypass the orchestrator.
    cni_network: str | None = None
    #: Backend to degrade to when attach fails terminally (drives the
    #: orchestrator's RecoveryPolicy fallback mapping).
    fallback: str | None = None
    #: The inline fault kind that can kill a frame inside this stack.
    fault_kind: str = "frame.drop"

    # -- lifecycle -------------------------------------------------------
    @abc.abstractmethod
    def attach(self, tb: "Testbed") -> StackEndpoints:
        """Provision this backend's stacks on *tb* and return the flow."""

    def detach(self, tb: "Testbed", endpoints: StackEndpoints) -> None:
        """Tear down what :meth:`attach` provisioned (default: no-op —
        scenario rigs are per-lane and die with their testbed)."""

    # -- path resolution (analytic fidelity) -----------------------------
    def resolve(self, endpoints: StackEndpoints, reverse: bool = False,
                proto: str = "tcp") -> Datapath:
        """The (refined) datapath of this flow in one direction."""
        if reverse:
            raw = resolve_path(endpoints.dst_ns, endpoints.src_addr,
                               endpoints.src_port, proto)
        else:
            raw = resolve_path(endpoints.src_ns, endpoints.dst_addr,
                               endpoints.dst_port, proto)
        return self.refine(raw)

    def ack_path(self, endpoints: StackEndpoints,
                 proto: str = "tcp") -> Datapath:
        """The kernel-level reverse path ACKs ride (no app endpoints)."""
        raw = resolve_path(
            endpoints.dst_ns, endpoints.src_addr, endpoints.src_port,
            proto, include_endpoints=False,
        )
        return self.refine(raw)

    def refine(self, path: Datapath) -> Datapath:
        """Per-stage hook: reshape the resolved path.

        The resolver walks the topology as wired; a backend that moves
        work between domains (the offloaded NSM moves the whole
        protocol stack host-side) drops or rewrites stages here.
        """
        return path

    def cost_model(self, base: "CostModel") -> "CostModel":
        """Per-stage hook: the cost model this backend's stages use.

        Defaults to *base* (the engine's calibrated model); a backend
        may scale or replace stages (ablation-style) without touching
        the shared engine.
        """
        return base

    # -- carrying traffic ------------------------------------------------
    def send(self, engine: "ForwardingEngine", endpoints: StackEndpoints,
             payload_bytes: int = 64, reverse: bool = False) -> "Delivery":
        """Walk one concrete frame through the backend's topology."""
        if reverse:
            return engine.send(endpoints.dst_ns, endpoints.src_addr,
                               endpoints.src_port,
                               payload_bytes=payload_bytes)
        return engine.send(endpoints.src_ns, endpoints.dst_addr,
                           endpoints.dst_port, payload_bytes=payload_bytes)

    def reliable(self, engine: "TransferEngine", endpoints: StackEndpoints,
                 *, nbytes: int, messages: int,
                 **kwargs: t.Any) -> "ReliableTransfer":
        """An ARQ-protected transfer over this backend's path.

        Wires the backend's forward path, ACK path, sender ring and
        links into :class:`~repro.net.arq.ReliableTransfer`; the caller
        supplies protocol knobs (``config``, ``rng``, ``stream``).
        """
        return engine.reliable_transfer(
            self.resolve(endpoints), nbytes, messages=messages,
            ack_path=self.ack_path(endpoints), links=endpoints.links,
            tx_queue=endpoints.tx_queue,
            cost_model=self.cost_model(engine.cost_model),
            **kwargs,
        )

    # -- faults and observability ----------------------------------------
    def fault_plan(self, loss: float) -> "FaultPlan":
        """A plan dropping frames inside this backend's stack.

        The drop site is the backend's characteristic crossing (bridge
        for switched backends, hostlo tap for reflection, the NSM
        boundary for the offloaded stack) so the same loss probability
        exercises each backend's own recovery path.
        """
        from repro.faults.plan import FaultPlan, FaultSpec

        return FaultPlan(
            specs=(FaultSpec(kind=self.fault_kind, target="*",
                             probability=loss),),
            description=f"{self.name}: {loss:.0%} loss at {self.fault_kind}",
        )

    def capture_taps(self, endpoints: StackEndpoints
                     ) -> tuple["NetDevice", ...]:
        """Devices a capture session should tap for this backend."""
        return endpoints.taps

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"

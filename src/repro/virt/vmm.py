"""The virtual machine manager.

The VMM is the actor the paper's designs delegate the "hard work" to:

* **BrFusion** (§3): ``add_nic``/``hotplug_nic`` provision a fresh
  virtio NIC for a target VM, backed by a new TAP enslaved to a host
  bridge, and return its MAC address so the orchestrator's VM agent can
  find and configure it inside the guest.
* **Hostlo** (§4): ``create_hostlo``/``hotplug_hostlo`` create the
  multiplexed loopback TAP in the host kernel and insert one endpoint
  (RX/TX queue) into each participating VM.

Instant (``add_nic``) and timed (``hotplug_nic``) variants exist: the
instant ones mutate topology for steady-state experiments; the timed
ones run through the QMP channel and guest PCI probing for the fig 8
boot-time experiment.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import HotplugError, TopologyError
from repro.faults import injector as _active_injector
from repro.net.addresses import MacAddress
from repro.net.bridge import Bridge
from repro.net.devices import (
    HostloEndpoint,
    HostloTap,
    NsmHostStack,
    NsmPort,
    TapDevice,
    VirtioNic,
)
from repro.obs import metrics as _active_metrics
from repro.virt.host import PhysicalHost
from repro.virt.qmp import QmpChannel
from repro.virt.vm import VirtualMachine

#: Guest-side device probe after hot-plug: PCI rescan + driver bind +
#: udev settle (mean seconds, lognormal sigma, guest cycles).
PCI_PROBE_MEAN_S = 22.0e-3
PCI_PROBE_SIGMA = 0.95
PCI_PROBE_CYCLES = 480_000

#: Buckets (seconds) for the hot-plug latency histogram: QMP round
#: trips are single-digit ms; PCI probe + udev settle dominates.
HOTPLUG_BUCKETS = (0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2, 0.5)


@dataclasses.dataclass(frozen=True)
class HostloHandle:
    """Result of provisioning one hostlo interface (§4.1 steps 2–3)."""

    name: str
    tap: HostloTap
    endpoints: dict[str, HostloEndpoint]  # vm name → in-VM endpoint

    def endpoint_macs(self) -> dict[str, MacAddress]:
        """The identifiers the VMM reports back to the orchestrator."""
        return {
            vm: ep.mac for vm, ep in self.endpoints.items() if ep.mac is not None
        }


@dataclasses.dataclass(frozen=True)
class NsmHandle:
    """Result of provisioning one offloaded network-stack module.

    The host-resident stack and the guest-side port are bound through
    the stack's bounded boundary queue; the handle is what the
    ``offloaded_nsm`` netstack backend holds onto.
    """

    vm: str
    stack: NsmHostStack
    port: NsmPort


class Vmm:
    """Manages VMs on one physical host."""

    def __init__(self, host: PhysicalHost) -> None:
        self.host = host
        self.vms: dict[str, VirtualMachine] = {}
        self.qmp: dict[str, QmpChannel] = {}
        self._tap_seq = 0
        self._hostlos: dict[str, HostloHandle] = {}
        self._nsms: dict[str, NsmHandle] = {}

    # -- VM lifecycle --------------------------------------------------------
    def create_vm(
        self,
        name: str,
        vcpus: int = 5,
        memory_gb: float = 4.0,
        bridge: str | None = None,
    ) -> VirtualMachine:
        """Boot a VM with one NIC on *bridge* (default ``virbr0``)."""
        if name in self.vms:
            raise TopologyError(f"VM {name!r} already exists")
        vm = VirtualMachine(self.host, name, vcpus=vcpus, memory_gb=memory_gb)
        self.vms[name] = vm
        self.qmp[name] = QmpChannel(
            self.host.env, self.host.cpu,
            self.host.rng.stream(f"qmp:{name}"), name,
        )
        nic = self._provision_nic(vm, bridge, guest_name="eth0")
        bridge_name = bridge or self.host.default_bridge.name
        network = self.host.bridge_network(bridge_name)
        address = self.host.allocate_address(bridge_name)
        nic.assign_ip(address, network)
        vm.ns.routes.add_on_link(network, "eth0")
        vm.ns.routes.add_default("eth0", network.host(1))
        return vm

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self.vms[name]
        except KeyError:
            raise TopologyError(f"no VM {name!r}") from None

    def destroy_vm(self, name: str) -> None:
        vm = self.vm(name)
        vm.running = False
        self.qmp[name].disconnect()
        # Unplug every NIC so host-side taps disappear too.
        for nic in vm.virtio_nics():
            backend = nic.backend
            if isinstance(backend, NsmHostStack):
                self.remove_nsm(name)
            elif isinstance(backend, TapDevice):
                self._teardown_tap(backend)
            elif isinstance(backend, HostloTap):
                assert isinstance(nic, HostloEndpoint)
                self._drop_hostlo_queue(backend, nic, cause="vm-destroy")
        del self.vms[name]

    # -- BrFusion: per-pod NIC provisioning ------------------------------------
    def add_nic(self, vm: VirtualMachine, bridge: str | None = None,
                guest_name: str | None = None) -> VirtioNic:
        """Instantly provision a new NIC for *vm* (§3.1 steps 1–3).

        Returns the NIC; its MAC is the identifier handed back to the
        orchestrator.
        """
        if not vm.running:
            raise HotplugError(f"VM {vm.name} is not running", vm=vm.name,
                               device="nic", retryable=False)
        self._check_hotplug_refusal(vm)
        return self._provision_nic(vm, bridge, guest_name)

    def hotplug_nic(
        self, vm: VirtualMachine, bridge: str | None = None,
        guest_name: str | None = None,
    ) -> t.Generator:
        """Timed NIC hot-plug through QMP (process; returns the NIC)."""
        if not vm.running:
            raise HotplugError(f"VM {vm.name} is not running", vm=vm.name,
                               device="nic", retryable=False)
        self._check_hotplug_refusal(vm)
        tracer = self.host.env.tracer
        started = self.host.env.now
        span = None
        if tracer.enabled:
            span = tracer.begin("virt.hotplug", f"nic:{vm.name}", kind="nic")
        qmp = self.qmp[vm.name]
        yield from qmp.execute("netdev_add", id=f"net-{self._tap_seq}")
        nic = self._provision_nic(vm, bridge, guest_name)
        yield from qmp.execute("device_add", driver="virtio-net-pci",
                               mac=str(nic.mac))
        yield from self._guest_probe(vm)
        self._record_hotplug("nic", started, span, mac=str(nic.mac))
        return nic

    def remove_nic(self, vm: VirtualMachine, mac: MacAddress) -> None:
        """Instantly unplug the NIC with *mac* from *vm*."""
        dev = vm.find_nic_by_mac(mac)
        if dev is None or not isinstance(dev, VirtioNic):
            raise HotplugError(f"{vm.name}: no virtio NIC with MAC {mac}")
        backend = dev.backend
        ns = dev.namespace
        if ns is not None:
            ns.detach(dev)
        if isinstance(backend, TapDevice):
            self._teardown_tap(backend)

    # -- Hostlo: multiplexed loopback provisioning -------------------------------
    def create_hostlo(
        self, name: str, vms: t.Sequence[VirtualMachine]
    ) -> HostloHandle:
        """Instantly provision a hostlo for *vms* (§4.1 steps 1–3)."""
        if name in self._hostlos:
            raise TopologyError(f"hostlo {name!r} already exists")
        if len(vms) < 2:
            raise TopologyError(
                f"hostlo {name!r} needs at least two VMs, got {len(vms)}"
            )
        seen: set[str] = set()
        for vm in vms:
            if vm.name in seen:
                raise TopologyError(f"duplicate VM {vm.name!r} for hostlo")
            seen.add(vm.name)
            if vm.host is not self.host:
                # The multiplexed loopback's queues are host-kernel
                # queues: hostlo is by construction a single-host device.
                raise TopologyError(
                    f"hostlo {name!r}: VM {vm.name!r} runs on host "
                    f"{vm.host.name!r}, not {self.host.name!r} — a hostlo "
                    "cannot span physical hosts (use an overlay)"
                )
        tap = HostloTap(name)
        self.host.ns.attach(tap)
        endpoints: dict[str, HostloEndpoint] = {}
        for vm in vms:
            endpoint = HostloEndpoint(
                f"{name}-{vm.name}", self.host.mac_allocator.allocate()
            )
            tap.add_queue(endpoint)
            vm.ns.attach(endpoint)
            endpoints[vm.name] = endpoint
        handle = HostloHandle(name=name, tap=tap, endpoints=endpoints)
        self._hostlos[name] = handle
        return handle

    def hotplug_hostlo(
        self, name: str, vms: t.Sequence[VirtualMachine]
    ) -> t.Generator:
        """Timed hostlo provisioning (process; returns the handle)."""
        for vm in vms:
            if not vm.running:
                raise HotplugError(f"VM {vm.name} is not running")
        tracer = self.host.env.tracer
        started = self.host.env.now
        span = None
        if tracer.enabled:
            span = tracer.begin("virt.hotplug", f"hostlo:{name}",
                                kind="hostlo", vms=len(vms))
        # One ioctl-backed TAP creation, then a device_add per VM.
        yield from self.qmp[vms[0].name].execute("netdev_add", id=name)
        handle = self.create_hostlo(name, vms)
        for vm in vms:
            yield from self.qmp[vm.name].execute(
                "device_add", driver="virtio-net-pci",
                mac=str(handle.endpoints[vm.name].mac),
            )
            yield from self._guest_probe(vm)
        self._record_hotplug("hostlo", started, span, queues=len(vms))
        return handle

    def has_hostlo(self, name: str) -> bool:
        return name in self._hostlos

    def hostlo(self, name: str) -> HostloHandle:
        try:
            return self._hostlos[name]
        except KeyError:
            raise TopologyError(f"no hostlo {name!r}") from None

    def hostlo_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._hostlos))

    def remove_hostlo(self, name: str) -> None:
        handle = self.hostlo(name)
        # The handle's endpoint map is the authoritative roster: an
        # endpoint whose queue was already evicted (VM crash, watchdog)
        # is no longer on the tap but must still leave its namespace.
        roster = {id(ep): ep for ep in handle.endpoints.values()}
        for endpoint in handle.tap.endpoints:
            roster.setdefault(id(endpoint), endpoint)
        for endpoint in roster.values():
            if endpoint in handle.tap.endpoints:
                handle.tap.remove_queue(endpoint)
            if endpoint.namespace is not None:
                endpoint.namespace.detach(endpoint)
        self.host.ns.detach(handle.tap)
        del self._hostlos[name]

    def evict_hostlo_queue(self, hostlo_name: str, vm_name: str) -> int:
        """Evict one VM's queue from a hostlo (watchdog degradation).

        The dead endpoint's queue is drained and removed from the tap
        and its namespace; the remaining queues keep exchanging
        frames.  Returns how many pending frames died with the queue.
        """
        handle = self.hostlo(hostlo_name)
        try:
            endpoint = handle.endpoints.pop(vm_name)
        except KeyError:
            raise TopologyError(
                f"hostlo {hostlo_name!r} has no queue for VM {vm_name!r}"
            ) from None
        return self._drop_hostlo_queue(handle.tap, endpoint,
                                       cause="watchdog", detach=True)

    # -- offloaded NSM: host-owned stack provisioning ----------------------------
    def create_nsm(self, vm: VirtualMachine,
                   bridge: str | None = None) -> NsmHandle:
        """Provision an offloaded network-stack module for *vm*.

        NetKernel-style: the host kernel runs the guest's network stack
        (an :class:`~repro.net.devices.NsmHostStack` enslaved to
        *bridge*) and the guest gets a thin
        :class:`~repro.net.devices.NsmPort` whose only job is to cross
        the bounded shared-queue boundary.  Both sides carry the same
        address — the stack answers ARP on the bridge segment, the port
        delivers to guest sockets.
        """
        if not vm.running:
            raise HotplugError(f"VM {vm.name} is not running", vm=vm.name,
                               device="nsm", retryable=False)
        if vm.name in self._nsms:
            raise TopologyError(f"VM {vm.name!r} already has an NSM")
        bridge_name = bridge or self.host.default_bridge.name
        bridge_dev: Bridge = self.host.bridge(bridge_name)
        network = self.host.bridge_network(bridge_name)
        address = self.host.allocate_address(bridge_name)
        stack = NsmHostStack(
            f"nsm-{vm.name}", self.host.mac_allocator.allocate()
        )
        port = NsmPort("nsm0", self.host.mac_allocator.allocate())
        stack.bind(port)
        self.host.ns.attach(stack)
        bridge_dev.add_port(stack)
        stack.assign_ip(address, network)
        vm.ns.attach(port)
        port.assign_ip(address, network)
        vm.ns.routes.add_on_link(network, port.name)
        handle = NsmHandle(vm=vm.name, stack=stack, port=port)
        self._nsms[vm.name] = handle
        return handle

    def has_nsm(self, vm_name: str) -> bool:
        return vm_name in self._nsms

    def nsm(self, vm_name: str) -> NsmHandle:
        try:
            return self._nsms[vm_name]
        except KeyError:
            raise TopologyError(f"no NSM for VM {vm_name!r}") from None

    def remove_nsm(self, vm_name: str) -> int:
        """Tear one VM's NSM down; returns frames drained from queues."""
        handle = self.nsm(vm_name)
        stack, port = handle.stack, handle.port
        drained = stack.unbind() if stack.port is not None else 0
        if stack.bridge is not None:
            stack.bridge.remove_port(stack)
        if stack.namespace is not None:
            stack.namespace.detach(stack)
        if port.namespace is not None:
            port.namespace.detach(port)
        del self._nsms[vm_name]
        return drained

    def _stall_nsm(self, stack: NsmHostStack, cause: str) -> None:
        """A dead guest stops servicing its side of the boundary; the
        host-owned stack itself survives (the NetKernel payoff)."""
        stack.boundary.stall()
        if stack.port is not None:
            stack.port.rx_queue.stall()
        _active_metrics().counter(
            "nsm.boundaries_stalled_total",
            help="NSM boundaries stalled by guest death, by cause",
        ).inc(cause=cause, nsm=stack.name)

    # -- crash / restart ---------------------------------------------------------
    def crash_vm(self, name: str) -> VirtualMachine:
        """Crash *name*: guest state dies, host-side wiring is torn down.

        The VM stays registered (unlike :meth:`destroy_vm`) so it can be
        :meth:`restart_vm`-ed; its host taps leave their bridges exactly
        as they would when QEMU exits.
        """
        vm = self.vm(name)
        vm.crash()
        self.qmp[name].disconnect()
        for nic in vm.virtio_nics():
            backend = nic.backend
            if isinstance(backend, NsmHostStack):
                # Unlike a vhost tap, the host-owned stack survives the
                # guest: only the boundary stalls, and a restart resumes
                # it without re-provisioning anything.
                self._stall_nsm(backend, cause="vm-crash")
            elif isinstance(backend, TapDevice):
                self._teardown_tap(backend)
            elif isinstance(backend, HostloTap):
                # A dead VM must not keep a queue on the shared
                # loopback: reflections would copy to (and eventually
                # wedge on) a ring nobody services.  The handle keeps
                # the endpoint so remove_hostlo can finish the
                # guest-side cleanup later.
                assert isinstance(nic, HostloEndpoint)
                self._drop_hostlo_queue(backend, nic, cause="vm-crash")
        return vm

    def restart_vm(self, name: str) -> VirtualMachine:
        """Boot a crashed VM again and re-wire its primary NIC."""
        vm = self.vm(name)
        if vm.running:
            return vm
        vm.restart()
        self.qmp[name].reconnect()
        # The primary NIC needs a fresh host tap; pod NICs stay gone
        # until the orchestrator re-attaches their pods.
        nic = vm.primary_nic
        if not isinstance(nic.backend, TapDevice) or nic.backend.bridge is None:
            old = nic.backend
            if isinstance(old, TapDevice):
                old.backs = None
            nic.backend = None
            tap = TapDevice(f"tap{self._tap_seq}")
            self._tap_seq += 1
            nic.attach_backend(tap)
            self.host.ns.attach(tap)
            self.host.default_bridge.add_port(tap)
        handle = self._nsms.get(name)
        if handle is not None:
            handle.stack.boundary.resume()
            handle.port.rx_queue.resume()
        return vm

    # -- internals -----------------------------------------------------------------
    def _check_hotplug_refusal(self, vm: VirtualMachine) -> None:
        """Chaos layer: the VMM may refuse to provision a NIC."""
        inj = _active_injector()
        if inj.enabled and inj.fires(
                "hotplug.refuse", vm.name, now=self.host.env.now) is not None:
            raise HotplugError(
                f"VMM refused to hot-plug a NIC into {vm.name} (injected)",
                vm=vm.name, device="nic",
            )

    def _record_hotplug(self, kind: str, started: float, span,
                        **attrs) -> None:
        """Close the hot-plug span and feed the latency histogram."""
        elapsed = self.host.env.now - started
        _active_metrics().histogram(
            "virt.hotplug_latency_s", HOTPLUG_BUCKETS,
            help="end-to-end device hot-plug latency (QMP + guest probe)",
        ).observe(elapsed, kind=kind)
        if span is not None:
            self.host.env.tracer.end(span, latency_s=elapsed, **attrs)

    def _provision_nic(
        self, vm: VirtualMachine, bridge: str | None, guest_name: str | None
    ) -> VirtioNic:
        bridge_name = bridge or self.host.default_bridge.name
        bridge_dev: Bridge = self.host.bridge(bridge_name)
        tap = TapDevice(f"tap{self._tap_seq}")
        self._tap_seq += 1
        if guest_name is None:
            guest_name = f"eth{len(vm.virtio_nics())}"
        nic = VirtioNic(guest_name, self.host.mac_allocator.allocate())
        nic.attach_backend(tap)
        self.host.ns.attach(tap)
        bridge_dev.add_port(tap)
        vm.ns.attach(nic)
        return nic

    def _drop_hostlo_queue(self, tap: HostloTap, endpoint: HostloEndpoint,
                           cause: str, detach: bool = False) -> int:
        """Remove one endpoint's queue from *tap*, draining it."""
        if endpoint in tap.endpoints:
            drained = tap.remove_queue(endpoint)
        else:
            # Already off the tap (e.g. destroy after crash): just
            # flush whatever the dead ring still held.
            if endpoint.backend is tap:
                endpoint.backend = None
            drained = endpoint.rx_queue.drain()
        _active_metrics().counter(
            "hostlo.queues_evicted_total",
            help="hostlo VM queues evicted, by cause",
        ).inc(cause=cause, hostlo=tap.name)
        if detach and endpoint.namespace is not None:
            endpoint.namespace.detach(endpoint)
        return drained

    def _teardown_tap(self, tap: TapDevice) -> None:
        if tap.bridge is not None:
            tap.bridge.remove_port(tap)
        if tap.namespace is not None:
            tap.namespace.detach(tap)

    def _guest_probe(self, vm: VirtualMachine) -> t.Generator:
        """PCI rescan + driver bind inside the guest after device_add."""
        yield vm.cpu.execute(PCI_PROBE_CYCLES, account="sys")
        rng = self.host.rng.stream(f"pci:{vm.name}")
        noise = float(
            rng.lognormal(mean=-0.5 * PCI_PROBE_SIGMA**2, sigma=PCI_PROBE_SIGMA)
        )
        yield self.host.env.timeout(PCI_PROBE_MEAN_S * noise)

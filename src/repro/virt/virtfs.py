"""VirtFS: para-virtualized file system shared across guests (§4.3.1).

The paper defers cross-VM volumes to Jujiuri et al.'s VirtFS: a
VirtIO-based para-virtualized file system that can mount the same
host-backed file system into multiple guests without the coherence
problems of sharing a block device.  This module models exactly the
piece the orchestrator needs: host-backed shares, their per-VM mounts,
and the capability checks the scheduler consults before splitting a pod
that uses volumes.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError, TopologyError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.virt.vm import VirtualMachine


@dataclasses.dataclass(frozen=True)
class VirtfsMount:
    """One guest-side mount of a share."""

    share: str
    vm: str
    mount_tag: str
    read_only: bool = False


class VirtfsShare:
    """A host directory exported over VirtIO to one or more guests."""

    def __init__(self, name: str, host_path: str, size_gb: float = 10.0) -> None:
        if not name or not host_path:
            raise ConfigurationError("virtfs share needs a name and host path")
        if size_gb <= 0:
            raise ConfigurationError(f"bad share size {size_gb!r}")
        self.name = name
        self.host_path = host_path
        self.size_gb = float(size_gb)
        self.mounts: dict[str, VirtfsMount] = {}

    def mount_into(self, vm: "VirtualMachine", mount_tag: str | None = None,
                   read_only: bool = False) -> VirtfsMount:
        """Expose the share to *vm* (multi-guest mounts are the point)."""
        if vm.name in self.mounts:
            raise TopologyError(
                f"share {self.name!r} already mounted in {vm.name}"
            )
        mount = VirtfsMount(
            share=self.name,
            vm=vm.name,
            mount_tag=mount_tag or f"virtfs-{self.name}",
            read_only=read_only,
        )
        self.mounts[vm.name] = mount
        return mount

    def unmount_from(self, vm_name: str) -> None:
        if vm_name not in self.mounts:
            raise TopologyError(
                f"share {self.name!r} is not mounted in {vm_name}"
            )
        del self.mounts[vm_name]

    @property
    def guest_count(self) -> int:
        return len(self.mounts)

    def mounted_in(self, vm_name: str) -> bool:
        return vm_name in self.mounts


class VirtfsManager:
    """Host-side registry of shares (the VMM's 9p/virtio-fs exports).

    ``available`` models whether the platform ships the VirtFS stack at
    all — a derivative cloud without it cannot split pods that mount
    volumes, which is how §4.3.1 feeds the scheduler's feasibility
    check.
    """

    def __init__(self, available: bool = True) -> None:
        self.available = available
        self._shares: dict[str, VirtfsShare] = {}

    def create_share(self, name: str, host_path: str,
                     size_gb: float = 10.0) -> VirtfsShare:
        if not self.available:
            raise ConfigurationError(
                "VirtFS is not available on this platform"
            )
        if name in self._shares:
            raise TopologyError(f"share {name!r} already exists")
        share = VirtfsShare(name, host_path, size_gb)
        self._shares[name] = share
        return share

    def share(self, name: str) -> VirtfsShare:
        try:
            return self._shares[name]
        except KeyError:
            raise TopologyError(f"no virtfs share {name!r}") from None

    def remove_share(self, name: str) -> None:
        share = self.share(name)
        if share.mounts:
            raise TopologyError(
                f"share {name!r} still mounted in {sorted(share.mounts)}"
            )
        del self._shares[name]

    def shares(self) -> tuple[str, ...]:
        return tuple(sorted(self._shares))

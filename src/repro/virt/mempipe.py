"""MemPipe-style cross-VM shared memory (§4.3.2).

The paper points at Zhang & Liu's MemPipe for intra-pod shared memory
across VMs: transport-level shared-memory delivery between co-resident
VMs, transparent to the applications.  This module models the control
plane — channel setup between VMs on one host, capability checks — and
a data-plane cost hook the transfer engine can price (a shared-memory
hop costs a copy plus a doorbell, no virtio round trip).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError, TopologyError
from repro.virt.vm import VirtualMachine

#: Cost of one message over a MemPipe channel: a cache-coherent copy
#: plus an event-fd doorbell (cycles per message / per byte).
MEMPIPE_CYCLES_PER_MSG = 1400
MEMPIPE_CYCLES_PER_BYTE = 0.5
MEMPIPE_DOORBELL_S = 2.0e-6


@dataclasses.dataclass(frozen=True)
class MempipeChannel:
    """A shared-memory ring between two co-resident VMs."""

    name: str
    vm_a: str
    vm_b: str
    size_mb: float = 16.0

    def connects(self, vm_a: str, vm_b: str) -> bool:
        return {self.vm_a, self.vm_b} == {vm_a, vm_b}


class MempipeManager:
    """Host-side registry of MemPipe channels."""

    def __init__(self, available: bool = True) -> None:
        self.available = available
        self._channels: dict[str, MempipeChannel] = {}

    def create_channel(self, name: str, vm_a: VirtualMachine,
                       vm_b: VirtualMachine,
                       size_mb: float = 16.0) -> MempipeChannel:
        if not self.available:
            raise ConfigurationError(
                "MemPipe is not available on this platform"
            )
        if vm_a.host is not vm_b.host:
            raise TopologyError(
                "MemPipe requires co-resident VMs (same physical host)"
            )
        if vm_a.name == vm_b.name:
            raise TopologyError("a MemPipe channel needs two distinct VMs")
        if name in self._channels:
            raise TopologyError(f"channel {name!r} already exists")
        if size_mb <= 0:
            raise ConfigurationError(f"bad channel size {size_mb!r}")
        channel = MempipeChannel(name=name, vm_a=vm_a.name, vm_b=vm_b.name,
                                 size_mb=float(size_mb))
        self._channels[name] = channel
        return channel

    def channel(self, name: str) -> MempipeChannel:
        try:
            return self._channels[name]
        except KeyError:
            raise TopologyError(f"no MemPipe channel {name!r}") from None

    def channel_between(self, vm_a: str, vm_b: str) -> MempipeChannel | None:
        for channel in self._channels.values():
            if channel.connects(vm_a, vm_b):
                return channel
        return None

    def remove_channel(self, name: str) -> None:
        self.channel(name)
        del self._channels[name]

    def message_latency(self, nbytes: int, freq_hz: float) -> float:
        """One-way latency of an *nbytes* message over a channel."""
        cycles = MEMPIPE_CYCLES_PER_MSG + MEMPIPE_CYCLES_PER_BYTE * nbytes
        return cycles / freq_hz + MEMPIPE_DOORBELL_S

"""The QEMU management protocol (QMP) side channel.

When QEMU creates a VM it also provides a management socket; the VMM
connects to it to hot-plug devices (§3.2).  Commands cost host CPU work
and wall-clock latency; the fig 8 container-boot experiment measures
this overhead against Docker's veth+iptables setup.

Latency constants are drawn from public QEMU measurements (QMP
``netdev_add``/``device_add`` round trips are single-digit
milliseconds; guest PCI probe plus udev settle dominates) and carry a
lognormal tail — device hot-plug is noticeably noisier than netlink
operations, which is why fig 8 shows BrFusion winning on 75 % of runs
but not all.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import HotplugError
from repro.faults import injector as _active_injector
from repro.obs import metrics as _active_metrics
from repro.sim import CpuResource, Environment

#: (mean seconds, lognormal sigma, host cycles) per QMP command class.
COMMAND_PROFILES: dict[str, tuple[float, float, float]] = {
    "netdev_add": (2.0e-3, 0.35, 180_000),
    "device_add": (3.5e-3, 0.45, 260_000),
    "device_del": (3.0e-3, 0.45, 220_000),
    "query": (0.6e-3, 0.25, 60_000),
}

#: Buckets (seconds) for per-command QMP round-trip latencies.
QMP_LATENCY_BUCKETS = (5e-4, 1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2, 3.2e-2)


@dataclasses.dataclass(frozen=True)
class QmpCommand:
    """A completed QMP command, kept in the channel log."""

    name: str
    arguments: tuple[tuple[str, t.Any], ...]
    issued_at: float
    completed_at: float

    @property
    def duration(self) -> float:
        return self.completed_at - self.issued_at


class QmpChannel:
    """One VM's management socket.

    ``execute`` is a process generator: it charges the host CPU and
    waits out the command latency; the command is then appended to
    :attr:`log`.
    """

    def __init__(self, env: Environment, host_cpu: CpuResource,
                 rng: t.Any, vm_name: str) -> None:
        self.env = env
        self.host_cpu = host_cpu
        self.rng = rng
        self.vm_name = vm_name
        self.log: list[QmpCommand] = []
        self.connected = True

    def disconnect(self) -> None:
        self.connected = False

    def reconnect(self) -> None:
        """Re-open the socket after a VM restart."""
        self.connected = True

    def execute(self, name: str, **arguments: t.Any) -> t.Generator:
        """Run one QMP command (yields until completion)."""
        if not self.connected:
            raise HotplugError(f"QMP channel to {self.vm_name} is closed")
        try:
            mean_s, sigma, cycles = COMMAND_PROFILES[name]
        except KeyError:
            raise HotplugError(f"unknown QMP command {name!r}") from None
        issued_at = self.env.now
        inj = _active_injector()
        if inj.enabled:
            # Chaos layer: a failed command costs its round trip first
            # (QEMU parses and rejects; the socket time is real), then
            # surfaces as the HotplugError real QMP clients see.
            fail = inj.fires("qmp.error", self.vm_name,
                             now=self.env.now, command=name)
            spike = inj.fires("qmp.latency", self.vm_name,
                              now=self.env.now, command=name)
            if spike is not None:
                mean_s *= float(spike.arg("multiplier", 10.0))
            if fail is not None:
                yield self.host_cpu.execute(cycles, account="sys")
                yield self.env.timeout(mean_s)
                raise HotplugError(
                    f"QMP {name!r} failed on {self.vm_name} (injected)",
                    vm=self.vm_name, device=str(arguments.get("id", name)),
                )
        yield self.host_cpu.execute(cycles, account="sys")
        noise = float(self.rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
        yield self.env.timeout(mean_s * noise)
        command = QmpCommand(
            name=name,
            arguments=tuple(sorted(arguments.items())),
            issued_at=issued_at,
            completed_at=self.env.now,
        )
        self.log.append(command)
        _active_metrics().histogram(
            "virt.qmp_latency_s", QMP_LATENCY_BUCKETS,
            help="QMP command round-trip time",
        ).observe(command.duration, command=name)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.event("virt.qmp", name, vm=self.vm_name,
                         duration_s=command.duration)

    def commands(self, name: str | None = None) -> list[QmpCommand]:
        if name is None:
            return list(self.log)
        return [c for c in self.log if c.name == name]

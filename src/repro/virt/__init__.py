"""The virtualization substrate: host, VMM, VMs, hot-plug, hostlo.

Mirrors the paper's QEMU/KVM testbed:

* :class:`PhysicalHost` — the physical server: host kernel CPU pool,
  host network namespace, the default bridge all VMs hang off.
* :class:`VirtualMachine` — a guest: vCPU pool (its busy time is the
  host's ``guest`` CPU category), guest network namespace, virtio NICs.
* :class:`Vmm` — the virtual machine manager.  It exposes exactly the
  management operations the paper's designs need: VM creation, NIC
  hot-plug through the QMP side channel (§3.2, for BrFusion) and
  multiplexed-loopback provisioning (§4.2, for Hostlo).
* :class:`QmpChannel` — the QEMU management protocol side channel, with
  realistic command latencies (exercised by the fig 8 boot-time
  experiment).
"""

from repro.virt.host import PhysicalHost
from repro.virt.qmp import QmpChannel, QmpCommand
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import HostloHandle, Vmm

__all__ = [
    "HostloHandle",
    "PhysicalHost",
    "QmpChannel",
    "QmpCommand",
    "VirtualMachine",
    "Vmm",
]

"""Virtual machines: vCPU pool, guest namespace, attached devices."""

from __future__ import annotations

import typing as t

from repro.errors import TopologyError
from repro.net.addresses import MacAddress
from repro.net.devices import NetDevice, NsmPort, VirtioNic
from repro.net.namespace import NetworkNamespace
from repro.obs import MetricsRegistry
from repro.obs import metrics as _active_metrics
from repro.sim import CpuResource

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.virt.host import PhysicalHost


class VirtualMachine:
    """One guest: its vCPUs, memory size and guest network namespace.

    The vCPU pool is a separate :class:`CpuResource`; time spent there
    is what the host bills as ``guest`` CPU in the paper's breakdowns.
    """

    def __init__(
        self,
        host: "PhysicalHost",
        name: str,
        vcpus: int = 5,
        memory_gb: float = 4.0,
    ) -> None:
        if vcpus < 1:
            raise TopologyError(f"vcpus must be >= 1: {vcpus!r}")
        if memory_gb <= 0:
            raise TopologyError(f"memory must be positive: {memory_gb!r}")
        self.host = host
        self.name = name
        self.vcpus = vcpus
        self.memory_gb = float(memory_gb)
        self.domain = f"vm:{name}"
        self.cpu = CpuResource(
            host.env, cores=vcpus, freq_hz=host.cpu.freq_hz, name=name
        )
        self.ns = NetworkNamespace(name, kind="guest", domain=self.domain)
        self._extra_namespaces: list[NetworkNamespace] = []
        self.running = True
        self.crash_count = 0

    # -- lifecycle --------------------------------------------------------------
    def crash(self) -> None:
        """Simulated guest crash: the kernel is gone, devices go down.

        Host-side state (taps, bridge ports) survives — that is exactly
        the asymmetry crash recovery has to clean up (see
        :meth:`repro.virt.vmm.Vmm.crash_vm` and the orchestrator's
        :meth:`~repro.orchestrator.cluster.Orchestrator.handle_vm_crash`).
        """
        if not self.running:
            return
        self.running = False
        self.crash_count += 1
        for ns in self.namespaces:
            for dev in ns.devices.values():
                dev.up = False

    def restart(self) -> None:
        """Bring a crashed VM back up (fresh guest kernel).

        Guest devices come back administratively up; container
        namespaces and their wiring are *not* restored — pods must be
        re-deployed, which is the orchestrator's job.
        """
        if self.running:
            return
        self.running = True
        for ns in self.namespaces:
            for dev in ns.devices.values():
                dev.up = True

    # -- namespaces -------------------------------------------------------------
    def create_namespace(self, name: str) -> NetworkNamespace:
        """A container namespace inside this VM (billed to its vCPUs)."""
        ns = NetworkNamespace(name, kind="container", domain=self.domain)
        self._extra_namespaces.append(ns)
        return ns

    @property
    def namespaces(self) -> tuple[NetworkNamespace, ...]:
        return (self.ns, *self._extra_namespaces)

    # -- device lookup ------------------------------------------------------------
    def find_nic_by_mac(self, mac: MacAddress) -> NetDevice | None:
        """Locate a NIC by MAC across all of the VM's namespaces.

        This is how the orchestrator's VM agent identifies a
        freshly hot-plugged device (BrFusion step 3→4, §3.1).
        """
        for ns in self.namespaces:
            for dev in ns.devices.values():
                if dev.mac == mac:
                    return dev
        return None

    # -- observability ----------------------------------------------------------
    def observe_queues(self, metrics: MetricsRegistry | None = None) -> int:
        """Record this VM's queue-depth gauges; returns the vCPU depth.

        Gauges: ``vm.vcpu_queue_depth`` (jobs waiting on the vCPU
        pool), ``vm.vcpu_busy_cores`` and ``vm.virtio_nics`` — the
        per-VM view of the queues whose host-side counterparts (vhost
        kthreads, softirq contexts) the transfer engine samples under
        ``cpu.queue_depth``.
        """
        registry = metrics if metrics is not None else _active_metrics()
        depth = self.cpu.queue_depth
        registry.gauge("vm.vcpu_queue_depth").set(depth, vm=self.name)
        registry.gauge("vm.vcpu_busy_cores").set(self.cpu.busy_cores,
                                                 vm=self.name)
        registry.gauge("vm.virtio_nics").set(len(self.virtio_nics()),
                                             vm=self.name)
        return depth

    def virtio_nics(self) -> list[VirtioNic]:
        nics = []
        for ns in self.namespaces:
            for dev in ns.devices.values():
                if isinstance(dev, VirtioNic):
                    nics.append(dev)
        return nics

    def nsm_port(self) -> NsmPort | None:
        """This VM's offloaded-NSM port, if one is provisioned."""
        for nic in self.virtio_nics():
            if isinstance(nic, NsmPort):
                return nic
        return None

    @property
    def primary_nic(self) -> VirtioNic:
        try:
            dev = self.ns.device("eth0")
        except TopologyError:
            raise TopologyError(f"{self.name} has no primary NIC yet") from None
        if not isinstance(dev, VirtioNic):
            raise TopologyError(f"{self.name}: eth0 is not a virtio NIC")
        return dev

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<VirtualMachine {self.name!r} vcpus={self.vcpus} "
            f"mem={self.memory_gb}GB>"
        )

"""The physical host: CPUs, host namespace, bridges, allocators."""

from __future__ import annotations

from repro.errors import TopologyError
from repro.net.addresses import (
    HostAllocator,
    Ipv4Network,
    MacAllocator,
    cidr,
)
from repro.net.bridge import Bridge
from repro.net.devices import VethPair
from repro.net.namespace import NetworkNamespace
from repro.sim import CpuResource, Environment, RngRegistry

#: The libvirt-style default bridge subnet.
DEFAULT_BRIDGE_CIDR = "192.168.122.0/24"


class PhysicalHost:
    """A physical server in the paper's testbed shape.

    Creates the host network namespace, the host CPU pool (12 cores of
    a 2.2 GHz Xeon by default, matching §5.1) and the default bridge
    (``virbr0``) that multiplexes the physical NIC between VMs.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "host",
        cores: int = 12,
        freq_hz: float = 2.2e9,
        seed: int = 0,
        domain: str | None = None,
        bridge_cidr: str = DEFAULT_BRIDGE_CIDR,
    ) -> None:
        self.env = env
        self.name = name
        self.domain = domain or ("host" if name == "host" else f"host:{name}")
        self.cpu = CpuResource(env, cores=cores, freq_hz=freq_hz, name=name)
        self.rng = RngRegistry(seed)
        self.ns = NetworkNamespace(name, kind="host", domain=self.domain)
        # Per-host OUI so MACs stay unique across multi-host topologies.
        from repro.sim.rng import stable_hash

        self.mac_allocator = MacAllocator(
            oui=(0x52_54_00 ^ (stable_hash(name) & 0x00FFFF))
        )
        self._bridges: dict[str, Bridge] = {}
        self._host_allocators: dict[str, HostAllocator] = {}
        # Fat-tree racks give each host a distinct subnet; standalone
        # hosts keep the libvirt default.
        self.default_bridge = self.add_bridge("virbr0", cidr(bridge_cidr))

    # -- bridges --------------------------------------------------------------
    def add_bridge(self, name: str, network: Ipv4Network) -> Bridge:
        """Create a host bridge owning the gateway address of *network*."""
        if name in self._bridges:
            raise TopologyError(f"bridge {name!r} already exists on {self.name}")
        bridge = Bridge(name, self.mac_allocator.allocate())
        bridge.assign_ip(network.host(1), network)
        self.ns.attach(bridge)
        self.ns.routes.add_on_link(network, name)
        self._bridges[name] = bridge
        self._host_allocators[name] = HostAllocator(network)
        return bridge

    def bridge(self, name: str) -> Bridge:
        try:
            return self._bridges[name]
        except KeyError:
            raise TopologyError(f"no bridge {name!r} on {self.name}") from None

    def bridges(self) -> tuple[str, ...]:
        return tuple(sorted(self._bridges))

    def allocate_address(self, bridge_name: str):
        """Next free host address on *bridge_name*'s subnet."""
        try:
            return self._host_allocators[bridge_name].allocate()
        except KeyError:
            raise TopologyError(
                f"no bridge {bridge_name!r} on {self.name}"
            ) from None

    def bridge_network(self, bridge_name: str) -> Ipv4Network:
        net = self.bridge(bridge_name).primary_network
        assert net is not None  # bridges always get the gateway address
        return net

    def isolate_tenants(self, bridge_a: str, bridge_b: str) -> None:
        """Block host-routed forwarding between two tenant bridges.

        §3.1 lets BrFusion place each tenant's pod NICs on a
        tenant-specific bridge; the FORWARD-drop pair makes the host
        refuse to route between the two domains (both directions).
        """
        net_a = self.bridge_network(bridge_a)
        net_b = self.bridge_network(bridge_b)
        self.ns.netfilter.add_forward_drop(net_a, net_b)
        self.ns.netfilter.add_forward_drop(net_b, net_a)

    # -- auxiliary namespaces ---------------------------------------------------
    def create_attached_namespace(
        self, name: str, domain: str, bridge_name: str | None = None
    ) -> NetworkNamespace:
        """A namespace (e.g. the benchmark client) wired to a host bridge
        through a veth pair, with an address from the bridge subnet."""
        bridge_name = bridge_name or self.default_bridge.name
        bridge = self.bridge(bridge_name)
        network = self.bridge_network(bridge_name)
        ns = NetworkNamespace(name, kind="container", domain=domain)
        pair = VethPair(
            "eth0", f"veth-{name}",
            self.mac_allocator.allocate(), self.mac_allocator.allocate(),
        )
        address = self.allocate_address(bridge_name)
        pair.a.assign_ip(address, network)
        ns.attach(pair.a)
        self.ns.attach(pair.b)
        bridge.add_port(pair.b)
        ns.routes.add_on_link(network, "eth0")
        gateway = network.host(1)
        ns.routes.add_default("eth0", gateway)
        return ns

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<PhysicalHost {self.name!r} cores={self.cpu.cores}>"

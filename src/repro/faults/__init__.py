"""Deterministic fault injection & recovery (the chaos layer).

The simulator's other packages model the happy path; this one breaks
it on purpose — reproducibly.  Three pieces:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` /
  :class:`FaultSpec` (kind, target glob, probability/window/schedule),
  JSON-serialisable so a chaos scenario is a file.
* :mod:`repro.faults.injectors` — the :class:`FaultInjector` runtime
  that injection sites across virt/net/orchestrator query, plus the
  :class:`ChaosController` that executes scheduled faults (VM crashes,
  link partitions) as simulation processes.
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` /
  :class:`RecoveryPolicy`, the bounded-retry/backoff/fallback policy
  the orchestrator applies when wiring fails.

Like :mod:`repro.obs`, one **active injector** is held as a module
global, defaulting to the no-op :data:`NULL`; sites guard with
``if inj.enabled:`` so an un-chaosed run pays almost nothing::

    plan = FaultPlan.load("plan.json")
    inj = FaultInjector(plan, host.rng.stream("faults"),
                        now_fn=lambda: env.now)
    with faults.use(inj):
        ...deploy pods, run the experiment...

Determinism contract: the injector draws only from its own named RNG
stream, so the same seed + the same plan yields the identical fault
sequence, and enabling chaos never changes any other component's
draws.
"""

from __future__ import annotations

import contextlib
import typing as t

from repro.faults.injectors import (
    NULL,
    ChaosController,
    FaultInjector,
    InjectorLike,
    NullInjector,
)
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryPolicy, RetryPolicy

_INJECTOR: InjectorLike = NULL


def injector() -> InjectorLike:
    """The active injector (the no-op :data:`NULL` unless installed)."""
    return _INJECTOR


def install(injector: InjectorLike) -> None:
    """Swap in an active fault injector."""
    global _INJECTOR
    _INJECTOR = injector


def uninstall() -> None:
    """Back to the default: the no-op injector."""
    global _INJECTOR
    _INJECTOR = NULL


@contextlib.contextmanager
def use(active: InjectorLike) -> t.Iterator[InjectorLike]:
    """Install *active* for the enclosed block, then restore.

    Nested uses restore correctly, so tests and stacked chaos runs
    never leak an injector into later code.
    """
    previous = _INJECTOR
    install(active)
    try:
        yield active
    finally:
        install(previous)


__all__ = [
    "FAULT_KINDS",
    "NULL",
    "ChaosController",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectorLike",
    "NullInjector",
    "RecoveryPolicy",
    "RetryPolicy",
    "injector",
    "install",
    "uninstall",
    "use",
]

"""Declarative fault plans: what breaks, where, when, how often.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries.
Each spec names a *kind* (one of :data:`FAULT_KINDS`), a *target*
selector (an ``fnmatch`` glob matched against the component name the
injection site reports — a VM name, a bridge name, a link name), and a
firing rule: a probability per opportunity, an optional simulated-time
window (``after``/``until``), an optional one-shot time (``at``, used
by scheduled faults like VM crashes) and an optional hit budget
(``max_hits``).

Plans are plain data — they serialise to/from JSON so a chaos run can
be described in a file and replayed bit-identically (see
``python -m repro.harness chaos --faults PLAN.json``).  All randomness
lives in the :class:`~repro.faults.injectors.FaultInjector`, which
draws from its own named stream of :class:`repro.sim.RngRegistry`, so
adding or removing faults never perturbs any other stochastic
component of the simulator.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as t

from repro.errors import FaultInjectionError

#: Every fault kind an injection site understands.
FAULT_KINDS = frozenset({
    # virt layer
    "qmp.error",        # QMP command fails (HotplugError from the channel)
    "qmp.latency",      # QMP command latency spike (multiplier in args)
    "hotplug.refuse",   # VMM refuses to provision a NIC for a VM
    "vm.crash",         # scheduled VM crash (driven by the ChaosController)
    # net layer
    "link.loss",        # per-frame loss on a physical link
    "link.corrupt",     # per-frame corruption (dropped at the far NIC)
    "link.partition",   # scheduled link down/up (ChaosController)
    "frame.drop",       # per-frame drop at a named bridge
    "hostlo.drop",      # per-frame drop on a hostlo tap's queues
    "hostlo.stall",     # scheduled wedge of a hostlo VM queue
    "nsm.drop",         # per-frame drop at an offloaded-NSM boundary
    # fabric layer
    "fabric.link_down",    # scheduled fat-tree link down/up (ECMP reroutes)
    "fabric.switch_down",  # scheduled fat-tree switch down/up
    # orchestrator layer
    "agent.stall",      # the in-VM node agent stalls during configure
    # trace-service layer (real-process chaos, no sim clock)
    "service.crash",      # kill the service process at a dispatch point
    "service.disk_full",  # journal appends fail with ENOSPC semantics
})

#: Kinds the :class:`~repro.faults.injectors.ChaosController` executes
#: on a schedule (``at`` required) rather than sites querying inline.
SCHEDULED_KINDS = frozenset({
    "vm.crash", "link.partition", "hostlo.stall",
    "fabric.link_down", "fabric.switch_down",
})


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault: kind + target selector + firing rule.

    Parameters
    ----------
    kind: one of :data:`FAULT_KINDS`.
    target: ``fnmatch`` glob against the component name (``"vm*"``,
        ``"virbr0"``, ``"*"``).
    probability: chance of firing per matching opportunity, in
        ``[0, 1]``.  Scheduled kinds ignore it.
    at: simulated time of a scheduled fault (required for
        :data:`SCHEDULED_KINDS`, meaningless otherwise).
    after / until: simulated-time window outside which the spec never
        fires.  Sites with no clock only match windowless specs.
    duration: for ``link.partition`` and the scheduled ``fabric.*``
        kinds: how long the component stays down (``None`` = forever).
    max_hits: total firing budget (``None`` = unlimited).
    args: free-form knobs, e.g. ``{"multiplier": 20}`` for
        ``qmp.latency``.
    """

    kind: str
    target: str = "*"
    probability: float = 1.0
    at: float | None = None
    after: float | None = None
    until: float | None = None
    duration: float | None = None
    max_hits: int | None = None
    args: tuple[tuple[str, t.Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r} "
                f"(have: {sorted(FAULT_KINDS)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError(
                f"{self.kind}: probability must be in [0, 1], "
                f"got {self.probability!r}"
            )
        if self.kind in SCHEDULED_KINDS and self.at is None:
            raise FaultInjectionError(
                f"{self.kind}: scheduled faults need an 'at' time"
            )
        for bound in (self.at, self.after, self.until, self.duration):
            if bound is not None and bound < 0:
                raise FaultInjectionError(
                    f"{self.kind}: times must be non-negative"
                )
        if (self.after is not None and self.until is not None
                and self.until < self.after):
            raise FaultInjectionError(
                f"{self.kind}: until={self.until} precedes after={self.after}"
            )
        if self.max_hits is not None and self.max_hits < 1:
            raise FaultInjectionError(
                f"{self.kind}: max_hits must be >= 1"
            )
        # Normalise args to a sorted tuple so specs stay hashable and
        # plans compare/serialise deterministically.
        object.__setattr__(
            self, "args",
            tuple(sorted((str(k), v) for k, v in dict(self.args).items())),
        )

    def arg(self, name: str, default: t.Any = None) -> t.Any:
        for key, value in self.args:
            if key == name:
                return value
        return default

    def in_window(self, now: float | None) -> bool:
        """Is *now* inside this spec's firing window?

        Sites without a clock pass ``None``: only windowless specs
        match (a time-gated fault cannot fire where time is unknown).
        """
        if now is None:
            return self.after is None and self.until is None
        if self.after is not None and now < self.after:
            return False
        if self.until is not None and now > self.until:
            return False
        return True

    def to_dict(self) -> dict[str, t.Any]:
        out: dict[str, t.Any] = {"kind": self.kind, "target": self.target}
        if self.probability != 1.0:
            out["probability"] = self.probability
        for field in ("at", "after", "until", "duration", "max_hits"):
            value = getattr(self, field)
            if value is not None:
                out[field] = value
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "FaultSpec":
        if "kind" not in data:
            raise FaultInjectionError(f"fault spec without a kind: {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultInjectionError(
                f"fault spec has unknown keys {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "args" in kwargs:
            kwargs["args"] = tuple(kwargs["args"].items())
        return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus an optional description."""

    specs: tuple[FaultSpec, ...] = ()
    description: str = ""

    def __iter__(self) -> t.Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def of_kind(self, *kinds: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind in kinds)

    @property
    def scheduled(self) -> tuple[FaultSpec, ...]:
        """The specs the ChaosController must execute on a schedule."""
        return tuple(s for s in self.specs if s.kind in SCHEDULED_KINDS)

    @property
    def inline(self) -> tuple[FaultSpec, ...]:
        """The specs injection sites query inline."""
        return tuple(s for s in self.specs if s.kind not in SCHEDULED_KINDS)

    def to_dict(self) -> dict[str, t.Any]:
        out: dict[str, t.Any] = {"faults": [s.to_dict() for s in self.specs]}
        if self.description:
            out["description"] = self.description
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "FaultPlan":
        if "faults" not in data or not isinstance(data["faults"], list):
            raise FaultInjectionError(
                "a fault plan needs a 'faults' list of specs"
            )
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in data["faults"]),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(f"malformed fault plan JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        return cls.from_json(pathlib.Path(path).read_text())

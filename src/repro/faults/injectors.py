"""The fault injector: the runtime that decides "does it break *now*?".

Injection sites across the stack (the QMP channel, the VMM's NIC
provisioning, the frame forwarder, the node agent) ask the *active*
injector — :func:`repro.faults.injector` — whether a fault of some kind
fires against their component.  Like the observability layer, the
default is a shared no-op :data:`NULL` injector with ``enabled =
False``; sites guard themselves with ``if inj.enabled:`` so an
un-chaosed run pays one attribute load and one branch per site.

Determinism: the injector owns exactly one RNG stream (by convention
``rng.stream("faults")`` of the testbed's :class:`~repro.sim.RngRegistry`)
and draws from it only when a matching probabilistic spec is
considered, so the same seed and the same plan replay the same faults —
and no other stream in the simulator ever sees a different draw
sequence because chaos was switched on.

Scheduled faults (VM crashes, link partitions) cannot be queried
inline — nobody polls a crashed VM.  The :class:`ChaosController`
turns those specs into simulation processes that execute them at their
``at`` times and hand recovery to the orchestrator.
"""

from __future__ import annotations

import typing as t
from fnmatch import fnmatchcase

from repro.obs import metrics as _active_metrics
from repro.obs import tracer as _active_tracer
from repro.faults.plan import FaultPlan, FaultSpec

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.links import PhysicalLink
    from repro.orchestrator.cluster import Orchestrator
    from repro.sim import Environment
    from repro.virt.vmm import Vmm


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against injection-site queries.

    Parameters
    ----------
    plan: the declarative fault plan.
    rng: a dedicated ``numpy`` generator — pass a *named stream* from
        the testbed's :class:`~repro.sim.RngRegistry` (conventionally
        ``rng.stream("faults")``) so the chaos draws are isolated.
    now_fn: optional clock, usually ``lambda: env.now``; sites without
        one only match windowless specs.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, rng: t.Any,
                 now_fn: t.Callable[[], float] | None = None) -> None:
        self.plan = plan
        self.rng = rng
        self.now_fn = now_fn
        self._hits: dict[int, int] = {}
        self._by_kind: dict[str, list[tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.inline):
            self._by_kind.setdefault(spec.kind, []).append((index, spec))

    # -- core query --------------------------------------------------------
    def fires(self, kind: str, target: str, *,
              now: float | None = None, **attrs: t.Any) -> FaultSpec | None:
        """Does a *kind* fault fire against *target* right now?

        Returns the matched spec (its ``args`` parameterise the fault)
        or ``None``.  A hit is recorded as a ``fault.<kind>`` trace
        event and a ``fault.injected_total`` counter increment.
        """
        candidates = self._by_kind.get(kind)
        if not candidates:
            return None
        if now is None and self.now_fn is not None:
            now = self.now_fn()
        for index, spec in candidates:
            if not fnmatchcase(target, spec.target):
                continue
            if not spec.in_window(now):
                continue
            if (spec.max_hits is not None
                    and self._hits.get(index, 0) >= spec.max_hits):
                continue
            if spec.probability < 1.0 and not (
                    float(self.rng.random()) < spec.probability):
                continue
            self._hits[index] = self._hits.get(index, 0) + 1
            self.record(kind, target, **attrs)
            return spec
        return None

    def hit_count(self, kind: str | None = None) -> int:
        """How many inline faults fired (optionally of one kind)."""
        if kind is None:
            return sum(self._hits.values())
        inline = list(self.plan.inline)
        return sum(n for i, n in self._hits.items() if inline[i].kind == kind)

    def record(self, kind: str, target: str, **attrs: t.Any) -> None:
        """Emit the observability record for one injected fault.

        Also used by the :class:`ChaosController` for scheduled faults
        so every injection — inline or scheduled — lands in the same
        ``fault.*`` event namespace and counter.
        """
        _active_metrics().counter(
            "fault.injected_total", help="faults injected, by kind",
        ).inc(kind=kind, target=target)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event(f"fault.{kind}", target, **attrs)


class NullInjector:
    """The disabled injector: nothing ever breaks."""

    enabled = False
    plan = FaultPlan()

    def fires(self, kind: str, target: str, *,
              now: float | None = None, **attrs: t.Any) -> None:
        return None

    def hit_count(self, kind: str | None = None) -> int:
        return 0

    def record(self, kind: str, target: str, **attrs: t.Any) -> None:
        pass


#: The shared disabled injector installed by default.
NULL = NullInjector()

#: Anything an injection site may hold.
InjectorLike = t.Union[FaultInjector, NullInjector]


class ChaosController:
    """Executes a plan's *scheduled* faults as simulation processes.

    ``vm.crash`` specs crash the matching VMs at ``at`` and invoke the
    orchestrator's crash recovery (pod re-scheduling); ``link.partition``
    specs take matching links down at ``at`` and bring them back after
    ``duration`` (if given); ``fabric.link_down``/``fabric.switch_down``
    do the same against a :class:`~repro.fabric.topology.FatTree`
    (pass ``fabric=``), with ECMP rerouting around the hole as the
    recovery story.  Call :meth:`start` once the topology is built,
    before ``env.run``.
    """

    def __init__(self, env: "Environment", vmm: "Vmm | None" = None,
                 orch: "Orchestrator | None" = None,
                 plan: FaultPlan | None = None,
                 injector: InjectorLike = NULL,
                 links: t.Sequence["PhysicalLink"] = (),
                 fabric: t.Any = None) -> None:
        self.env = env
        self.vmm = vmm
        self.orch = orch
        self.plan = plan if plan is not None else injector.plan
        self.injector = injector
        self.links = list(links)
        self.fabric = fabric
        self.executed: list[tuple[str, str, float]] = []

    def start(self) -> int:
        """Spawn one process per scheduled spec; returns how many."""
        count = 0
        for spec in self.plan.scheduled:
            self.env.process(self._execute_at(spec))
            count += 1
        return count

    def _execute_at(self, spec: FaultSpec) -> t.Generator:
        assert spec.at is not None
        if spec.at > self.env.now:
            yield self.env.timeout(spec.at - self.env.now)
        if spec.kind == "vm.crash":
            crashed = self._crash_vms(spec)
            if spec.duration is not None and crashed:
                yield self.env.timeout(spec.duration)
                for name in crashed:
                    self.vmm.restart_vm(name)
                    if self.orch is not None and name in self.orch.nodes:
                        self.orch.mark_node_ready(name)
                    self.executed.append(("vm.restart", name, self.env.now))
        elif spec.kind == "link.partition":
            yield from self._partition_links(spec)
        elif spec.kind == "hostlo.stall":
            yield from self._stall_hostlo(spec)
        elif spec.kind == "fabric.link_down":
            yield from self._fabric_link_down(spec)
        elif spec.kind == "fabric.switch_down":
            yield from self._fabric_switch_down(spec)

    def _fabric_link_down(self, spec: FaultSpec) -> t.Generator:
        """Pull matching fabric cables; live equal-cost siblings absorb
        the flows (in-flight queued frames die labelled ``link.down``)."""
        if self.fabric is None:
            return
        hit = [link for name, link in sorted(self.fabric.links.items())
               if fnmatchcase(name, spec.target) and link.up]
        for link in hit:
            drained = link.set_down()
            self.injector.record("fabric.link_down", link.name,
                                 at=self.env.now, duration=spec.duration,
                                 drained=drained)
            self.executed.append(("fabric.link_down", link.name,
                                  self.env.now))
        if spec.duration is not None and hit:
            yield self.env.timeout(spec.duration)
            for link in hit:
                link.set_up()
                self.executed.append(("fabric.link_up", link.name,
                                      self.env.now))

    def _fabric_switch_down(self, spec: FaultSpec) -> t.Generator:
        """Kill matching fabric switches outright (power loss)."""
        if self.fabric is None:
            return
        hit = [sw for name, sw in sorted(self.fabric.switches.items())
               if fnmatchcase(name, spec.target) and sw.up]
        for switch in hit:
            switch.set_down()
            self.injector.record("fabric.switch_down", switch.name,
                                 at=self.env.now, duration=spec.duration)
            self.executed.append(("fabric.switch_down", switch.name,
                                  self.env.now))
        if spec.duration is not None and hit:
            yield self.env.timeout(spec.duration)
            for switch in hit:
                switch.set_up()
                self.executed.append(("fabric.switch_up", switch.name,
                                      self.env.now))

    def _crash_vms(self, spec: FaultSpec) -> list[str]:
        crashed: list[str] = []
        if self.vmm is None:
            return crashed
        for name in sorted(self.vmm.vms):
            vm = self.vmm.vms[name]
            if not fnmatchcase(name, spec.target) or not vm.running:
                continue
            self.vmm.crash_vm(name)
            self.injector.record("vm.crash", name, at=self.env.now)
            self.executed.append(("vm.crash", name, self.env.now))
            crashed.append(name)
            if self.orch is not None and name in self.orch.nodes:
                self.orch.handle_vm_crash(name)
        return crashed

    def _partition_links(self, spec: FaultSpec) -> t.Generator:
        hit = [link for link in self.links
               if fnmatchcase(link.name, spec.target) and link.up]
        for link in hit:
            link.set_down()
            self.injector.record("link.partition", link.name,
                                 at=self.env.now, duration=spec.duration)
            self.executed.append(("link.partition", link.name, self.env.now))
        if spec.duration is not None and hit:
            yield self.env.timeout(spec.duration)
            for link in hit:
                link.set_up()

    def _stall_hostlo(self, spec: FaultSpec) -> t.Generator:
        """Wedge matching hostlo queues (target: VM or endpoint name).

        The queue's consumer stops servicing its ring; frames for it
        pile up and drop at the tap until the health watchdog evicts
        the queue (or ``duration`` elapses and the consumer recovers).
        """
        if self.vmm is None:
            return
        stalled = []
        for hostlo_name in sorted(self.vmm.hostlo_names()):
            handle = self.vmm.hostlo(hostlo_name)
            for vm_name in sorted(handle.endpoints):
                endpoint = handle.endpoints[vm_name]
                if not (fnmatchcase(vm_name, spec.target)
                        or fnmatchcase(endpoint.name, spec.target)):
                    continue
                if endpoint.backend is not handle.tap:
                    continue  # already evicted
                handle.tap.stall_queue(endpoint)
                self.injector.record("hostlo.stall", endpoint.name,
                                     at=self.env.now, vm=vm_name)
                self.executed.append(
                    ("hostlo.stall", endpoint.name, self.env.now))
                stalled.append((handle.tap, endpoint))
        if spec.duration is not None and stalled:
            yield self.env.timeout(spec.duration)
            for tap, endpoint in stalled:
                if endpoint in tap.endpoints:
                    endpoint.rx_queue.resume()

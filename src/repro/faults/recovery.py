"""Recovery policies: bounded retry with backoff, fallback routing.

The fault subsystem exposes what the happy-path orchestrator was
missing: when a hot-plug fails, *something* has to decide how many
times to retry, how long to wait between attempts, and what to do when
retries run out.  That decision is policy, not mechanism, so it lives
here as plain data the orchestrator consumes (see
:meth:`repro.orchestrator.cluster.Orchestrator._attach_with_recovery`).

Backoff jitter draws from a named RNG stream (conventionally
``rng.stream("recovery")``), so recovery timing is reproducible and —
like fault injection itself — never perturbs any other stream.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter: classic bounded retry.

    ``max_attempts`` counts the first try too: 4 attempts = 1 try +
    3 retries.  Delay before retry *i* (1-based) is
    ``base_delay_s * multiplier**(i-1)``, scaled by a uniform jitter
    factor in ``[1 - jitter, 1 + jitter]`` and capped at
    ``max_delay_s``.
    """

    max_attempts: int = 4
    base_delay_s: float = 2.0e-3
    multiplier: float = 2.0
    jitter: float = 0.25
    max_delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: t.Any | None = None) -> float:
        """Delay before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1: {attempt!r}")
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """What the orchestrator does when wiring a pod fails.

    ``fallbacks`` maps a CNI plugin name to the plugin to degrade to
    once retries are exhausted — the paper-shaped default degrades
    BrFusion's fast path to the NAT slow path, which keeps the pod
    schedulable at the cost of the duplicated guest networking layer
    (the same operability argument ONCache makes for its fast/slow
    path split).  An empty mapping disables fallback; retries alone
    still apply.
    """

    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)
    fallbacks: tuple[tuple[str, str], ...] = (("brfusion", "nat"),)

    def fallback_for(self, plugin_name: str) -> str | None:
        for name, fallback in self.fallbacks:
            if plugin_name == name or plugin_name.startswith(f"{name}-"):
                return fallback
        return None

"""Ablation studies: the design choices behind the paper's shapes.

These are not paper figures — they answer "which mechanism produces
which effect" questions a reviewer (or a porter of the design) would
ask, by switching one mechanism off at a time:

* ``ablation_hostlo_thread`` — give the hostlo reflect work a
  multi-core pool instead of its single kernel thread: the fig 10
  throughput cap moves accordingly, showing the serialization (not the
  copy cost) is what bounds hostlo streaming.
* ``ablation_netfilter_cost`` — scale the conntrack/NAT hook cost:
  NAT-mode throughput tracks it almost linearly while BrFusion is
  untouched, isolating the duplicated layer's contribution.
* ``ablation_no_batching`` — disable batch amortisation (NAPI/GRO/
  coalescing) everywhere: streaming throughput collapses toward
  request/response costs; the overlay (highest batch factors) loses
  the most.
"""

from __future__ import annotations

import dataclasses

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import Testbed
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.net.costs import CostModel
from repro.sim import CpuResource
from repro.workloads import NetperfTcpStream

MESSAGE_SIZE = 1024


def _fresh_testbed(config: ExperimentConfig,
                   cost_model: CostModel | None = None) -> Testbed:
    tb = Testbed(seed=config.seed, cost_model=cost_model)
    for i in range(2):
        tb.add_vm(f"vm{i}")
    return tb


def run_hostlo_thread(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Hostlo throughput with 1..N cores serving the reflect work."""
    config = config or ExperimentConfig()
    rows = []
    for cores in (1, 2, 4, 8):
        tb = _fresh_testbed(config)
        scenario = build_scenario(tb, DeploymentMode.HOSTLO)
        handle = tb.orchestrator.deployments[scenario.name].plugin_state["hostlo"]
        if cores > 1:
            # Pre-register a wider pool under the kthread's domain name;
            # the lazy single-core creation then never happens.
            tb.engine.register_domain(
                f"kthread:host:{handle.tap.name}",
                CpuResource(tb.env, cores=cores,
                            freq_hz=tb.engine.cost_model.freq_hz),
            )
        result = NetperfTcpStream(window=config.stream_window).run(
            scenario, MESSAGE_SIZE, duration_s=config.stream_duration_s
        )
        rows.append({
            "reflect_cores": cores,
            "throughput_mbps": result.throughput_mbps,
        })
    single = rows[0]["throughput_mbps"]
    widest = rows[-1]["throughput_mbps"]
    return ExperimentResult(
        experiment="ablation_hostlo_thread",
        title="Ablation: hostlo reflect serialization (cores serving the "
              "reflect work)",
        rows=tuple(rows),
        notes=(
            f"widest/single throughput: {widest / single:.2f}x — the single "
            "kernel thread of §4.2 is what caps hostlo streaming",
        ),
    )


def run_netfilter_cost(config: ExperimentConfig | None = None) -> ExperimentResult:
    """NAT vs BrFusion throughput as conntrack/hook cost scales."""
    config = config or ExperimentConfig()
    rows = []
    for factor in (0.5, 1.0, 2.0, 4.0):
        model = CostModel.default().scale("netfilter_nat", factor)
        for mode in (DeploymentMode.NAT, DeploymentMode.BRFUSION):
            tb = _fresh_testbed(config, cost_model=model)
            scenario = build_scenario(tb, mode)
            result = NetperfTcpStream(window=config.stream_window).run(
                scenario, MESSAGE_SIZE, duration_s=config.stream_duration_s
            )
            rows.append({
                "netfilter_scale": factor,
                "mode": mode.value,
                "throughput_mbps": result.throughput_mbps,
            })

    def thr(mode, factor):
        return next(
            r["throughput_mbps"] for r in rows
            if r["mode"] == mode and r["netfilter_scale"] == factor
        )

    return ExperimentResult(
        experiment="ablation_netfilter_cost",
        title="Ablation: conntrack/NAT hook cost scaling",
        rows=tuple(rows),
        notes=(
            "NAT throughput 4x-cost/half-cost: "
            f"{thr('nat', 4.0) / thr('nat', 0.5):.2f}x",
            "BrFusion throughput 4x-cost/half-cost: "
            f"{thr('brfusion', 4.0) / thr('brfusion', 0.5):.2f}x "
            "(BrFusion has no guest NAT hooks to scale)",
        ),
    )


def run_rule_bloat(config: ExperimentConfig | None = None) -> ExperimentResult:
    """NAT vs BrFusion as the guest accumulates published containers.

    Every published port adds DNAT rules to the guest's netfilter
    chains, and every packet walks those chains — so a busy Docker host
    slowly taxes *all* of its containers.  BrFusion pods have no guest
    chains to walk: co-located pods cost them nothing.
    """
    config = config or ExperimentConfig()
    rows = []
    from repro.orchestrator.pod import ContainerSpec, PodSpec

    for neighbors in (0, 4, 9, 19):
        for mode in (DeploymentMode.NAT, DeploymentMode.BRFUSION):
            tb = _fresh_testbed(config)
            scenario = build_scenario(tb, mode, port=12865)
            # Co-locate more (tiny) published pods on the same VM.
            home = tb.orchestrator.deployments[
                scenario.name
            ].placement.node_names[0]
            for i in range(neighbors):
                spec = PodSpec(
                    f"neighbor-{i}",
                    containers=(ContainerSpec(
                        "svc", "alpine", cpu=0.1, memory_gb=0.1,
                        publish=(("tcp", 13000 + i, 80),),
                    ),),
                )
                tb.deploy(spec, network=mode.value, node=home)
            stream = NetperfTcpStream(window=config.stream_window).run(
                scenario, MESSAGE_SIZE, duration_s=config.stream_duration_s
            )
            rows.append({
                "neighbor_pods": neighbors,
                "mode": mode.value,
                "throughput_mbps": stream.throughput_mbps,
            })

    def thr(mode, neighbors):
        return next(
            r["throughput_mbps"] for r in rows
            if r["mode"] == mode and r["neighbor_pods"] == neighbors
        )

    return ExperimentResult(
        experiment="ablation_rule_bloat",
        title="Ablation: co-located published pods (netfilter rule bloat)",
        rows=tuple(rows),
        notes=(
            "NAT throughput, 19 neighbors vs none: "
            f"{thr('nat', 19) / thr('nat', 0) - 1:+.1%} "
            "(every packet walks the longer chains)",
            "BrFusion throughput, 19 neighbors vs none: "
            f"{thr('brfusion', 19) / thr('brfusion', 0) - 1:+.1%} "
            "(no guest chains to walk)",
        ),
    )


def run_scheduler_policy(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Grouping vs spreading baselines in the §5.3.1 cost simulation.

    The paper's baseline uses Kubernetes' "most requested" (grouping)
    policy.  This ablation reruns the whole fig 9 pipeline with the
    "least requested" (spreading) alternative: spreading inflates the
    Kubernetes bill, and Hostlo's improvement pass recovers part of the
    difference — evidence the grouping choice matters to the baseline.
    """
    from repro.costsim.hostlo import improve_assignment
    from repro.costsim.kubernetes import schedule_user
    from repro.costsim.packing import total_cost
    from repro.traces import TraceConfig, generate_trace

    config = config or ExperimentConfig()
    users = generate_trace(TraceConfig(users=min(config.trace_users, 150),
                                       seed=config.seed))
    rows = []
    for policy in ("most-requested", "least-requested"):
        base_total = 0.0
        improved_total = 0.0
        for user in users:
            baseline = schedule_user(user.pods, policy=policy)
            base_total += total_cost(baseline)
            improved_total += total_cost(improve_assignment(baseline))
        rows.append({
            "policy": policy,
            "kubernetes_cost_per_h": base_total,
            "hostlo_cost_per_h": improved_total,
            "hostlo_saving_pct": 100 * (1 - improved_total / base_total),
        })

    grouping = rows[0]["kubernetes_cost_per_h"]
    spreading = rows[1]["kubernetes_cost_per_h"]
    return ExperimentResult(
        experiment="ablation_scheduler_policy",
        title="Ablation: grouping (most-requested) vs spreading "
              "(least-requested) baselines",
        rows=tuple(rows),
        notes=(
            f"spreading changes the Kubernetes bill by "
            f"{spreading / grouping - 1:+.2%} on this trace — offline,"
            " biggest-first scheduling with per-pod cheapest-fitting"
            " purchases leaves the scoring rule little room; the policy"
            " choice matters more under online arrival churn",
        ),
    )


def run_no_batching(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Streaming throughput with batch amortisation switched off."""
    config = config or ExperimentConfig()
    base = CostModel.default()
    overrides = {}
    for name in base.names():
        stage = base[name]
        if stage.batch_factor > 1.0:
            overrides[name] = dataclasses.replace(stage, batch_factor=1.0)
    unbatched = base.replace(**overrides)

    rows = []
    for label, model in (("batched", base), ("unbatched", unbatched)):
        for mode in (DeploymentMode.NOCONT, DeploymentMode.OVERLAY,
                     DeploymentMode.HOSTLO):
            tb = _fresh_testbed(config, cost_model=model)
            scenario = build_scenario(tb, mode)
            result = NetperfTcpStream(window=config.stream_window).run(
                scenario, MESSAGE_SIZE, duration_s=config.stream_duration_s
            )
            rows.append({
                "variant": label,
                "mode": mode.value,
                "throughput_mbps": result.throughput_mbps,
            })

    def thr(variant, mode):
        return next(
            r["throughput_mbps"] for r in rows
            if r["variant"] == variant and r["mode"] == mode
        )

    notes = tuple(
        f"{mode}: unbatched/batched = "
        f"{thr('unbatched', mode) / thr('batched', mode):.2f}"
        for mode in ("nocont", "overlay", "hostlo")
    ) + (
        "hostlo is least affected: its reflect stage never batched "
        "(the §4.2 driver copies synchronously)",
    )
    return ExperimentResult(
        experiment="ablation_no_batching",
        title="Ablation: NAPI/GRO/coalescing batch amortisation off",
        rows=tuple(rows),
        notes=notes,
    )

"""Fig 5 — BrFusion macro-benchmarks: Kafka, NGINX, Memcached latency.

Paper claims: Kafka latency −11.8 % under BrFusion vs NAT (still
13.1 % above NoCont); NGINX latency −30.1 % vs NAT but far above NoCont
(software overhead, not networking); container cases show much larger
latency variance than NoCont.
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.macro import latency_row, run_macro
from repro.harness.results import ExperimentResult

MODES = (DeploymentMode.NAT, DeploymentMode.BRFUSION, DeploymentMode.NOCONT)
APPS = ("kafka", "nginx", "memcached")


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    rows = []
    for app in APPS:
        for mode in MODES:
            result, _breakdowns, _tb, _scenario = run_macro(app, mode, config)
            rows.append(latency_row(app, result))

    def lat(app, mode):
        return next(
            r["latency_us"] for r in rows
            if r["app"] == app and r["mode"] == mode
        )

    notes = (
        "Kafka BrFusion vs NAT latency: "
        f"{1 - lat('kafka', 'brfusion') / lat('kafka', 'nat'):+.1%}"
        " better (paper ≈ 11.8% better)",
        "Kafka BrFusion vs NoCont latency: "
        f"{lat('kafka', 'brfusion') / lat('kafka', 'nocont') - 1:+.1%}"
        " (paper ≈ +13.1%)",
        "NGINX BrFusion vs NAT latency: "
        f"{1 - lat('nginx', 'brfusion') / lat('nginx', 'nat'):+.1%}"
        " better (paper ≈ 30.1% better)",
        "NGINX BrFusion vs NoCont latency: "
        f"{lat('nginx', 'brfusion') / lat('nginx', 'nocont') - 1:+.1%}"
        " (paper ≈ +120.3%; the overhead is the container software "
        "stack, not networking)",
    )
    return ExperimentResult(
        experiment="fig05",
        title="Fig 5: BrFusion macro-benchmarks (table 1 parameters)",
        rows=tuple(rows),
        notes=notes,
    )

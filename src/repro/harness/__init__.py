"""The experiment harness: one runnable experiment per paper figure.

Every table and figure of the paper's evaluation (§5) has a registered
experiment that regenerates its rows on the simulated testbed:

==============  ====================================================
experiment id    what it reproduces
==============  ====================================================
``fig02``        motivation: nested vs single-level netperf
``fig04``        BrFusion micro-benchmark sweep (throughput+latency)
``fig05``        BrFusion macro-benchmarks (Kafka, NGINX, Memcached)
``fig06``        CPU breakdown under Kafka
``fig07``        CPU breakdown under NGINX
``fig08``        container boot time, NAT vs BrFusion (100 runs)
``fig09``        Hostlo cost savings on the synthetic Google traces
``fig10``        Hostlo overhead micro-benchmark sweep
``fig11_12``     Memcached over Hostlo (throughput + latency)
``fig13``        NGINX over Hostlo (latency)
``fig14``        CPU usage, Memcached over Hostlo
``fig15``        CPU usage, NGINX over Hostlo
``table01``      macro-benchmark parameters
``table02``      the AWS m5 catalog
==============  ====================================================

Extensions beyond the paper (same registry): ``ablation_hostlo_thread``,
``ablation_netfilter_cost``, ``ablation_no_batching``,
``ablation_rule_bloat``, ``ablation_scheduler_policy``, ``online_cost``
and ``analytic_check``.

Use :func:`run_experiment` (or ``python -m repro.harness``)::

    from repro.harness import run_experiment, ExperimentConfig
    result = run_experiment("fig04", ExperimentConfig.preset("quick"))
    print(result.render())
"""

from repro.harness.config import ExperimentConfig
from repro.harness.registry import EXPERIMENTS, run_experiment
from repro.harness.results import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
]

"""Figs 14 & 15 — CPU usage of Hostlo vs SameNode/NAT/Overlay.

Paper claims (fig 14, Memcached): vs SameNode, hostlo raises
client+server kernel CPU by ≈46.7 % and total client+server CPU by
≈53.2 %; host-side guest CPU time grows ≈89.8 % (SameNode runs one VM,
the others two).  ~1.68 cores of host kernel time serve the guests'
virtual interfaces (vhost) — present for NAT and Overlay too, so the
hostlo module's CPU cost is attributed like vhost's.  Fig 15 (NGINX):
smaller increases (+17.1 % client+server, +36.9 % guest).
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.macro import cpu_rows, run_macro
from repro.harness.results import ExperimentResult

MODES = (
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
    DeploymentMode.NAT_CROSS,
)


def _run_app(app: str, experiment: str, title: str,
             config: ExperimentConfig) -> ExperimentResult:
    rows = []
    summaries = {}
    for mode in MODES:
        _result, breakdowns, tb, scenario = run_macro(app, mode, config)
        vm_entities = sorted(
            name for name in breakdowns if name.startswith("vm:")
        )
        rows.extend(cpu_rows(app, mode, breakdowns,
                             entities=(*vm_entities, "host")))
        # client+server = everything the guests run (both pod fragments).
        kernel = sum(
            breakdowns[e].kernel for e in vm_entities
        )
        total = sum(breakdowns[e].total for e in vm_entities)
        summaries[mode.value] = {
            "kernel": kernel,
            "total": total,
            "guest": breakdowns["host"].guest,
            "host_sys": breakdowns["host"].sys,
        }

    def rel(metric, mode):
        base = summaries["samenode"][metric]
        if base <= 0:
            return 0.0
        return summaries[mode][metric] / base - 1.0

    notes = (
        f"client+server kernel CPU, hostlo vs SameNode: "
        f"{rel('kernel', 'hostlo'):+.1%}"
        " (paper: +46.7% for Memcached, smaller for NGINX)",
        f"client+server total CPU, hostlo vs SameNode: "
        f"{rel('total', 'hostlo'):+.1%} (paper: +53.2% / +17.1%)",
        f"host guest-CPU time, hostlo vs SameNode: "
        f"{rel('guest', 'hostlo'):+.1%}"
        " (paper: +89.8% / +36.9%; SameNode runs one VM, hostlo two)",
        "host kernel (vhost/hostlo worker) cores — hostlo "
        f"{summaries['hostlo']['host_sys'] / max(config.macro_duration_s, 1e-9):.2f}"
        ", nat "
        f"{summaries['nat_cross']['host_sys'] / max(config.macro_duration_s, 1e-9):.2f}"
        ", overlay "
        f"{summaries['overlay']['host_sys'] / max(config.macro_duration_s, 1e-9):.2f}"
        " (paper: ≈1.68 cores, similar across the three)",
    )
    return ExperimentResult(
        experiment=experiment, title=title, rows=tuple(rows), notes=notes
    )


def run_fig14(config: ExperimentConfig | None = None) -> ExperimentResult:
    return _run_app(
        "memcached", "fig14",
        "Fig 14: CPU usage, Memcached over Hostlo (cores busy)",
        config or ExperimentConfig(),
    )


def run_fig15(config: ExperimentConfig | None = None) -> ExperimentResult:
    return _run_app(
        "nginx", "fig15",
        "Fig 15: CPU usage, NGINX over Hostlo (cores busy)",
        config or ExperimentConfig(),
    )

"""Fig 9 — Hostlo cost savings on (synthetic) Google cluster traces.

Paper: among 492 users, ≈11.4 % see reduced costs; 66.7 % of those save
more than 5 %; the maximum relative saving is ≈40 % and the maximum
absolute saving ≈237 $/h (a 35 % reduction for that user).
"""

from __future__ import annotations

from repro.costsim import SavingsReport, simulate_costs
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.traces import TraceConfig, generate_trace


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    users = generate_trace(TraceConfig(users=config.trace_users,
                                       seed=config.seed))
    report = SavingsReport.from_outcomes(simulate_costs(users))

    rows = [
        {"metric": "users simulated", "value": report.user_count,
         "paper": 492},
        {"metric": "users saving money (%)",
         "value": report.saver_fraction * 100, "paper": 11.4},
        {"metric": "savers above 5% (%)",
         "value": report.savers_above_5pct_fraction * 100, "paper": 66.7},
        {"metric": "max relative saving (%)",
         "value": report.max_relative_saving * 100, "paper": 40.0},
        {"metric": "max absolute saving ($/h)",
         "value": report.max_absolute_saving, "paper": 237.0},
        {"metric": "biggest saver's relative saving (%)",
         "value": report.biggest_saver.relative_saving * 100, "paper": 35.0},
    ]
    for label, count in report.histogram():
        rows.append({"metric": f"savers in {label}", "value": count,
                     "paper": None})

    return ExperimentResult(
        experiment="fig09",
        title="Fig 9: Hostlo cost savings (§5.3.1 simulation)",
        rows=tuple(rows),
        notes=(
            "synthetic Google-like trace (the real 2011 traces are not "
            "distributable); only the distribution shape is claimed",
        ),
    )

"""Fig 2 — motivation: nested (NAT) vs single-level (NoCont) netperf.

The paper's §2 excerpt of fig 4: with 1280 B messages, nested
virtualization degrades throughput by ~68 % and increases latency by
~31 % compared to a single networking layer.
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.micro import ratio, run_point
from repro.harness.results import ExperimentResult

MESSAGE_SIZE = 1280


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    rows = [
        run_point(DeploymentMode.NOCONT, MESSAGE_SIZE, config),
        run_point(DeploymentMode.NAT, MESSAGE_SIZE, config),
    ]
    degradation = 1.0 - ratio(rows, "throughput_mbps", MESSAGE_SIZE,
                              "nat", "nocont")
    increase = ratio(rows, "latency_us", MESSAGE_SIZE, "nat", "nocont") - 1.0
    return ExperimentResult(
        experiment="fig02",
        title="Fig 2: network performance under nested vs single-level "
              "virtualization (1280 B)",
        rows=tuple(rows),
        notes=(
            f"throughput degradation: {degradation:.1%} (paper ≈ 68%)",
            f"latency increase: {increase:.1%} (paper ≈ 31%)",
        ),
    )

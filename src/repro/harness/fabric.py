"""Fabric — ECMP spread, incast, elephant re-pinning, rack awareness.

Not a paper figure: the paper's testbed is one physical host.  This
experiment exercises the :mod:`repro.fabric` subsystem end-to-end on a
k-ary fat-tree and reports six lanes:

``ecmp-spread``
    Many distinct flows from one rack to the rest of the tree; the
    per-link byte counters must show the source edge's equal-cost
    uplinks all carrying traffic (the hash actually spreads).

``incast``
    Every other host bursts frames at one victim host inside a
    :meth:`~repro.fabric.topology.FatTree.congestion` window with
    bounded switch rings: the converging edge port overflows
    deterministically, and every lost frame sits in the conservation
    ledger as a labelled ``fabric-overflow`` drop.

``elephant-mice``
    Two elephance flows engineered to hash-collide on one uplink amid
    a crowd of mice, run twice: hash-only versus after one
    :meth:`~repro.fabric.flowsched.TrafficAwareFlowScheduler.rebalance`
    round.  Re-pinning must measurably reduce the max uplink bytes.

``link-down``
    A scheduled ``fabric.link_down`` pulls one edge uplink mid-run
    (and restores it later); liveness-filtered ECMP reroutes onto the
    surviving sibling, so every frame still delivers.

``rack-sched``
    The same split pod placed by the plain most-requested policy and by
    :class:`~repro.fabric.scheduler.TopologyAwareScheduler` over nodes
    pre-loaded to bait the former into scattering cross-pod; the
    rack-aware placement must shrink the mean fragment distance.

``reflection-cost``
    The §5.3.1 cost pipeline rerun with
    :class:`~repro.fabric.costs.TopologyCostModel` as the improvement
    objective: splits that only pay off ignoring topology distance get
    rejected, shrinking the reflection tax.

Every datapath lane ends with a :func:`repro.health.run_checks` audit
(``fabrics=(tree,)`` wires in the fabric wiring invariants); the
``violations`` column must be zero everywhere.
"""

from __future__ import annotations

import typing as t

from repro import faults
from repro.faults import ChaosController, FaultInjector, FaultPlan, FaultSpec
from repro.fabric import (
    FatTree,
    TopologyAwareScheduler,
    TopologyCostModel,
    TrafficAwareFlowScheduler,
    ecmp_index,
    flow_signature,
)
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.health import HealthScope, run_checks
from repro.net import flows as net_flows
from repro.net.forwarding import ForwardingEngine
from repro.orchestrator.node import Node
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.orchestrator.scheduler import MostRequestedScheduler
from repro.sim import Environment
from repro.virt import Vmm

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.addresses import Ipv4Address
    from repro.net.namespace import NetworkNamespace
    from repro.health.invariants import Violation

#: Payload sizes: an elephant frame, a mouse frame, everything else.
ELEPHANT_BYTES = 8192
MOUSE_BYTES = 64
FRAME_BYTES = 1024

#: The link-down lane's timeline (simulated seconds).
FAULT_AT_S = 0.005
FAULT_DURATION_S = 0.004
LINKDOWN_HORIZON_S = 0.012
TRAFFIC_TICK_S = 1e-3

#: The incast lane drains the switch rings every this many burst rounds
#: — rarely enough that the converging port's bounded ring overflows.
SERVICE_EVERY_ROUNDS = 3


class FabricRig:
    """One fat-tree plus a forwarding engine and per-host clients.

    Built fresh per lane (the :class:`~repro.harness.reliability.
    WireRig` idiom) so lane order cannot perturb determinism.  Clients
    are container namespaces veth-attached to their host's default
    bridge, so a fabric frame crosses the full stack: veth → bridge →
    host route → rack link → edge/agg/core hops → the far bridge.
    """

    def __init__(self, config: ExperimentConfig,
                 queue_capacity: int | None = None) -> None:
        self.env = Environment()
        self.tree = FatTree(
            self.env,
            k=config.fabric_k,
            hosts_per_edge=config.fabric_hosts_per_edge,
            queue_capacity=queue_capacity,
            seed=config.seed,
        )
        self.fwd = ForwardingEngine()
        self._clients: dict[str, "NetworkNamespace"] = {}

    def client(self, host_name: str) -> "NetworkNamespace":
        if host_name not in self._clients:
            host = self.tree.host(host_name)
            self._clients[host_name] = host.create_attached_namespace(
                f"cl-{host_name}", domain=f"client:{host_name}"
            )
        return self._clients[host_name]

    def addr(self, host_name: str) -> "Ipv4Address":
        address = self.client(host_name).device("eth0").primary_ip
        assert address is not None
        return address

    def rack0_hosts(self) -> list[str]:
        """The hosts of the first-built rack (the traffic sources)."""
        return next(iter(self.tree.racks.values()))

    def cross_pod_hosts(self, not_pod: int = 0) -> list[str]:
        """Build-ordered hosts outside *not_pod* (the far targets)."""
        return [
            name
            for rack in self.tree.racks.values()
            for name in rack
            if self.tree.pod_of(name) != not_pod
        ]

    def audit(self) -> list["Violation"]:
        scope = HealthScope.of(
            fabrics=(self.tree,),
            namespaces=self._clients.values(),
            forwarding=self.fwd,
        )
        return run_checks(scope)


def run_ecmp_spread(config: ExperimentConfig) -> tuple[list[dict], list[str]]:
    """Distinct flows out of one rack must use every live edge uplink."""
    rig = FabricRig(config)
    src = rig.rack0_hosts()[0]
    edge = rig.tree.rack_of(src)
    targets = rig.cross_pod_hosts()
    for index in range(config.fabric_flows):
        dst = rig.addr(targets[index % len(targets)])
        for _ in range(config.fabric_frames):
            rig.fwd.send(rig.client(src), dst, 20_000 + index,
                         payload_bytes=FRAME_BYTES)
    uplinks = rig.tree.uplink_links(edge)
    used = sum(1 for link in uplinks.values() if link.frames_carried)
    violations = rig.audit()
    rows = [{
        "scenario": "ecmp-spread",
        "mode": "hash",
        "flows": config.fabric_flows,
        "sent": rig.fwd.frames_sent,
        "delivered": rig.fwd.frames_delivered,
        "uplinks_total": len(uplinks),
        "uplinks_used": used,
        "violations": len(violations),
    }]
    notes = [
        f"ecmp-spread: {config.fabric_flows} flows from {src} used "
        f"{used}/{len(uplinks)} equal-cost uplinks of {edge}",
    ]
    return rows, notes


def run_incast(config: ExperimentConfig) -> tuple[list[dict], list[str]]:
    """An incast microburst against bounded rings overflows — audibly."""
    rig = FabricRig(config, queue_capacity=config.fabric_queue_capacity)
    victim = rig.rack0_hosts()[0]
    dst = rig.addr(victim)
    senders = [name for name in rig.tree.hosts if name != victim]
    serviced = 0
    with rig.tree.congestion():
        for burst in range(config.fabric_frames):
            for index, sender in enumerate(senders):
                rig.fwd.send(rig.client(sender), dst, 30_000 + index,
                             payload_bytes=FRAME_BYTES)
            if (burst + 1) % SERVICE_EVERY_ROUNDS == 0:
                serviced += rig.tree.service_all()
    serviced += rig.tree.service_all()
    overflow = rig.fwd.drops.get("fabric-overflow", 0)
    violations = rig.audit()
    rows = [{
        "scenario": "incast",
        "mode": "burst",
        "senders": len(senders),
        "rounds": config.fabric_frames,
        "sent": rig.fwd.frames_sent,
        "delivered": rig.fwd.frames_delivered,
        "overflow_drops": overflow,
        "serviced_frames": serviced,
        "violations": len(violations),
    }]
    notes = [
        f"incast: {len(senders)} senders x {config.fabric_frames} rounds "
        f"into {victim} (ring depth {config.fabric_queue_capacity}): "
        f"{overflow} labelled fabric-overflow drops, ledger conserved",
    ]
    return rows, notes


def _colliding_ports(rig: FabricRig, src: str,
                     dsts: t.Sequence[str]) -> list[int]:
    """Destination ports making every elephant hash onto ONE uplink at
    the source edge — the pathological collision re-pinning must fix."""
    edge = rig.tree.switch(rig.tree.rack_of(src))
    fan_out = len(edge.uplinks)
    src_ip = str(rig.addr(src))

    def index_of(dst: str, port: int) -> int:
        signature = flow_signature(src_ip, str(rig.addr(dst)), "tcp", port)
        return ecmp_index(signature, edge.name, fan_out)

    ports = [18_000]
    want = index_of(dsts[0], ports[0])
    for dst in dsts[1:]:
        port = ports[-1] + 1
        while index_of(dst, port) != want:
            port += 1
        ports.append(port)
    return ports


def run_elephant_lane(config: ExperimentConfig,
                      repin: bool) -> tuple[dict, int]:
    """One elephant/mice lane; returns (row, max uplink bytes)."""
    rig = FabricRig(config)
    src = rig.rack0_hosts()[0]
    edge_name = rig.tree.rack_of(src)
    targets = rig.cross_pod_hosts()
    elephant_dsts = [targets[0], targets[len(targets) // 2]]
    ports = _colliding_ports(rig, src, elephant_dsts)

    def drive() -> None:
        for dst, port in zip(elephant_dsts, ports):
            for _ in range(config.fabric_frames):
                rig.fwd.send(rig.client(src), rig.addr(dst), port,
                             payload_bytes=ELEPHANT_BYTES)
        for index in range(config.fabric_flows):
            dst = rig.addr(targets[index % len(targets)])
            for _ in range(2):
                rig.fwd.send(rig.client(src), dst, 21_000 + index,
                             payload_bytes=MOUSE_BYTES)

    # Warm phase: accumulate live per-flow stats for the classifier.
    table = net_flows.FlowTable()
    with net_flows.use(table):
        drive()
    moved = 0
    if repin:
        scheduler = TrafficAwareFlowScheduler(
            rig.tree,
            elephant_bytes=config.fabric_frames * ELEPHANT_BYTES // 2,
        )
        # Plan over demand, not the stale warm counters: the collided
        # uplink's history would otherwise pin both elephants to the
        # idle sibling (the same collision, mirrored).
        rig.tree.reset_link_counters()
        decisions = scheduler.rebalance(table)
        moved = sum(1 for d in decisions if d.moved)
    rig.tree.reset_link_counters()
    drive()
    max_bytes = max(
        link.bytes_carried
        for link in rig.tree.uplink_links(edge_name).values()
    )
    violations = rig.audit()
    row = {
        "scenario": "elephant-mice",
        "mode": "repinned" if repin else "hash",
        "elephants": len(elephant_dsts),
        "mice": config.fabric_flows,
        "max_uplink_bytes": max_bytes,
        "repins_moved": moved,
        "violations": len(violations),
    }
    return row, max_bytes


def run_elephant_mice(
    config: ExperimentConfig,
) -> tuple[list[dict], list[str]]:
    """Hash-only vs re-pinned, on identical traffic and trees."""
    hash_row, hash_max = run_elephant_lane(config, repin=False)
    repin_row, repin_max = run_elephant_lane(config, repin=True)
    reduction = 100.0 * (1.0 - repin_max / hash_max) if hash_max else 0.0
    repin_row["max_reduction_pct"] = round(reduction, 1)
    notes = [
        "elephant-mice: re-pinning cut the hottest edge uplink from "
        f"{hash_max} to {repin_max} bytes ({reduction:.1f}% lower)",
    ]
    return [hash_row, repin_row], notes


def run_link_down(config: ExperimentConfig) -> tuple[list[dict], list[str]]:
    """Pull one edge uplink mid-run; ECMP must reroute every flow."""
    rig = FabricRig(config)
    src = rig.rack0_hosts()[0]
    edge_name = rig.tree.rack_of(src)
    targets = rig.cross_pod_hosts()
    flows = [
        (rig.addr(targets[index % len(targets)]), 25_000 + index)
        for index in range(min(config.fabric_flows, 8))
    ]
    target_link = sorted(rig.tree.uplink_links(edge_name))[0]
    plan = FaultPlan(
        specs=(
            FaultSpec(kind="fabric.link_down", target=target_link,
                      at=FAULT_AT_S, duration=FAULT_DURATION_S),
        ),
        description=f"{target_link} down at {FAULT_AT_S * 1e3:g}ms",
    )
    injector = FaultInjector(
        plan, rig.tree.host(src).rng.stream("faults"),
        now_fn=lambda: rig.env.now,
    )

    def traffic() -> t.Generator:
        while rig.env.now < LINKDOWN_HORIZON_S:
            yield rig.env.timeout(TRAFFIC_TICK_S)
            for dst, port in flows:
                rig.fwd.send(rig.client(src), dst, port,
                             payload_bytes=FRAME_BYTES)

    with faults.use(injector):
        controller = ChaosController(rig.env, plan=plan, injector=injector,
                                     fabric=rig.tree)
        controller.start()
        rig.env.process(traffic())
        rig.env.run(until=LINKDOWN_HORIZON_S)
    events = [kind for kind, _, _ in controller.executed]
    violations = rig.audit()
    rows = [{
        "scenario": "link-down",
        "mode": "chaos",
        "flows": len(flows),
        "sent": rig.fwd.frames_sent,
        "delivered": rig.fwd.frames_delivered,
        "downed_link": target_link,
        "fault_events": len(controller.executed),
        "reroute_ok": rig.fwd.frames_sent == rig.fwd.frames_delivered,
        "violations": len(violations),
    }]
    notes = [
        f"link-down: {target_link} down "
        f"[{FAULT_AT_S * 1e3:g}, {(FAULT_AT_S + FAULT_DURATION_S) * 1e3:g}]"
        f"ms, events {events}; every frame delivered via the surviving "
        "uplink",
    ]
    return rows, notes


def run_rack_sched(config: ExperimentConfig) -> tuple[list[dict], list[str]]:
    """Split-pod placement: fullness-only vs rack-distance-aware."""
    rig = FabricRig(config)
    hosts_in_order = [
        name for rack in rig.tree.racks.values() for name in rack
    ]
    per_pod_seen: dict[int, int] = {}
    nodes: list[Node] = []
    host_of_node: dict[str, str] = {}
    for index, host_name in enumerate(hosts_in_order):
        vmm = Vmm(rig.tree.host(host_name))
        vm = vmm.create_vm(f"node-{index:02d}", vcpus=4, memory_gb=4.0)
        node = Node(vm)
        # Bait: the fullest node of every pod is equally full, so the
        # fullness-only policy scatters the fragments pod by pod, while
        # slightly-emptier rack mates reward the distance term.
        pod = rig.tree.pod_of(host_name)
        rank = per_pod_seen.get(pod, 0)
        per_pod_seen[pod] = rank + 1
        preload = 2.0 - 0.08 * rank
        node.allocate(preload, preload)
        nodes.append(node)
        host_of_node[vm.name] = host_name

    spec = PodSpec(name="fab-pod", containers=tuple(
        ContainerSpec(name=f"frag-{i}", image="alpine", cpu=2.0,
                      memory_gb=1.0)
        for i in range(3)
    ))
    aware = TopologyAwareScheduler(rig.tree, host_of_node)
    rows = []
    distances: dict[str, float] = {}
    for policy, scheduler in (("most-requested", MostRequestedScheduler()),
                              ("rack-aware", aware)):
        placement = scheduler.place_split(nodes, spec)
        mean = aware.mean_distance(
            [node for _, node in placement.assignments]
        )
        distances[policy] = mean
        rows.append({
            "scenario": "rack-sched",
            "mode": policy,
            "fragments": len(placement.assignments),
            "nodes_used": len(placement.node_names),
            "mean_distance": round(mean, 2),
            "violations": 0,
        })
    notes = [
        "rack-sched: mean fragment distance "
        f"{distances['most-requested']:.2f} -> "
        f"{distances['rack-aware']:.2f} hops with the rack-aware policy",
    ]
    return rows, notes


def run_reflection_cost(
    config: ExperimentConfig,
) -> tuple[list[dict], list[str]]:
    """The fig9 pipeline priced with and without topology distance."""
    from repro.costsim.hostlo import improve_assignment, split_pod_names
    from repro.costsim.kubernetes import schedule_user
    from repro.costsim.packing import total_cost
    from repro.traces import TraceConfig, generate_trace

    rig = FabricRig(config)
    model = TopologyCostModel(rig.tree)
    users = generate_trace(TraceConfig(users=min(config.trace_users, 48),
                                       seed=config.seed))
    rows = []
    taxes: dict[str, float] = {}
    for objective, cost_fn in (("dollars", None),
                               ("topology", model.cost)):
        dollars = tax = 0.0
        splits = 0
        for user in users:
            baseline = schedule_user(user.pods)
            improved = improve_assignment(baseline, cost_fn=cost_fn)
            dollars += total_cost(improved)
            tax += model.reflection_cost(improved)
            splits += len(split_pod_names(improved))
        taxes[objective] = tax
        rows.append({
            "scenario": "reflection-cost",
            "mode": objective,
            "users": len(users),
            "hostlo_cost_per_h": round(dollars, 4),
            "reflection_tax_per_h": round(tax, 4),
            "effective_cost_per_h": round(dollars + tax, 4),
            "split_pods": splits,
            "violations": 0,
        })
    notes = [
        "reflection-cost: pricing distance into the objective moved the "
        f"reflection tax {taxes['dollars']:.4f} -> "
        f"{taxes['topology']:.4f} $/h over {len(users)} users",
    ]
    return rows, notes


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Fabric: ECMP spread, incast, elephants, faults, rack awareness."""
    config = config or ExperimentConfig()
    rows: list[dict] = []
    notes: list[str] = []
    for lane in (run_ecmp_spread, run_incast, run_elephant_mice,
                 run_link_down, run_rack_sched, run_reflection_cost):
        lane_rows, lane_notes = lane(config)
        rows.extend(lane_rows)
        notes.extend(lane_notes)
    total_violations = sum(r.get("violations", 0) for r in rows)
    notes.append(
        f"invariant violations across all lanes: {total_violations} "
        "(must be zero)"
    )
    return ExperimentResult(
        experiment="fabric",
        title="Fabric: fat-tree ECMP, congestion, faults and rack "
              "awareness",
        rows=tuple(rows),
        notes=tuple(notes),
    )

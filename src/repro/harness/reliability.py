"""Reliability — goodput under loss, ARQ recovery, degraded hostlo.

Not a paper figure: the paper's evaluation measures the fault-free
datapaths.  This experiment measures what the reliability layer adds
on top of them, in two scenarios:

``loss-sweep``
    A two-host wire rig carries a batch of messages at each
    ``link.loss`` rate in ``config.loss_rates``, twice: a *raw* lane
    (fire-and-forget, no retries — what the plain
    :class:`~repro.net.transfer.TransferEngine` models) and an *arq*
    lane (:class:`~repro.net.arq.ReliableTransfer` with a sliding
    window, retransmission timers and ACKs over the reverse path).
    The raw lane loses messages in proportion to the loss rate; the
    ARQ lane converges to exactly-once delivery at reduced goodput —
    the goodput-vs-loss curve.  ``--reliable`` skips the raw lane;
    ``--faults PLAN.json`` replaces the per-rate built-in plans with
    the given plan (one ``custom`` sweep point).

``hostlo-stall``
    A split hostlo pod on one host; a scheduled ``hostlo.stall`` fault
    wedges one fragment's queue.  A :class:`~repro.health.
    HealthMonitor` watchdog detects the stall, evicts the queue
    through the orchestrator's recovery machinery (recovery log +
    degraded-pod marking), and the surviving fragment keeps
    exchanging loopback frames — graceful degradation instead of a
    wedged pod.

Every lane ends with a :func:`repro.health.run_checks` audit; the
``violations`` column must be zero everywhere.  Same seed and plan
reproduce a bit-identical ARQ retransmission schedule (checked and
reported in the notes).
"""

from __future__ import annotations

import typing as t

from repro import faults
from repro.errors import TopologyError
from repro.faults import ChaosController, FaultInjector, FaultPlan, FaultSpec
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.health import HealthScope, run_checks
from repro.health.monitor import HealthMonitor
from repro.net import ArqConfig, resolve_path
from repro.net.forwarding import ForwardingEngine
from repro.net.links import connect_hosts
from repro.net.transfer import TransferEngine
from repro.orchestrator.cluster import Orchestrator
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.arq import ArqReport
    from repro.health.invariants import Violation

#: One MSS of payload per message, the netperf default port.
MESSAGE_BYTES = 1448
PORT = 5001

#: The stall scenario's timeline (simulated seconds).  The stall lands
#: between watchdog ticks so frames queue against the wedged consumer
#: and the eviction demonstrably drains them.
STALL_AT_S = 0.0045
STALL_HORIZON_S = 0.020
TRAFFIC_TICK_S = 1e-3


def lossy_plan(loss: float, corrupt: float = 0.0) -> FaultPlan:
    """A sweep point: every wire loses/corrupts frames at these rates."""
    specs: list[FaultSpec] = [
        FaultSpec(kind="link.loss", target="*", probability=loss),
    ]
    if corrupt > 0.0:
        specs.append(
            FaultSpec(kind="link.corrupt", target="*", probability=corrupt)
        )
    return FaultPlan(
        specs=tuple(specs),
        description=f"uniform {loss:.0%} loss on every link",
    )


def stall_plan(vm_name: str) -> FaultPlan:
    """The built-in hostlo-stall plan: wedge one VM's queue."""
    return FaultPlan(
        specs=(
            FaultSpec(kind="hostlo.stall", target=vm_name, at=STALL_AT_S),
        ),
        description=f"{vm_name}'s hostlo queue wedges {STALL_AT_S * 1e3}ms in",
    )


class WireRig:
    """Two cabled hosts, one VM each, and a registered transfer engine.

    The unit the loss sweep (and the ARQ tests) runs on: ``path`` is
    the resolved VM-to-VM forward datapath across the wire, ``ack_path``
    the reverse.  Built fresh per lane so every lane draws from its own
    seeded streams — lane order cannot perturb determinism.
    """

    def __init__(self, seed: int, bandwidth_bps: float = 10e9) -> None:
        self.env = Environment()
        self.host_a = PhysicalHost(self.env, name="txh", seed=seed)
        self.host_b = PhysicalHost(self.env, name="rxh", seed=seed + 1)
        self.vmm_a, self.vmm_b = Vmm(self.host_a), Vmm(self.host_b)
        self.vm_a = self.vmm_a.create_vm("tx-vm")
        # One L2 segment across the wire: beta allocates from a
        # disjoint range of the shared subnet.
        self.host_b._host_allocators["virbr0"]._next = 100
        self.vm_b = self.vmm_b.create_vm("rx-vm")
        self.link = connect_hosts("rel-wire", self.host_a, self.host_b,
                                  bandwidth_bps=bandwidth_bps)
        self.engine = TransferEngine(self.env)
        for owner in (self.host_a, self.host_b, self.vm_a, self.vm_b):
            self.engine.register_domain(owner.domain, owner.cpu)
        self.engine.register_domain(self.link.domain,
                                    self.link.make_pool(self.env))
        self.path = resolve_path(
            self.vm_a.ns, self.vm_b.primary_nic.primary_ip, PORT
        )
        self.ack_path = resolve_path(
            self.vm_b.ns, self.vm_a.primary_nic.primary_ip, PORT
        )

    def injector(self, plan: FaultPlan) -> FaultInjector:
        return FaultInjector(plan, self.host_a.rng.stream("faults"),
                             now_fn=lambda: self.env.now)

    def audit(self, *reports: "ArqReport") -> list["Violation"]:
        scope = HealthScope.of(vmms=(self.vmm_a, self.vmm_b),
                               arq_reports=reports)
        return run_checks(scope)


def run_lane(
    config: ExperimentConfig, plan: FaultPlan, mode: str
) -> tuple["ArqReport", list["Violation"]]:
    """One sweep lane: *mode* is ``"raw"`` (no retries, free ACKs) or
    ``"arq"`` (the full protocol)."""
    rig = WireRig(config.seed)
    if mode == "arq":
        arq_config = ArqConfig(window=config.arq_window)
        ack_path = rig.ack_path
    else:
        arq_config = ArqConfig(window=config.arq_window, max_retries=0)
        ack_path = None
    transfer = rig.engine.reliable_transfer(
        rig.path, MESSAGE_BYTES, messages=config.arq_messages,
        config=arq_config, rng=rig.host_a.rng.stream("arq"),
        ack_path=ack_path, links=(rig.link,),
        tx_queue=rig.vm_a.primary_nic.tx_queue,
    )
    with faults.use(rig.injector(plan)):
        report = transfer.run()
    return report, rig.audit(report)


def _sweep_row(scenario: str, mode: str, loss_pct: float | None,
               report: "ArqReport",
               violations: list["Violation"]) -> dict[str, t.Any]:
    return {
        "scenario": scenario,
        "mode": mode,
        "loss_pct": loss_pct,
        "messages": report.messages,
        "delivered": report.delivered,
        "transmissions": report.transmissions,
        "retransmissions": report.retransmissions,
        "duplicates": report.duplicates,
        "exhausted": report.exhausted,
        "goodput_mbps": round(report.goodput_mbps, 3),
        "exactly_once": report.exactly_once,
        "violations": len(violations),
    }


def run_loss_sweep(
    config: ExperimentConfig,
) -> tuple[list[dict[str, t.Any]], list[str]]:
    """The goodput-vs-loss curve: raw vs ARQ lanes per sweep point."""
    if config.fault_plan:
        points: list[tuple[str, float | None, FaultPlan]] = [
            ("custom", None, FaultPlan.load(config.fault_plan)),
        ]
    else:
        points = [
            ("loss-sweep", 100.0 * loss, lossy_plan(loss))
            for loss in config.loss_rates
        ]

    rows: list[dict[str, t.Any]] = []
    modes = ("arq",) if config.reliable else ("raw", "arq")
    for scenario, loss_pct, plan in points:
        for mode in modes:
            report, violations = run_lane(config, plan, mode)
            rows.append(
                _sweep_row(scenario, mode, loss_pct, report, violations)
            )

    # Determinism: the last (lossiest) ARQ lane replayed under the same
    # seed and plan must produce a bit-identical retransmission
    # schedule — the acceptance criterion for the "arq" jitter stream.
    scenario, _loss_pct, plan = points[-1]
    first, _ = run_lane(config, plan, "arq")
    second, _ = run_lane(config, plan, "arq")
    notes = [
        f"{scenario}: retransmission schedule deterministic: "
        f"{first.schedule == second.schedule} "
        f"({len(first.schedule)} transmissions replayed)",
    ]
    return rows, notes


def split_pod(name: str = "rel") -> PodSpec:
    """3 x 2-vCPU containers: cannot fit one 5-vCPU VM, must split."""
    return PodSpec(name=name, containers=tuple(
        ContainerSpec(name=f"c{index}", image="alpine", cpu=2.0,
                      memory_gb=1.0)
        for index in range(3)
    ))


def run_stall_scenario(
    config: ExperimentConfig,
) -> tuple[list[dict[str, t.Any]], list[str]]:
    """Wedge one fragment's hostlo queue; the watchdog must evict it
    and the surviving fragment must keep exchanging loopback frames."""
    env = Environment()
    host = PhysicalHost(env, seed=config.seed)
    vmm = Vmm(host)
    orch = Orchestrator(vmm)
    for index in range(2):
        orch.enroll(vmm.create_vm(f"vm{index}", vcpus=5, memory_gb=4.0))
    deployment = orch.deploy_pod(split_pod(), network="hostlo",
                                 allow_split=True)

    nodes = {c: deployment.placement.node_of(c)
             for c in deployment.containers}
    counts: dict[str, int] = {}
    for node in nodes.values():
        counts[node] = counts.get(node, 0) + 1
    # Stall the lonely fragment so the survivors still have a pair of
    # containers to exchange loopback frames.
    stall_vm = min(counts, key=lambda node: (counts[node], node))
    survivors = sorted(c for c, node in nodes.items() if node != stall_vm)
    lonely = next(c for c, node in sorted(nodes.items())
                  if node == stall_vm)

    fwd = ForwardingEngine()
    monitor = HealthMonitor(
        env,
        lambda: HealthScope.of(orchestrators=(orch,), forwarding=fwd),
        interval_s=config.health_interval_s,
        orchestrator=orch,
    )
    traffic: list[tuple[float, str, bool]] = []

    def exchange() -> t.Generator:
        while env.now < STALL_HORIZON_S:
            yield env.timeout(TRAFFIC_TICK_S)
            for kind, destination in (("loopback", survivors[1]),
                                      ("cross", lonely)):
                try:
                    delivery = fwd.send(
                        deployment.namespace_of(survivors[0]),
                        deployment.intra_address(destination), 11211,
                    )
                    delivered = delivery.delivered
                except TopologyError:
                    # The evicted fragment's address no longer
                    # resolves: degraded, not crashed.
                    delivered = False
                traffic.append((env.now, kind, delivered))

    injector = FaultInjector(stall_plan(stall_vm),
                             host.rng.stream("faults"),
                             now_fn=lambda: env.now)
    with faults.use(injector):
        controller = ChaosController(env, vmm, orch=orch, injector=injector)
        controller.start()
        monitor.start(STALL_HORIZON_S)
        env.process(exchange())
        env.run(until=STALL_HORIZON_S)
        violations = monitor.check_now()

    evicted_at = monitor.evictions[0][0] if monitor.evictions else None
    drained = sum(e[3] for e in monitor.evictions)

    def count(kind: str, delivered: bool, since: float = 0.0,
              before: float = STALL_HORIZON_S + 1.0) -> int:
        return sum(1 for at, k, ok in traffic
                   if k == kind and ok == delivered and since <= at < before)

    degraded = deployment.plugin_state.get("degraded_nodes", [])
    rows = [{
        "scenario": "hostlo-stall",
        "mode": "watchdog",
        "evictions": len(monitor.evictions),
        "eviction_ms": (round(1e3 * (evicted_at - STALL_AT_S), 3)
                        if evicted_at is not None else None),
        "drained_frames": drained,
        "degraded_nodes": ",".join(degraded) or "-",
        "cross_ok_pre_stall": count("cross", True, before=STALL_AT_S),
        "cross_ok_post_evict": (count("cross", True, since=evicted_at)
                                if evicted_at is not None else None),
        "loopback_ok_post_evict": (count("loopback", True, since=evicted_at)
                                   if evicted_at is not None else None),
        "recovery_actions": len(orch.recovery_log),
        "violations": len(violations),
    }]
    notes = [
        f"hostlo-stall: {stall_vm} wedged at {STALL_AT_S * 1e3:g}ms, "
        f"evicted at "
        f"{'never' if evicted_at is None else f'{evicted_at * 1e3:g}ms'}; "
        f"{drained} queued frames drained, pod degraded to "
        f"{sorted(set(nodes.values()) - {stall_vm})}",
    ]
    return rows, notes


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Reliable datapath: ARQ goodput under loss + hostlo degradation."""
    config = config or ExperimentConfig()
    rows, notes = run_loss_sweep(config)
    stall_rows, stall_notes = run_stall_scenario(config)
    rows.extend(stall_rows)
    notes.extend(stall_notes)
    total_violations = sum(r["violations"] for r in rows)
    notes.append(
        f"invariant violations across all lanes: {total_violations} "
        "(must be zero)"
    )
    return ExperimentResult(
        experiment="reliability",
        title="Reliability: ARQ under loss and degraded hostlo pods",
        rows=tuple(rows),
        notes=tuple(notes),
    )

"""Experiment scaling knobs.

The paper ran 20-second netperf streams and 100 boot repetitions on
real hardware; the simulator reproduces the same shapes at configurable
scale.  ``quick`` keeps CI and pytest-benchmark runs fast; ``default``
is used to produce EXPERIMENTS.md; ``full`` approaches the paper's
sample counts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.errors import ConfigurationError

#: Message sizes swept by the paper's netperf figures.
FULL_MESSAGE_SIZES = (64, 256, 512, 1024, 1280, 2048, 4096, 8192, 16384)


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Scale parameters shared by all experiments."""

    seed: int = 2019
    stream_duration_s: float = 0.02
    stream_window: int = 128
    rr_transactions: int = 200
    message_sizes: tuple[int, ...] = (64, 1024, 1280, 4096, 16384)
    macro_duration_s: float = 0.03
    memtier_threads: int = 4
    memtier_connections_per_thread: int = 50
    wrk2_rate_per_s: float = 10_000.0
    wrk2_connections: int = 100
    boot_runs: int = 100
    trace_users: int = 492
    #: Path to a JSON fault plan for the ``chaos`` and ``reliability``
    #: experiments (``--faults PLAN.json``); ``None`` runs the
    #: built-in scenarios.
    fault_plan: str | None = None
    #: ``link.loss`` probabilities swept by the ``reliability``
    #: experiment's goodput-vs-loss curve.
    loss_rates: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)
    #: Messages per reliability lane and the ARQ window size.
    arq_messages: int = 120
    arq_window: int = 16
    #: ``--reliable``: restrict the reliability experiment to its
    #: ARQ lane (skip the raw, fail-silent baseline lane).
    reliable: bool = False
    #: ``--health``: run the invariant checks inside supporting
    #: experiments and report violation counts.
    health: bool = False
    #: Health watchdog period (simulated seconds).
    health_interval_s: float = 2.0e-3
    #: Fat-tree arity for the ``fabric`` experiment (even, >= 4).
    fabric_k: int = 4
    #: Hosts cabled under each edge switch (1 .. k/2).
    fabric_hosts_per_edge: int = 2
    #: Distinct flows driven per fabric lane.
    fabric_flows: int = 24
    #: Frames sent per flow.
    fabric_frames: int = 30
    #: Switch uplink tx-queue capacity for the incast lane.
    fabric_queue_capacity: int = 24
    #: ``--backend``: which network-stack backend the ``netstack``
    #: experiment sweeps — a ``repro.netstack`` registry name, or
    #: ``"all"`` for the full comparison matrix.
    netstack_backend: str = "all"
    #: Frames driven per netstack frame-fidelity lane.
    netstack_frames: int = 40
    #: Loss probability for the netstack faulted and ARQ lanes.
    netstack_loss: float = 0.08
    #: Worker shards for the ``service`` experiment's live instance.
    service_shards: int = 2
    #: Concurrent HTTP clients driven against the live service.
    service_clients: int = 8
    #: Jobs each client submits during the mixed-load lane.
    service_jobs_per_client: int = 3
    #: Users per streaming-trace job the service lanes submit.
    service_trace_users: int = 50_000
    #: Executor for the mixed-load lane (``thread`` or ``spawn``; the
    #: crash-recovery lane always exercises ``spawn`` regardless).
    service_executor: str = "thread"

    def __post_init__(self) -> None:
        if self.stream_duration_s <= 0 or self.macro_duration_s <= 0:
            raise ConfigurationError("durations must be positive")
        if self.rr_transactions < 2 or self.boot_runs < 2:
            raise ConfigurationError("need at least two samples")
        if not self.message_sizes:
            raise ConfigurationError("need at least one message size")
        if not self.loss_rates or any(
                not 0.0 <= p <= 1.0 for p in self.loss_rates):
            raise ConfigurationError(
                "loss_rates must be non-empty probabilities in [0, 1]"
            )
        if self.arq_messages < 1 or self.arq_window < 1:
            raise ConfigurationError(
                "arq_messages and arq_window must be >= 1"
            )
        if self.health_interval_s <= 0:
            raise ConfigurationError("health_interval_s must be positive")
        if self.fabric_k < 4 or self.fabric_k % 2:
            raise ConfigurationError("fabric_k must be even and >= 4")
        if not 1 <= self.fabric_hosts_per_edge <= self.fabric_k // 2:
            raise ConfigurationError(
                "fabric_hosts_per_edge must be in [1, fabric_k/2]"
            )
        if self.fabric_flows < 1 or self.fabric_frames < 1:
            raise ConfigurationError(
                "fabric_flows and fabric_frames must be >= 1"
            )
        if self.fabric_queue_capacity < 1:
            raise ConfigurationError("fabric_queue_capacity must be >= 1")
        if self.netstack_frames < 1:
            raise ConfigurationError("netstack_frames must be >= 1")
        if not 0.0 <= self.netstack_loss <= 1.0:
            raise ConfigurationError(
                "netstack_loss must be a probability in [0, 1]"
            )
        if (self.service_shards < 1 or self.service_clients < 1
                or self.service_jobs_per_client < 1
                or self.service_trace_users < 1):
            raise ConfigurationError(
                "service_shards, service_clients, service_jobs_per_client "
                "and service_trace_users must be >= 1"
            )
        if self.service_executor not in ("thread", "spawn"):
            raise ConfigurationError(
                f"service_executor must be 'thread' or 'spawn': "
                f"{self.service_executor!r}"
            )
        if self.netstack_backend != "all":
            # Imported lazily so building a config never pays for the
            # backend registry; unknown names raise the registry's
            # ConfigurationError listing every registered backend.
            from repro.netstack import backend

            backend(self.netstack_backend)

    def fingerprint(self) -> str:
        """A short stable hash of the resolved configuration.

        Two configs fingerprint equal iff every field is equal, so the
        value keys the campaign result cache and lets a serial run and
        a campaign run be matched in reports.
        """
        payload = json.dumps(
            dataclasses.asdict(self), sort_keys=True, default=str
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @classmethod
    def preset(cls, name: str) -> "ExperimentConfig":
        """``quick`` | ``default`` | ``full``."""
        if name == "quick":
            return cls(
                stream_duration_s=0.008,
                rr_transactions=60,
                message_sizes=(1024, 1280),
                macro_duration_s=0.01,
                memtier_threads=2,
                memtier_connections_per_thread=10,
                wrk2_rate_per_s=4_000.0,
                wrk2_connections=40,
                boot_runs=30,
                trace_users=120,
                loss_rates=(0.0, 0.05),
                arq_messages=40,
                fabric_flows=12,
                fabric_frames=12,
                netstack_frames=16,
                service_jobs_per_client=3,
                service_trace_users=10_000,
            )
        if name == "default":
            return cls()
        if name == "full":
            return cls(
                stream_duration_s=0.05,
                rr_transactions=600,
                message_sizes=FULL_MESSAGE_SIZES,
                macro_duration_s=0.06,
                boot_runs=100,
                trace_users=492,
                loss_rates=(0.0, 0.01, 0.02, 0.05, 0.10, 0.20),
                arq_messages=400,
                fabric_flows=64,
                fabric_frames=60,
                netstack_frames=120,
                service_clients=12,
                service_jobs_per_client=4,
                service_trace_users=1_000_000,
            )
        raise ConfigurationError(f"unknown preset {name!r}")

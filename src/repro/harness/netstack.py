"""Netstack — the network-stack backend comparison matrix.

Not a paper figure: the paper fixes one stack per deployment mode.
This experiment runs the *same* workload through every registered
:mod:`repro.netstack` backend — the four paper modes plus the
NetKernel-style ``offloaded_nsm`` (host-owned stack behind a bounded
shared-queue boundary) — and emits the comparison matrix.

Four lanes per backend, each on a fresh testbed (the rig-per-lane
idiom, so lane order cannot perturb determinism):

``cost``
    One traced message: per-stage cycles under the backend's own cost
    model (its :meth:`~repro.netstack.module.NetworkStackModule.refine`
    and ``cost_model`` hooks applied), the analytic frames/sec bound
    and the uncontended one-way latency.

``clean``
    ``netstack_frames`` frame-fidelity sends; every backend must
    deliver every frame — the identical-delivered-bytes criterion —
    with the conservation ledger balanced and zero drops.

``faulted``
    The same frames under the backend's *own* fault plan
    (``netstack_loss`` at its characteristic crossing: bridge, hostlo
    tap, or NSM boundary); every loss must appear in the ledger as a
    labelled drop.

``arq``
    An ARQ-protected transfer under the same loss: exactly-once
    delivery must hold, and the retransmission count is the recovery-
    behavior column.

The ``stage-cycles`` rows pivot the cost lane into a per-stage matrix
with one column per backend (``offloaded_nsm`` shows its ``nsm_*``
stages where the others burn guest ``stack_tx``/``stack_rx``).  Every
lane ends with a :func:`repro.health.run_checks` audit; the
``violations`` column must be zero everywhere.
"""

from __future__ import annotations

import typing as t

from repro import faults
from repro.core.testbed import default_testbed
from repro.faults import FaultInjector
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.health import HealthScope, run_checks
from repro.net.arq import ArqConfig
from repro.net.forwarding import ForwardingEngine
from repro.netstack import NetworkStackModule, backend, backend_names

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.arq import ArqReport
    from repro.health.invariants import Violation

#: Payload of every frame and ARQ message (one MTU-ish message).
MESSAGE_BYTES = 1024


class NetstackRig:
    """One backend attached to a fresh two-VM testbed."""

    def __init__(self, config: ExperimentConfig,
                 module: NetworkStackModule) -> None:
        self.config = config
        self.module = module
        self.tb = default_testbed(seed=config.seed, vms=2)
        self.ep = module.attach(self.tb)
        self.fwd = ForwardingEngine()

    def injector(self, loss: float) -> FaultInjector:
        plan = self.module.fault_plan(loss)
        return FaultInjector(
            plan, self.tb.rng.stream(f"netstack:{self.module.name}"),
            now_fn=lambda: self.tb.env.now,
        )

    def conserved(self) -> bool:
        return self.fwd.frames_sent == (
            self.fwd.frames_delivered + sum(self.fwd.drops.values())
        )

    def audit(self, reports: t.Iterable["ArqReport"] = ()
              ) -> list["Violation"]:
        scope = HealthScope.of(
            orchestrators=(self.tb.orchestrator,),
            forwarding=self.fwd, arq_reports=reports,
        )
        return run_checks(scope)

    def close(self) -> None:
        self.module.detach(self.tb, self.ep)


def run_backend(
    config: ExperimentConfig, module: NetworkStackModule,
) -> tuple[dict, dict[str, float], list[str]]:
    """All four lanes for one backend: (summary row, stage cycles, notes)."""
    # -- cost lane: trace one message on a pristine rig ------------------
    rig = NetstackRig(config, module)
    model = module.cost_model(rig.tb.engine.cost_model)
    path = module.resolve(rig.ep)
    timings = rig.tb.engine.trace(path, MESSAGE_BYTES, cost_model=model)
    stage_cycles: dict[str, float] = {}
    for timing in timings:
        stage_cycles[timing.stage] = (
            stage_cycles.get(timing.stage, 0.0) + timing.cycles
        )
    frames_per_s = rig.tb.engine.bottleneck_rate(
        path, MESSAGE_BYTES, cost_model=model
    )
    latency_s = rig.tb.engine.latency_estimate(
        path, MESSAGE_BYTES, cost_model=model
    )

    # -- clean lane: same rig, no faults ---------------------------------
    for _ in range(config.netstack_frames):
        module.send(rig.fwd, rig.ep, payload_bytes=MESSAGE_BYTES)
    delivered = rig.fwd.frames_delivered
    delivered_bytes = delivered * MESSAGE_BYTES
    clean_ok = rig.conserved() and not rig.fwd.drops
    violations = list(rig.audit())
    rig.close()

    # -- faulted lane: fresh rig, the backend's own fault plan -----------
    frig = NetstackRig(config, module)
    with faults.use(frig.injector(config.netstack_loss)):
        for _ in range(config.netstack_frames):
            module.send(frig.fwd, frig.ep, payload_bytes=MESSAGE_BYTES)
    drops = dict(frig.fwd.drops)
    faulted_ok = frig.conserved()
    violations.extend(frig.audit())
    frig.close()

    # -- ARQ lane: exactly-once recovery under the same loss -------------
    arig = NetstackRig(config, module)
    transfer = module.reliable(
        arig.tb.engine, arig.ep,
        nbytes=MESSAGE_BYTES, messages=config.arq_messages,
        config=ArqConfig(window=config.arq_window),
        rng=arig.tb.rng.stream("arq"),
    )
    with faults.use(arig.injector(config.netstack_loss)):
        report = transfer.run()
    violations.extend(arig.audit(reports=(report,)))
    arig.close()

    drop_reasons = " ".join(
        f"{reason}={count}" for reason, count in sorted(drops.items())
    ) or "-"
    row = {
        "scenario": "summary",
        "backend": module.name,
        "stages": len(path.stages),
        "frames": config.netstack_frames,
        "delivered": delivered,
        "delivered_bytes": delivered_bytes,
        "frames_per_s": round(frames_per_s),
        "latency_us": round(latency_s * 1e6, 2),
        "clean_conserved": clean_ok,
        "loss_drops": sum(drops.values()),
        "drop_reasons": drop_reasons,
        "faulted_conserved": faulted_ok,
        "arq_delivered": report.delivered,
        "arq_retransmissions": report.retransmissions,
        "arq_exactly_once": report.exactly_once,
        "violations": len(violations),
    }
    notes = [
        f"{module.name}: {len(path.stages)} stages, "
        f"{delivered}/{config.netstack_frames} clean frames, "
        f"{sum(drops.values())} labelled drops at "
        f"{config.netstack_loss:.0%} {module.fault_kind}, ARQ recovered "
        f"{report.delivered}/{config.arq_messages} with "
        f"{report.retransmissions} retransmissions",
    ]
    return row, stage_cycles, notes


def stage_matrix(per_backend: dict[str, dict[str, float]]) -> list[dict]:
    """Pivot per-backend stage cycles into stage-keyed matrix rows.

    One row per stage in first-seen order, one column per backend —
    ``offloaded_nsm`` is a distinct column whose ``nsm_*`` rows the
    in-VM backends leave at zero (and vice versa for the guest
    ``stack_tx``/``stack_rx`` rows it never runs).
    """
    stages: dict[str, None] = {}
    for cycles in per_backend.values():
        for stage in cycles:
            stages.setdefault(stage, None)
    rows = []
    for stage in stages:
        row: dict[str, t.Any] = {"scenario": "stage-cycles", "stage": stage}
        for name, cycles in per_backend.items():
            row[name] = round(cycles.get(stage, 0.0))
        rows.append(row)
    return rows


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Backend comparison matrix: every network-stack module, one workload."""
    config = config or ExperimentConfig()
    if config.netstack_backend == "all":
        names = backend_names()
    else:
        names = (config.netstack_backend,)
    rows: list[dict] = []
    notes: list[str] = []
    per_backend: dict[str, dict[str, float]] = {}
    delivered_bytes: dict[str, int] = {}
    for name in names:
        row, stage_cycles, backend_notes = run_backend(config, backend(name))
        rows.append(row)
        notes.extend(backend_notes)
        per_backend[name] = stage_cycles
        delivered_bytes[name] = row["delivered_bytes"]
    rows.extend(stage_matrix(per_backend))
    identical = len(set(delivered_bytes.values())) == 1
    notes.append(
        f"identical delivered bytes across {len(names)} backend(s): "
        f"{identical} ({min(delivered_bytes.values())} bytes each)"
    )
    total_violations = sum(
        r.get("violations", 0) for r in rows if r["scenario"] == "summary"
    )
    notes.append(
        f"invariant violations across all lanes: {total_violations} "
        "(must be zero)"
    )
    return ExperimentResult(
        experiment="netstack",
        title="Netstack: backend comparison matrix "
              "(paper modes + offloaded NSM)",
        rows=tuple(rows),
        notes=tuple(notes),
    )

"""Experiment registry and runners (plain and traced)."""

from __future__ import annotations

import dataclasses
import pathlib
import sys
import typing as t

from repro import obs
from repro.errors import ConfigurationError
from repro.net import capture as net_capture
from repro.net import flows as net_flows
from repro.obs.export import summary, write_chrome_trace, write_spans_jsonl
from repro.obs.pcap import write_pcapng
from repro.harness import (
    ablations,
    analytic,
    chaos,
    fabric,
    fig02,
    fig04,
    fig05,
    fig06_07,
    fig08,
    fig09,
    fig10,
    fig11_13,
    fig14_15,
    netstack,
    online,
    reliability,
    tables,
)
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult

Runner = t.Callable[[ExperimentConfig | None], ExperimentResult]


def _run_campaign(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Campaign self-check: parallel == serial, warm cache all hits."""
    # Imported on first run, not at module import: the campaign layer
    # itself imports this registry to resolve experiment ids.
    from repro.campaign.experiment import run

    return run(config)


def _run_service(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Service self-check: admission, mixed load, warm cache, recovery."""
    # Lazy for the same reason as the campaign: service workers import
    # this registry to resolve experiment jobs.
    from repro.service.experiment import run

    return run(config)


#: Every figure and table of the paper's evaluation, by experiment id.
EXPERIMENTS: dict[str, Runner] = {
    "fig02": fig02.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06_07.run_fig06,
    "fig07": fig06_07.run_fig07,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11_12": fig11_13.run_fig11_12,
    "fig13": fig11_13.run_fig13,
    "fig14": fig14_15.run_fig14,
    "fig15": fig14_15.run_fig15,
    "table01": tables.run_table01,
    "table02": tables.run_table02,
    # Design-choice ablations (extensions beyond the paper's figures).
    "ablation_hostlo_thread": ablations.run_hostlo_thread,
    "ablation_netfilter_cost": ablations.run_netfilter_cost,
    "ablation_no_batching": ablations.run_no_batching,
    "ablation_rule_bloat": ablations.run_rule_bloat,
    "ablation_scheduler_policy": ablations.run_scheduler_policy,
    "online_cost": online.run,
    "analytic_check": analytic.run,
    # Fault injection & recovery (extension beyond the paper's figures).
    "chaos": chaos.run,
    # Datapath reliability: ARQ under loss + health watchdog.
    "reliability": reliability.run,
    # The fat-tree fabric subsystem end-to-end (see repro.fabric).
    "fabric": fabric.run,
    # The network-stack backend comparison matrix (see repro.netstack).
    "netstack": netstack.run,
    # The campaign layer checking itself (see repro.campaign).
    "campaign": _run_campaign,
    # The long-lived job service checking itself (see repro.service).
    "service": _run_service,
}


def describe(experiment: str) -> str:
    """The one-line description of a registered experiment.

    The first line of the runner function's docstring, falling back to
    the first line of its module's docstring (most figure runners
    document the figure at module level).
    """
    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment!r} (have: {sorted(EXPERIMENTS)})"
        ) from None
    doc = runner.__doc__
    if not doc:
        module = sys.modules.get(getattr(runner, "__module__", ""), None)
        doc = getattr(module, "__doc__", None)
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def run_experiment(
    experiment: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment!r} (have: {sorted(EXPERIMENTS)})"
        ) from None
    return runner(config)


#: Sampling applied by ``--trace`` unless overridden.  A full-rate
#: fig04 run records hundreds of thousands of datapath spans (tens of
#: messages per point, a dozen stages each) — far past what Perfetto
#: renders comfortably — so the hot categories are thinned
#: deterministically; everything else (hot-plugs, scheduler decisions,
#: CNI attaches) is rare and kept at full rate.  Pass ``sampling={}``
#: to :func:`run_experiment_traced` for a complete trace.
DEFAULT_TRACE_SAMPLING: dict[str, float] = {
    "sim.step": 0.002,
    "datapath.transfer": 0.02,
    "datapath.stage": 0.02,
    "forward.send": 0.05,
    "forward.hop": 0.01,
}


@dataclasses.dataclass(frozen=True)
class TraceArtifacts:
    """What one traced experiment run left on disk."""

    chrome_path: pathlib.Path
    spans_path: pathlib.Path
    metrics_path: pathlib.Path
    summary: str
    span_count: int
    event_count: int


def run_experiment_traced(
    experiment: str,
    config: ExperimentConfig | None = None,
    trace_dir: str | pathlib.Path = "out",
    sampling: t.Mapping[str, float] | None = None,
) -> tuple[ExperimentResult, TraceArtifacts]:
    """Run one experiment with tracing on and export the trace.

    Writes ``<trace_dir>/<experiment>.trace.json`` (Chrome
    ``trace_event`` format — open in Perfetto), ``.spans.jsonl`` (the
    raw span dump) and ``.metrics.txt`` (the metrics registry).
    """
    trace_dir = pathlib.Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    effective = dict(DEFAULT_TRACE_SAMPLING if sampling is None else sampling)
    with obs.capture(sampling=effective) as (tracer, metrics):
        result = run_experiment(experiment, config)
        artifacts = TraceArtifacts(
            chrome_path=write_chrome_trace(
                tracer, trace_dir / f"{experiment}.trace.json"
            ),
            spans_path=write_spans_jsonl(
                tracer, trace_dir / f"{experiment}.spans.jsonl"
            ),
            metrics_path=_write_metrics(
                metrics, trace_dir / f"{experiment}.metrics.txt"
            ),
            summary=summary(tracer, metrics=metrics),
            span_count=len(tracer.spans),
            event_count=len(tracer.events),
        )
    return result, artifacts


def _write_metrics(metrics: "obs.MetricsRegistry",
                   path: pathlib.Path) -> pathlib.Path:
    path.write_text(metrics.render_text())
    return path


@dataclasses.dataclass(frozen=True)
class CaptureArtifacts:
    """What one captured experiment run left on disk (and in memory)."""

    pcap_path: pathlib.Path | None
    flows_path: pathlib.Path | None
    top_flows: str
    packet_count: int
    point_count: int
    flow_count: int
    session: "net_capture.CaptureSession"
    flow_table: "net_flows.FlowTable"


def run_experiment_captured(
    experiment: str,
    config: ExperimentConfig | None = None,
    trace_dir: str | pathlib.Path = "out",
    pcap: bool = True,
    flows: bool = True,
    sampling: t.Mapping[str, float] | None = None,
    filter: str | None = None,
) -> tuple[ExperimentResult, TraceArtifacts, CaptureArtifacts]:
    """Run one experiment traced *and* packet-captured.

    On top of :func:`run_experiment_traced`'s artifacts this installs a
    promiscuous :class:`~repro.net.capture.CaptureSession` (every device
    a frame touches becomes a tap) and a
    :class:`~repro.net.flows.FlowTable` for the duration of the run,
    then writes ``<trace_dir>/<experiment>.pcapng`` (open it in
    Wireshark) and ``<experiment>.flows.txt`` (the top-flows table).
    Flow aggregates are folded into the metrics registry before it is
    exported, so ``.metrics.txt`` carries the per-flow counters too.
    """
    trace_dir = pathlib.Path(trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    effective = dict(DEFAULT_TRACE_SAMPLING if sampling is None else sampling)
    session = net_capture.CaptureSession(promiscuous=True, filter=filter)
    table = net_flows.FlowTable()
    with obs.capture(sampling=effective) as (tracer, metrics):
        with net_capture.use(session), net_flows.use(table):
            result = run_experiment(experiment, config)
        table.export_metrics(metrics)
        top_flows = table.top_flows()
        pcap_path = None
        if pcap:
            pcap_path = write_pcapng(
                session, trace_dir / f"{experiment}.pcapng"
            )
        flows_path = None
        if flows:
            flows_path = trace_dir / f"{experiment}.flows.txt"
            flows_path.write_text(top_flows + "\n")
        trace_artifacts = TraceArtifacts(
            chrome_path=write_chrome_trace(
                tracer, trace_dir / f"{experiment}.trace.json"
            ),
            spans_path=write_spans_jsonl(
                tracer, trace_dir / f"{experiment}.spans.jsonl"
            ),
            metrics_path=_write_metrics(
                metrics, trace_dir / f"{experiment}.metrics.txt"
            ),
            summary=summary(tracer, metrics=metrics),
            span_count=len(tracer.spans),
            event_count=len(tracer.events),
        )
    capture_artifacts = CaptureArtifacts(
        pcap_path=pcap_path,
        flows_path=flows_path,
        top_flows=top_flows,
        packet_count=session.packet_count,
        point_count=len(session.points()),
        flow_count=len(table),
        session=session,
        flow_table=table,
    )
    return result, trace_artifacts, capture_artifacts

"""Experiment registry and runner."""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError
from repro.harness import (
    ablations,
    analytic,
    fig02,
    fig04,
    fig05,
    fig06_07,
    fig08,
    fig09,
    fig10,
    fig11_13,
    fig14_15,
    online,
    tables,
)
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult

Runner = t.Callable[[ExperimentConfig | None], ExperimentResult]

#: Every figure and table of the paper's evaluation, by experiment id.
EXPERIMENTS: dict[str, Runner] = {
    "fig02": fig02.run,
    "fig04": fig04.run,
    "fig05": fig05.run,
    "fig06": fig06_07.run_fig06,
    "fig07": fig06_07.run_fig07,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11_12": fig11_13.run_fig11_12,
    "fig13": fig11_13.run_fig13,
    "fig14": fig14_15.run_fig14,
    "fig15": fig14_15.run_fig15,
    "table01": tables.run_table01,
    "table02": tables.run_table02,
    # Design-choice ablations (extensions beyond the paper's figures).
    "ablation_hostlo_thread": ablations.run_hostlo_thread,
    "ablation_netfilter_cost": ablations.run_netfilter_cost,
    "ablation_no_batching": ablations.run_no_batching,
    "ablation_rule_bloat": ablations.run_rule_bloat,
    "ablation_scheduler_policy": ablations.run_scheduler_policy,
    "online_cost": online.run,
    "analytic_check": analytic.run,
}


def run_experiment(
    experiment: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment!r} (have: {sorted(EXPERIMENTS)})"
        ) from None
    return runner(config)

"""Extension experiment: the closed-form model vs the simulator.

Runs the fig 4 sweep twice — once through the discrete-event engine,
once through :mod:`repro.analysis`'s closed form — and reports the
agreement per (mode, size) point.  A reproduction whose two independent
performance mechanisms diverge is lying somewhere; this experiment
keeps them honest (and the analytic rows cost microseconds, so it also
demonstrates the fast-sweep API).
"""

from __future__ import annotations

from repro.analysis import predict_rr_latency, predict_stream_throughput
from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.workloads import NetperfTcpStream, NetperfUdpRR

MODES = (DeploymentMode.NOCONT, DeploymentMode.NAT, DeploymentMode.HOSTLO)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    rows = []
    for mode in MODES:
        for size in config.message_sizes:
            tb = default_testbed(seed=config.seed, vms=2)
            scenario = build_scenario(tb, mode)
            forward, reverse = scenario.paths("tcp")
            prediction = predict_stream_throughput(
                tb.engine, forward, scenario.ack_path("tcp"), size,
                window=config.stream_window,
            )
            des = NetperfTcpStream(window=config.stream_window).run(
                scenario, size, duration_s=config.stream_duration_s
            )

            tb_lat = default_testbed(seed=config.seed, vms=2)
            scenario_lat = build_scenario(tb_lat, mode)
            fwd_udp, rev_udp = scenario_lat.paths("udp")
            predicted_rr = predict_rr_latency(
                tb_lat.engine, fwd_udp, rev_udp, size
            )
            des_rr = NetperfUdpRR().run(
                scenario_lat, size, transactions=config.rr_transactions
            )
            rows.append({
                "mode": mode.value,
                "size_B": size,
                "des_mbps": des.throughput_mbps,
                "model_mbps": prediction.throughput_bps / 1e6,
                "thr_agreement": des.throughput_bps / prediction.throughput_bps,
                "des_rr_us": des_rr.latency.mean * 1e6,
                "model_rr_us": predicted_rr * 1e6,
                "bottleneck": prediction.bottleneck_domain,
            })

    worst = min(rows, key=lambda r: r["thr_agreement"])
    return ExperimentResult(
        experiment="analytic_check",
        title="Extension: closed-form model vs discrete-event simulation",
        rows=tuple(rows),
        notes=(
            "throughput agreement (DES/model) worst case: "
            f"{worst['thr_agreement']:.2f} at {worst['mode']} "
            f"@{worst['size_B']}B (DES adds queueing/drain slack)",
        ),
    )

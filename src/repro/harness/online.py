"""Extension experiment: the cost study under online churn.

The paper's fig 9 is offline.  This experiment replays a timed
arrival/departure stream (same pod population) under the online
variants of both schedulers — where cross-VM placement also avoids
*buying* VMs at arrival time and lets consolidation *return* VMs at
departure time.  See :mod:`repro.costsim.online`.
"""

from __future__ import annotations

from repro.costsim.online import OnlineConfig, generate_events, simulate_online
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.traces import TraceConfig


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    users = min(config.trace_users, 100)  # O(V^2) consolidation passes
    events = generate_events(OnlineConfig(
        trace=TraceConfig(users=users, seed=config.seed)
    ))
    outcome = simulate_online(events)
    rows = (
        {
            "scheduler": "kubernetes (whole pods)",
            "cost_dollar_h": outcome.kubernetes_cost,
            "vm_buys": outcome.kubernetes_buys,
            "peak_vms": outcome.kubernetes_peak_vms,
        },
        {
            "scheduler": "hostlo (split + consolidate)",
            "cost_dollar_h": outcome.hostlo_cost,
            "vm_buys": outcome.hostlo_buys,
            "peak_vms": outcome.hostlo_peak_vms,
        },
    )
    return ExperimentResult(
        experiment="online_cost",
        title="Extension: cost under online arrival/departure churn "
              f"({users} users, {len(events)} pod lifetimes)",
        rows=rows,
        notes=(
            f"fleet-wide saving: {outcome.relative_saving:.1%} "
            "(the offline fig 9 setting saves per-user only at the "
            "re-pack step; churn adds avoided buys and early returns)",
            f"split placements used: {outcome.split_placements}",
        ),
    )

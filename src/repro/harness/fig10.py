"""Fig 10 — Hostlo overhead micro-benchmark: intra-pod netperf sweep.

Paper claims at 1024 B: Hostlo throughput is 17.9 % higher than NAT's,
27 % lower than Overlay's, and 5.3× below SameNode's; Hostlo latency is
87.3 % lower than NAT's and 89.8 % lower than Overlay's, stable across
message sizes at roughly twice SameNode's.  Worst case over the sweep:
6.1× lower throughput / 2.1× higher latency than SameNode.
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.micro import ratio, run_sweep
from repro.harness.results import ExperimentResult

MODES = (
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
    DeploymentMode.NAT_CROSS,
)
HEADLINE_SIZE = 1024


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    if HEADLINE_SIZE not in config.message_sizes:
        config = ExperimentConfig(
            **{**config.__dict__,
               "message_sizes": tuple(config.message_sizes) + (HEADLINE_SIZE,)}
        )
    rows = run_sweep(MODES, config)

    worst_thr = max(
        ratio(rows, "throughput_mbps", size, "samenode", "hostlo")
        for size in config.message_sizes
    )
    worst_lat = max(
        ratio(rows, "latency_us", size, "hostlo", "samenode")
        for size in config.message_sizes
    )
    notes = (
        "Hostlo/NAT throughput @1024B: "
        f"{ratio(rows, 'throughput_mbps', HEADLINE_SIZE, 'hostlo', 'nat_cross'):.3f}"
        " (paper ≈ 1.179)",
        "Hostlo/Overlay throughput @1024B: "
        f"{ratio(rows, 'throughput_mbps', HEADLINE_SIZE, 'hostlo', 'overlay'):.3f}"
        " (paper ≈ 0.73)",
        "SameNode/Hostlo throughput @1024B: "
        f"{ratio(rows, 'throughput_mbps', HEADLINE_SIZE, 'samenode', 'hostlo'):.2f}x"
        " (paper ≈ 5.3x)",
        "Hostlo latency vs NAT @1024B: "
        f"{1 - ratio(rows, 'latency_us', HEADLINE_SIZE, 'hostlo', 'nat_cross'):.1%} lower"
        " (paper ≈ 87.3% lower)",
        "Hostlo latency vs Overlay @1024B: "
        f"{1 - ratio(rows, 'latency_us', HEADLINE_SIZE, 'hostlo', 'overlay'):.1%} lower"
        " (paper ≈ 89.8% lower)",
        f"worst case over sweep: {worst_thr:.1f}x lower throughput / "
        f"{worst_lat:.1f}x higher latency than SameNode "
        "(paper: 6.1x / 2.1x)",
    )
    return ExperimentResult(
        experiment="fig10",
        title="Fig 10: Hostlo overhead micro-benchmark (intra-pod netperf)",
        rows=tuple(rows),
        notes=notes,
    )

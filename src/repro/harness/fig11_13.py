"""Figs 11–13 — Hostlo overhead on macro-benchmarks.

* Figs 11/12 (Memcached): Hostlo unexpectedly reaches SameNode's
  throughput/latency levels — SameNode's latency is wildly variable
  (client and server contend for the same vCPUs) while Hostlo's stays
  stable.
* Fig 13 (NGINX): Hostlo ≈ 49.4 % higher latency than SameNode but far
  better than NAT and Overlay; all four show very high variance.
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.macro import latency_row, run_macro
from repro.harness.results import ExperimentResult

MODES = (
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
    DeploymentMode.NAT_CROSS,
)


def _rows(app: str, config: ExperimentConfig):
    rows = []
    for mode in MODES:
        result, _bd, _tb, _sc = run_macro(app, mode, config)
        rows.append(latency_row(app, result))
    return rows


def _lat(rows, mode):
    return next(r["latency_us"] for r in rows if r["mode"] == mode)


def run_fig11_12(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    rows = _rows("memcached", config)
    ratio = _lat(rows, "hostlo") / _lat(rows, "samenode")
    notes = (
        f"Hostlo/SameNode memcached latency: {ratio:.2f}x (paper: ≈1x — "
        "hostlo 'unexpectedly reaches the levels of SameNode')",
        "Hostlo latency variance vs NAT/Overlay: "
        f"{next(r['latency_cv'] for r in rows if r['mode'] == 'hostlo'):.2f}"
        " vs "
        f"{next(r['latency_cv'] for r in rows if r['mode'] == 'nat_cross'):.2f}"
        "/"
        f"{next(r['latency_cv'] for r in rows if r['mode'] == 'overlay'):.2f}"
        " (paper: hostlo reports stable latency)",
    )
    return ExperimentResult(
        experiment="fig11_12",
        title="Figs 11–12: Memcached over Hostlo (throughput & latency)",
        rows=tuple(rows),
        notes=notes,
    )


def run_fig13(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    rows = _rows("nginx", config)
    ratio = _lat(rows, "hostlo") / _lat(rows, "samenode") - 1.0
    notes = (
        f"Hostlo vs SameNode NGINX latency: {ratio:+.1%} "
        "(paper ≈ +49.4%)",
        "Hostlo beats NAT by "
        f"{1 - _lat(rows, 'hostlo') / _lat(rows, 'nat_cross'):.1%}"
        " and Overlay by "
        f"{1 - _lat(rows, 'hostlo') / _lat(rows, 'overlay'):.1%}",
    )
    return ExperimentResult(
        experiment="fig13",
        title="Fig 13: NGINX over Hostlo (latency)",
        rows=tuple(rows),
        notes=notes,
    )

"""Figs 6 & 7 — CPU usage breakdowns under Kafka and NGINX.

Paper claims (fig 6, Kafka): VM CPU usage is ≈ 9.6 % higher than
NoCont's for both NAT and BrFusion, but BrFusion cuts the CPU time the
guest spends serving software interrupts by ≈ 67 % relative to NAT
(NAT rules run in softirq hooks; BrFusion removes them).  Fig 7 (NGINX)
shows the same effect with higher magnitude.
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.macro import cpu_rows, run_macro
from repro.harness.results import ExperimentResult

MODES = (DeploymentMode.NAT, DeploymentMode.BRFUSION, DeploymentMode.NOCONT)


def _run_app(app: str, experiment: str, title: str,
             config: ExperimentConfig) -> ExperimentResult:
    rows = []
    for mode in MODES:
        _result, breakdowns, tb, scenario = run_macro(app, mode, config)
        server_vm = scenario.server_domain
        rows.extend(cpu_rows(app, mode, breakdowns,
                             entities=(server_vm, "host", "client")))

    def soft(mode):
        return next(
            r["soft_cores"] for r in rows
            if r["mode"] == mode and r["entity"].startswith("vm:")
        )

    reduction = 1.0 - soft("brfusion") / soft("nat") if soft("nat") else 0.0
    notes = (
        f"guest softirq CPU, BrFusion vs NAT: {reduction:.1%} lower "
        "(paper ≈ 67% lower for Kafka; NAT's netfilter hooks run in "
        "softirq context and BrFusion removes them)",
    )
    return ExperimentResult(
        experiment=experiment, title=title, rows=tuple(rows), notes=notes
    )


def run_fig06(config: ExperimentConfig | None = None) -> ExperimentResult:
    return _run_app(
        "kafka", "fig06",
        "Fig 6: CPU usage breakdown under Kafka (cores busy, by category)",
        config or ExperimentConfig(),
    )


def run_fig07(config: ExperimentConfig | None = None) -> ExperimentResult:
    return _run_app(
        "nginx", "fig07",
        "Fig 7: CPU usage breakdown under NGINX (cores busy, by category)",
        config or ExperimentConfig(),
    )

"""Chaos — fault injection and recovery under the CNI plugins.

Not a paper figure: the paper's evaluation assumes hot-plugs succeed
and VMs stay up.  This experiment exercises the failure modes the
BrFusion/Hostlo designs must survive in production — QMP hot-plug
refusals, agent stalls, whole-VM crashes — and reports how the
orchestrator's recovery machinery (bounded retry with exponential
backoff, BrFusion→NAT fallback, pod re-scheduling) copes, per plugin.

Three built-in scenarios run by default:

``hotplug``
    Every NIC provisioning has a 55 % chance of being refused by the
    VMM and every agent configure a 25 % chance of stalling (first
    four only).  BrFusion pods must land through retries or fall back
    to NAT; nothing may surface an unhandled :class:`HotplugError`.

``refusal-storm``
    The VMM refuses *every* hot-plug, so retries cannot win and every
    BrFusion pod must degrade to the NAT slow path.

``vm-crash``
    ``vm1`` crashes 10 ms in (rebooting 20 ms later).  Its pods are
    re-scheduled onto the survivors; hostlo pods may re-split.

``--faults PLAN.json`` replaces both with one custom scenario driven
by the given plan (see :meth:`repro.faults.FaultPlan.from_json`).

Everything — fault draws, backoff jitter, placement — comes from named
streams of one seeded registry, so the same seed and plan reproduce
the identical event sequence, recovery log and metrics.
"""

from __future__ import annotations

import typing as t

from repro import faults
from repro.errors import HotplugError, RecoveryExhaustedError, ReproError
from repro.faults import ChaosController, FaultInjector, FaultPlan, FaultSpec
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.health import HealthScope, run_checks
from repro.orchestrator.cluster import Orchestrator
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm

#: VMs per scenario and the §5.1 node sizing.
VMS = 3
VCPUS = 5
MEMORY_GB = 4.0

#: (pod name prefix, count, network, split) — the deployment mix.
#: Sized so the two surviving VMs can absorb a crashed one's pods.
POD_MIX: tuple[tuple[str, int, str, bool], ...] = (
    ("brf", 4, "brfusion", False),
    ("nat", 2, "nat", False),
    ("hlo", 2, "hostlo", True),
)

CRASH_AT_S = 0.010
CRASH_DURATION_S = 0.020
HORIZON_S = 0.050


def hotplug_plan() -> FaultPlan:
    """The built-in hot-plug churn plan."""
    return FaultPlan(
        specs=(
            FaultSpec(kind="hotplug.refuse", target="vm*", probability=0.55),
            FaultSpec(kind="agent.stall", target="vm*", probability=0.25,
                      max_hits=4),
        ),
        description="VMM refuses 55% of hot-plugs; agent stalls early on",
    )


def refusal_storm_plan() -> FaultPlan:
    """Every hot-plug refused: BrFusion must fall back to NAT."""
    return FaultPlan(
        specs=(
            FaultSpec(kind="hotplug.refuse", target="vm*", probability=1.0),
        ),
        description="VMM refuses every hot-plug; retries cannot win",
    )


def crash_plan() -> FaultPlan:
    """The built-in VM-crash plan (crash vm1, reboot after 20 ms)."""
    return FaultPlan(
        specs=(
            FaultSpec(kind="vm.crash", target="vm1", at=CRASH_AT_S,
                      duration=CRASH_DURATION_S),
        ),
        description="vm1 crashes 10ms in and reboots 20ms later",
    )


def _pod(name: str, split: bool, port: int) -> PodSpec:
    if split:
        return PodSpec(name=name, containers=(
            ContainerSpec(name="app", image="alpine", cpu=1.0, memory_gb=0.5,
                          publish=(("tcp", port, 80),)),
            ContainerSpec(name="sidecar", image="alpine", cpu=1.0,
                          memory_gb=0.5),
        ))
    return PodSpec(name=name, containers=(
        ContainerSpec(name="app", image="alpine", cpu=1.0, memory_gb=0.5,
                      publish=(("tcp", port, 80),)),
    ))


def run_scenario(
    scenario: str, plan: FaultPlan, config: ExperimentConfig
) -> tuple[list[dict[str, t.Any]], dict[str, t.Any]]:
    """One chaos run: returns (per-plugin rows, scenario summary)."""
    env = Environment()
    host = PhysicalHost(env, seed=config.seed)
    vmm = Vmm(host)
    orch = Orchestrator(vmm)
    for index in range(VMS):
        orch.enroll(vmm.create_vm(f"vm{index}", vcpus=VCPUS,
                                  memory_gb=MEMORY_GB))

    injector = FaultInjector(plan, host.rng.stream("faults"),
                             now_fn=lambda: env.now)
    requested: dict[str, list[str]] = {}  # plugin -> pod names
    unhandled: dict[str, int] = {}
    exhausted: dict[str, int] = {}
    with faults.use(injector):
        controller = ChaosController(env, vmm, orch=orch, injector=injector)
        controller.start()
        port = 8000
        for prefix, count, network, split in POD_MIX:
            for index in range(count):
                name = f"{scenario}-{prefix}{index}"
                port += 1
                requested.setdefault(network, []).append(name)
                try:
                    orch.deploy_pod(_pod(name, split, port), network=network,
                                    allow_split=split)
                except RecoveryExhaustedError:
                    # Recovery gave up cleanly: retries spent, no
                    # fallback applies.  Reported, distinct from a raw
                    # HotplugError escaping.
                    exhausted[network] = exhausted.get(network, 0) + 1
                except (HotplugError, ReproError):
                    # The acceptance criterion: recovery must make this
                    # unreachable.  Counted, never re-raised.
                    unhandled[network] = unhandled.get(network, 0) + 1
        env.run(until=HORIZON_S)

    rows = []
    for plugin, pods in requested.items():
        log = [e for e in orch.recovery_log if e["pod"] in set(pods)]
        deployed = sum(1 for p in pods if p in orch.deployments)
        rows.append({
            "scenario": scenario,
            "plugin": plugin,
            "pods": len(pods),
            "deployed": deployed,
            "retries": sum(1 for e in log if e["action"] == "retry"),
            "fallbacks": sum(1 for e in log if e["action"] == "fallback"),
            "rescheduled": sum(1 for e in log if e["action"] == "reschedule"),
            "reschedule_failed": sum(
                1 for e in log if e["action"] == "reschedule-failed"),
            "exhausted": exhausted.get(plugin, 0),
            "unhandled": unhandled.get(plugin, 0),
            "recovery_wait_ms": 1e3 * sum(
                e.get("backoff_s", 0.0) for e in log),
            "success_rate": deployed / len(pods) if pods else 1.0,
        })
    summary = {
        "faults_injected": injector.hit_count(),
        "scheduled_executed": len(controller.executed),
        "recovery_actions": len(orch.recovery_log),
        "recovery_log": list(orch.recovery_log),
    }
    if config.health:
        # ``--health``: after the dust settles, the surviving topology
        # must hold every wiring invariant.
        violations = run_checks(HealthScope.of(orchestrators=(orch,)))
        summary["health_violations"] = len(violations)
        summary["health_details"] = [str(v) for v in violations]
    return rows, summary


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    if config.fault_plan:
        scenarios = [("custom", FaultPlan.load(config.fault_plan))]
    else:
        scenarios = [
            ("hotplug", hotplug_plan()),
            ("refusal-storm", refusal_storm_plan()),
            ("vm-crash", crash_plan()),
        ]

    rows: list[dict[str, t.Any]] = []
    notes: list[str] = []
    for scenario, plan in scenarios:
        scenario_rows, summary = run_scenario(scenario, plan, config)
        rows.extend(scenario_rows)
        notes.append(
            f"{scenario}: {summary['faults_injected']} faults injected, "
            f"{summary['scheduled_executed']} scheduled executed, "
            f"{summary['recovery_actions']} recovery actions"
        )
        if "health_violations" in summary:
            notes.append(
                f"{scenario}: health violations "
                f"{summary['health_violations']}"
                + ("".join(f"; {d}" for d in summary["health_details"])
                   if summary["health_violations"] else "")
            )
    total_unhandled = sum(r["unhandled"] for r in rows)
    notes.append(
        f"unhandled attach errors: {total_unhandled} "
        "(recovery must keep this at zero)"
    )
    return ExperimentResult(
        experiment="chaos",
        title="Chaos: fault injection and recovery per CNI plugin",
        rows=tuple(rows),
        notes=tuple(notes),
    )

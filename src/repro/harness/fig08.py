"""Fig 8 — container start-up time, Docker NAT vs BrFusion.

Start-up time = from ordering the engine to create the container until
the containerized application sends its first TCP message (§5.2.4).
Paper: over 100 runs, ~75 % of quantiles are slightly better with
BrFusion (it skips iptables programming; its hot-plug tail is heavier).
"""

from __future__ import annotations

import numpy as np

from repro.containers import ContainerEngine
from repro.containers.boot import BootTimer
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.metrics.stats import Cdf
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm

QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()

    def measure(network_mode: str) -> list[float]:
        env = Environment()
        host = PhysicalHost(env, seed=config.seed)
        vmm = Vmm(host)
        vm = vmm.create_vm("vm1")
        engine = ContainerEngine(vm)
        timer = BootTimer(env, vmm)

        def runs():
            for index in range(config.boot_runs):
                name = f"c{index}"
                if network_mode == "bridge":
                    yield env.process(timer.boot_nat(engine, name, "alpine"))
                else:
                    yield env.process(
                        timer.boot_brfusion(engine, name, "alpine")
                    )
                engine.remove_container(name)

        env.process(runs())
        env.run()
        return timer.totals(network_mode)

    nat_times = measure("bridge")
    brf_times = measure("provided-nic")
    nat_cdf = Cdf.from_samples(nat_times)
    brf_cdf = Cdf.from_samples(brf_times)

    rows = []
    for quantile in QUANTILES:
        nat_q = nat_cdf.quantile(quantile)
        brf_q = brf_cdf.quantile(quantile)
        rows.append({
            "quantile": f"p{int(quantile * 100)}",
            "nat_ms": nat_q * 1e3,
            "brfusion_ms": brf_q * 1e3,
            "brfusion_better": brf_q < nat_q,
        })
    rows.append({
        "quantile": "mean",
        "nat_ms": float(np.mean(nat_times)) * 1e3,
        "brfusion_ms": float(np.mean(brf_times)) * 1e3,
        "brfusion_better": float(np.mean(brf_times)) < float(np.mean(nat_times)),
    })

    better = sum(1 for r in rows[:-1] if r["brfusion_better"])
    notes = (
        f"BrFusion better at {better}/{len(QUANTILES)} quantiles "
        "(paper: ~75% of start-up times slightly better with BrFusion)",
        f"{config.boot_runs} runs per mode; BrFusion skips iptables but "
        "pays the QMP hot-plug + PCI probe tail",
    )
    return ExperimentResult(
        experiment="fig08",
        title="Fig 8: container start-up time, Docker NAT vs BrFusion",
        rows=tuple(rows),
        notes=notes,
    )

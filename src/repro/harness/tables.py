"""Tables 1 and 2 — configuration tables, reproduced as experiments."""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.traces.aws import M5_CATALOG


def run_table01(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Table 1: macro-benchmark parameters and metrics (as configured)."""
    config = config or ExperimentConfig()
    rows = (
        {
            "application": "Memcached",
            "benchmark": "memtier_benchmark",
            "parameters": f"{config.memtier_threads} threads, "
                          f"{config.memtier_connections_per_thread} con./thread, "
                          "SET:GET=1:10",
            "metrics": "Responses/s, latency",
        },
        {
            "application": "NGINX",
            "benchmark": "wrk2",
            "parameters": f"{config.wrk2_connections} con. total, "
                          f"{config.wrk2_rate_per_s:.0f} req./s on 1kB file",
            "metrics": "Latency",
        },
        {
            "application": "Kafka",
            "benchmark": "kafka-producer-perf-test.sh",
            "parameters": "120000 msg/s, 100B messages, batch size 8192B",
            "metrics": "Latency",
        },
    )
    return ExperimentResult(
        experiment="table01",
        title="Table 1: macro-benchmarks — parameters and metrics",
        rows=rows,
    )


def run_table02(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Table 2: the AWS EC2 m5 models used by the cost simulation."""
    del config
    rows = tuple(
        {
            "model": m.name,
            "vCPU": m.vcpus,
            "memory_GB": m.memory_gb,
            "vCPU_rel": round(m.cpu_rel, 4),
            "memory_rel": round(m.memory_rel, 4),
            "price_per_h": m.price_per_h,
        }
        for m in M5_CATALOG
    )
    return ExperimentResult(
        experiment="table02",
        title="Table 2: AWS EC2 m5 on-demand models",
        rows=rows,
    )

"""Shared netperf sweep runner for the micro-benchmark figures."""

from __future__ import annotations

import typing as t

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.harness.config import ExperimentConfig
from repro.workloads import NetperfTcpStream, NetperfUdpRR

Row = dict[str, t.Any]


def run_point(
    mode: DeploymentMode, size: int, config: ExperimentConfig
) -> Row:
    """One (mode, message size) measurement on fresh testbeds.

    Each configuration runs on its own testbed, exactly as the paper
    tears down and redeploys between runs — no cross-talk between
    modes.
    """
    tb = default_testbed(seed=config.seed, vms=2)
    scenario = build_scenario(tb, mode)
    stream = NetperfTcpStream(window=config.stream_window).run(
        scenario, size, duration_s=config.stream_duration_s
    )

    tb_lat = default_testbed(seed=config.seed, vms=2)
    scenario_lat = build_scenario(tb_lat, mode)
    rr = NetperfUdpRR().run(
        scenario_lat, size, transactions=config.rr_transactions
    )
    stats = rr.latency
    return {
        "mode": mode.value,
        "size_B": size,
        "throughput_mbps": stream.throughput_mbps,
        "latency_us": stats.mean * 1e6,
        "latency_std_us": stats.std * 1e6,
        "latency_cv": stats.cv,
    }


def run_sweep(
    modes: t.Sequence[DeploymentMode], config: ExperimentConfig
) -> list[Row]:
    rows = []
    for size in config.message_sizes:
        for mode in modes:
            rows.append(run_point(mode, size, config))
    return rows


def ratio(rows: t.Sequence[Row], column: str, size: int,
          numerator: str, denominator: str) -> float:
    """Ratio of *column* between two modes at one message size."""
    def pick(mode: str) -> float:
        for row in rows:
            if row["mode"] == mode and row["size_B"] == size:
                return float(row[column])
        raise KeyError(f"no row for {mode} @ {size}B")

    return pick(numerator) / pick(denominator)

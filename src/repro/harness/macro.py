"""Shared macro-benchmark runner (Memcached, NGINX, Kafka).

Builds a fresh testbed per (application, mode) pair, runs the table 1
workload, and optionally collects the usr/sys/soft/guest CPU breakdowns
over the measurement window for the CPU figures.
"""

from __future__ import annotations

import typing as t

from repro.core import DeploymentMode, Scenario, build_scenario
from repro.core.testbed import Testbed, default_testbed
from repro.errors import ConfigurationError
from repro.harness.config import ExperimentConfig
from repro.metrics.cpu import CpuBreakdown
from repro.workloads import KafkaProducerPerf, MemtierBenchmark, Wrk2Benchmark
from repro.workloads.base import WorkloadResult

#: Application image + canonical port per macro-benchmark.
APPS = {
    "memcached": ("memcached", 11211),
    "nginx": ("nginx", 80),
    "kafka": ("kafka", 9092),
}


def build_workload(app: str, config: ExperimentConfig):
    if app == "memcached":
        return MemtierBenchmark(
            threads=config.memtier_threads,
            connections_per_thread=config.memtier_connections_per_thread,
        )
    if app == "nginx":
        return Wrk2Benchmark(
            connections=config.wrk2_connections,
            rate_per_s=config.wrk2_rate_per_s,
        )
    if app == "kafka":
        return KafkaProducerPerf()
    raise ConfigurationError(f"unknown macro app {app!r}")


def run_macro(
    app: str,
    mode: DeploymentMode,
    config: ExperimentConfig,
) -> tuple[WorkloadResult, dict[str, CpuBreakdown], Testbed, Scenario]:
    """One macro run; returns (result, breakdowns, testbed, scenario)."""
    if app not in APPS:
        raise ConfigurationError(f"unknown macro app {app!r}")
    image, port = APPS[app]
    # "By nature, the SameNode setup features only one VM, whereas
    # Hostlo, NAT and Overlay include two VMs" (§5.3.4) — idle-guest
    # load must not be double-billed to single-VM configurations.
    single_vm_modes = (
        DeploymentMode.SAMENODE, DeploymentMode.NAT,
        DeploymentMode.BRFUSION, DeploymentMode.NOCONT,
    )
    tb = default_testbed(
        seed=config.seed, vms=1 if mode in single_vm_modes else 2
    )
    scenario = build_scenario(tb, mode, image=image, port=port)
    workload = build_workload(app, config)
    tb.reset_accounting()
    result = workload.run(scenario, duration_s=config.macro_duration_s)
    return result, tb.breakdowns(), tb, scenario


def latency_row(app: str, result: WorkloadResult) -> dict[str, t.Any]:
    stats = result.latency
    return {
        "app": app,
        "mode": result.mode,
        "rate_per_s": result.rate_per_s,
        "latency_us": stats.mean * 1e6,
        "latency_std_us": stats.std * 1e6,
        "latency_cv": stats.cv,
        "p99_us": stats.p99 * 1e6,
    }


def cpu_rows(
    app: str,
    mode: DeploymentMode,
    breakdowns: dict[str, CpuBreakdown],
    entities: t.Sequence[str],
) -> list[dict[str, t.Any]]:
    rows = []
    for entity in entities:
        bd = breakdowns[entity]
        rows.append({
            "app": app,
            "mode": mode.value,
            "entity": entity,
            "usr_cores": _per_window(bd, bd.usr),
            "sys_cores": _per_window(bd, bd.sys),
            "soft_cores": _per_window(bd, bd.soft),
            "guest_cores": _per_window(bd, bd.guest),
            "total_cores": bd.cores_used(),
        })
    return rows


def _per_window(bd: CpuBreakdown, seconds: float) -> float:
    """Busy seconds expressed as average cores over the window."""
    if bd.window_s <= 0:
        return 0.0
    return seconds / bd.window_s

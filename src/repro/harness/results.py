"""Experiment results: rows plus text/JSON/CSV renderings."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import typing as t

from repro.errors import ConfigurationError

Row = dict[str, t.Any]


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """Rows for one figure/table, ready to print or assert on.

    ``meta`` holds run metadata that is *about* the run rather than
    part of it — wall-clock seconds, the config fingerprint, the
    campaign job key.  It is rendered and serialised but deliberately
    kept out of ``rows`` so that repeated runs of the same experiment
    produce bit-identical rows (the campaign cache depends on that).
    """

    experiment: str
    title: str
    rows: tuple[Row, ...]
    notes: tuple[str, ...] = ()
    meta: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.rows:
            raise ConfigurationError(f"{self.experiment}: no rows produced")

    def columns(self) -> list[str]:
        cols: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols.setdefault(key, None)
        return list(cols)

    def select(self, **filters: t.Any) -> list[Row]:
        """Rows matching all equality filters."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in filters.items()):
                out.append(row)
        return out

    def value(self, column: str, **filters: t.Any) -> t.Any:
        """The single value of *column* in the unique matching row."""
        rows = self.select(**filters)
        if len(rows) != 1:
            raise ConfigurationError(
                f"{self.experiment}: {filters} matched {len(rows)} rows"
            )
        return rows[0][column]

    def render(self) -> str:
        """An aligned plain-text table with title and notes."""
        cols = self.columns()
        header = [str(c) for c in cols]
        body = [[_fmt(row.get(c)) for c in cols] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body))
            for i in range(len(cols))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.meta:
            pairs = "  ".join(
                f"{k}={_fmt(self.meta[k])}" for k in sorted(self.meta)
            )
            lines.append(f"meta: {pairs}")
        return "\n".join(lines)

    def with_meta(self, **entries: t.Any) -> "ExperimentResult":
        """A copy with *entries* merged into ``meta``."""
        return dataclasses.replace(self, meta={**self.meta, **entries})

    def to_json(self) -> str:
        """A machine-readable dump (experiment, title, rows, notes, meta)."""
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "rows": list(self.rows),
                "notes": list(self.notes),
                "meta": self.meta,
            },
            indent=2,
            default=str,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output.

        The round trip is exact for JSON-native row values (str, int,
        float, bool, None) — which is all any registered experiment
        produces — so a result that went through the campaign cache
        compares equal, row for row, to the freshly computed one.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed result JSON: {exc}") from None
        try:
            return cls(
                experiment=data["experiment"],
                title=data["title"],
                rows=tuple(dict(row) for row in data["rows"]),
                notes=tuple(data.get("notes", ())),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"result JSON missing fields: {exc}"
            ) from None

    def to_csv(self) -> str:
        """The rows as CSV (notes are not included)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns())
        writer.writeheader()
        for row in self.rows:
            writer.writerow({k: row.get(k, "") for k in self.columns()})
        return buffer.getvalue()


def _fmt(value: t.Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)

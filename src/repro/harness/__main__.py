"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                    # run everything (default preset)
    python -m repro.harness fig04 fig09        # run a subset
    python -m repro.harness --preset quick     # fast pass
    python -m repro.harness --list             # experiment ids + descriptions
    python -m repro.harness fig09 --json out/  # also write out/fig09.json
    python -m repro.harness fig04 --csv out/   # also write out/fig04.csv
    python -m repro.harness fig04 --trace out/ # Perfetto trace + span dump
    python -m repro.harness reliability --pcap out/ --flows
    python -m repro.harness chaos --faults examples/faults_plan.json

Campaign mode (parallel workers + content-addressed result cache)::

    python -m repro.harness --jobs 4 --cache .cache/campaign
    python -m repro.harness fig04 fig08 --preset quick --jobs 2 \\
        --cache .cache --bench BENCH_campaign.json
    python -m repro.harness --jobs 4 --cache .cache \\
        --bench out.json --bench-baseline BENCH_campaign.json

Any of ``--jobs N`` (N>1), ``--cache`` or ``--bench`` switches the run
from the serial loop to :func:`repro.campaign.runner.run_campaign`;
results are printed in the same order and are bit-identical to the
serial path.

Service mode (long-lived HTTP/SSE job service, see ``repro.service``)::

    python -m repro.harness --serve --port 8700 --cache .cache
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time

from repro.harness.config import ExperimentConfig
from repro.harness.registry import (
    EXPERIMENTS,
    describe,
    run_experiment,
    run_experiment_captured,
    run_experiment_traced,
)
from repro.harness.results import ExperimentResult


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's evaluation figures/tables.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="ids to run (default: all; see --list)")
    parser.add_argument("--preset", default="default",
                        choices=("quick", "default", "full"))
    parser.add_argument("--list", action="store_true",
                        help="print available experiment ids and exit")
    parser.add_argument("--json", metavar="DIR",
                        help="also write <DIR>/<experiment>.json per result")
    parser.add_argument("--csv", metavar="DIR",
                        help="also write <DIR>/<experiment>.csv per result")
    parser.add_argument("--trace", metavar="DIR",
                        help="trace the run; write <DIR>/<experiment>"
                             ".trace.json (Chrome/Perfetto), .spans.jsonl "
                             "and .metrics.txt (campaign mode merges all "
                             "workers into <DIR>/campaign.*)")
    parser.add_argument("--pcap", metavar="DIR",
                        help="capture the run's frames; write <DIR>/"
                             "<experiment>.pcapng (opens in Wireshark) "
                             "plus the --trace artifacts")
    parser.add_argument("--flows", action="store_true",
                        help="account per-flow statistics; print the "
                             "top-flows table (with --pcap or --trace, "
                             "also write <DIR>/<experiment>.flows.txt)")
    parser.add_argument("--filter", metavar="EXPR",
                        help="BPF-lite capture filter for --pcap/--flows "
                             "(e.g. \"host 10.0.0.8 and proto udp\")")
    parser.add_argument("--faults", metavar="PLAN.json",
                        help="fault plan for the chaos/reliability "
                             "experiments (replaces their built-in "
                             "scenarios)")
    parser.add_argument("--backend", metavar="NAME",
                        help="netstack experiment: sweep only this "
                             "network-stack backend (default: all "
                             "registered backends; unknown names list "
                             "the registry)")
    parser.add_argument("--reliable", action="store_true",
                        help="reliability experiment: run only the ARQ "
                             "lane (skip the raw fail-silent baseline)")
    parser.add_argument("--health", action="store_true",
                        help="audit topology invariants after supporting "
                             "experiments and report violation counts")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; N>1 runs the campaign "
                             "path (default: 1, serial)")
    parser.add_argument("--cache", metavar="DIR",
                        help="content-addressed result cache directory "
                             "(enables campaign mode)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache: neither read nor write it")
    parser.add_argument("--bench", metavar="OUT.json",
                        help="write the campaign benchmark report "
                             "(enables campaign mode)")
    parser.add_argument("--bench-baseline", metavar="BASE.json",
                        help="fail (exit 1) on perf regression against "
                             "this committed bench report")
    parser.add_argument("--seeds", metavar="S1,S2,...",
                        help="run every experiment under each seed "
                             "(campaign mode; default: the preset's seed)")
    parser.add_argument("--serve", action="store_true",
                        help="boot the long-lived job service instead of "
                             "running experiments (see repro.service; "
                             "--cache shares its result cache)")
    parser.add_argument("--port", type=int, default=8700, metavar="N",
                        help="--serve listen port (default: 8700; "
                             "0 picks a free one)")
    args = parser.parse_args(argv)

    if args.serve:
        if args.experiments or args.jobs > 1 or args.bench or args.seeds:
            parser.error("--serve takes no experiments and no campaign "
                         "flags (it accepts jobs over HTTP instead)")
        from repro.service.__main__ import main as serve_main

        serve_argv = ["--port", str(args.port)]
        if args.cache and not args.no_cache:
            serve_argv += ["--cache", args.cache]
        return serve_main(serve_argv)

    if args.list:
        width = max(map(len, EXPERIMENTS))
        for experiment in sorted(EXPERIMENTS):
            print(f"{experiment.ljust(width)}  {describe(experiment)}")
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    ids = args.experiments or sorted(EXPERIMENTS)
    campaign_mode = (args.jobs > 1 or args.cache or args.bench
                     or args.bench_baseline or args.seeds)
    if campaign_mode:
        if args.pcap or args.flows:
            parser.error("--pcap/--flows run serially (drop the campaign "
                         "flags: --jobs/--cache/--bench/--seeds)")
        if args.backend:
            parser.error("--backend runs serially (drop the campaign "
                         "flags: --jobs/--cache/--bench/--seeds)")
        return _campaign_main(args, ids)

    config = ExperimentConfig.preset(args.preset)
    if args.faults:
        config = dataclasses.replace(config, fault_plan=args.faults)
    if args.backend:
        # replace() re-runs __post_init__, so an unknown name fails
        # here with the registry's name-listing ConfigurationError.
        config = dataclasses.replace(config, netstack_backend=args.backend)
    if args.reliable or args.health:
        config = dataclasses.replace(config, reliable=args.reliable,
                                     health=args.health)
    for experiment in ids:
        start = time.perf_counter()
        captured = None
        if args.pcap or args.flows:
            result, artifacts, captured = run_experiment_captured(
                experiment, config,
                trace_dir=args.pcap or args.trace or "out",
                pcap=bool(args.pcap), flows=args.flows,
                filter=args.filter,
            )
        elif args.trace:
            result, artifacts = run_experiment_traced(
                experiment, config, trace_dir=args.trace
            )
        else:
            result, artifacts = run_experiment(experiment, config), None
        elapsed = time.perf_counter() - start
        result = result.with_meta(
            wall_s=round(elapsed, 6), config_fingerprint=config.fingerprint()
        )
        print(result.render())
        if artifacts is not None:
            print(artifacts.summary)
            print(f"[trace: {artifacts.chrome_path} "
                  f"({artifacts.span_count} spans, "
                  f"{artifacts.event_count} events) — open in "
                  f"https://ui.perfetto.dev]")
        if captured is not None:
            if args.flows:
                print(captured.top_flows)
            if captured.pcap_path is not None:
                print(f"[pcap: {captured.pcap_path} "
                      f"({captured.packet_count} packets on "
                      f"{captured.point_count} taps, "
                      f"{captured.flow_count} flows) — open in Wireshark]")
        print(f"[{experiment} finished in {elapsed:.1f}s]\n")
        _write_exports(result, args)
    return 0


def _campaign_main(args: argparse.Namespace, ids: list[str]) -> int:
    from repro.campaign import bench
    from repro.campaign.cache import ResultCache
    from repro.campaign.runner import run_campaign
    from repro.campaign.spec import CampaignSpec

    seeds: tuple[int, ...] = ()
    if args.seeds:
        seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    spec = CampaignSpec(
        experiments=tuple(ids),
        presets=(args.preset,),
        seeds=seeds,
        fault_plan=args.faults,
    )
    cache = None
    if args.cache and not args.no_cache:
        cache = ResultCache(args.cache)
    report = run_campaign(
        spec,
        jobs=args.jobs,
        cache=cache,
        trace_dir=args.trace,
        progress=print,
    )
    print()
    multi_seed = len(seeds) > 1
    for outcome in report.outcomes:
        print(outcome.result.render())
        source = "cache" if outcome.cache_hit else f"{outcome.wall_s:.1f}s"
        print(f"[{outcome.job.key}: {source}]\n")
        name = outcome.job.experiment
        if multi_seed:
            name = f"{name}-s{outcome.job.seed}"
        _write_exports(outcome.result, args, name)
    print(f"[campaign: {len(report.outcomes)} jobs, "
          f"{report.cache_hits} cache hits, {report.workers} workers, "
          f"{report.wall_s:.1f}s wall "
          f"(serial cost {report.serial_wall_s:.1f}s)]")
    if report.trace_files:
        print(f"[trace: {report.trace_files[0]} — open in "
              f"https://ui.perfetto.dev]")

    bench_report = bench.build_report(report)
    if args.bench:
        path = bench.write_report(bench_report, args.bench)
        print(f"[bench report: {path}]")
    if args.bench_baseline:
        baseline = bench.load_report(args.bench_baseline)
        violations = bench.compare(bench_report, baseline)
        if violations:
            print(f"PERF REGRESSION vs {args.bench_baseline}:",
                  file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print(f"[perf gate: no regression vs {args.bench_baseline}]")
    return 0


def _write_exports(result: ExperimentResult, args: argparse.Namespace,
                   name: str | None = None) -> None:
    name = name or result.experiment
    if args.json:
        path = pathlib.Path(args.json)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"{name}.json").write_text(result.to_json())
    if args.csv:
        path = pathlib.Path(args.csv)
        path.mkdir(parents=True, exist_ok=True)
        (path / f"{name}.csv").write_text(result.to_csv())


if __name__ == "__main__":
    sys.exit(main())

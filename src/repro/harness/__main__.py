"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness                    # run everything (default preset)
    python -m repro.harness fig04 fig09        # run a subset
    python -m repro.harness --preset quick     # fast pass
    python -m repro.harness --list             # available experiment ids
    python -m repro.harness fig09 --json out/  # also write out/fig09.json
    python -m repro.harness fig04 --csv out/   # also write out/fig04.csv
    python -m repro.harness fig04 --trace out/ # Perfetto trace + span dump
    python -m repro.harness chaos --faults examples/faults_plan.json
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time

from repro.harness.config import ExperimentConfig
from repro.harness.registry import (
    EXPERIMENTS,
    run_experiment,
    run_experiment_traced,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's evaluation figures/tables.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="ids to run (default: all; see --list)")
    parser.add_argument("--preset", default="default",
                        choices=("quick", "default", "full"))
    parser.add_argument("--list", action="store_true",
                        help="print available experiment ids and exit")
    parser.add_argument("--json", metavar="DIR",
                        help="also write <DIR>/<experiment>.json per result")
    parser.add_argument("--csv", metavar="DIR",
                        help="also write <DIR>/<experiment>.csv per result")
    parser.add_argument("--trace", metavar="DIR",
                        help="trace the run; write <DIR>/<experiment>"
                             ".trace.json (Chrome/Perfetto), .spans.jsonl "
                             "and .metrics.txt")
    parser.add_argument("--faults", metavar="PLAN.json",
                        help="fault plan for the chaos experiment "
                             "(replaces its built-in scenarios)")
    args = parser.parse_args(argv)

    if args.list:
        for experiment in sorted(EXPERIMENTS):
            print(experiment)
        return 0

    config = ExperimentConfig.preset(args.preset)
    if args.faults:
        config = dataclasses.replace(config, fault_plan=args.faults)
    ids = args.experiments or sorted(EXPERIMENTS)
    for experiment in ids:
        start = time.perf_counter()
        if args.trace:
            result, artifacts = run_experiment_traced(
                experiment, config, trace_dir=args.trace
            )
        else:
            result, artifacts = run_experiment(experiment, config), None
        elapsed = time.perf_counter() - start
        print(result.render())
        if artifacts is not None:
            print(artifacts.summary)
            print(f"[trace: {artifacts.chrome_path} "
                  f"({artifacts.span_count} spans, "
                  f"{artifacts.event_count} events) — open in "
                  f"https://ui.perfetto.dev]")
        print(f"[{experiment} finished in {elapsed:.1f}s]\n")
        if args.json:
            path = pathlib.Path(args.json)
            path.mkdir(parents=True, exist_ok=True)
            (path / f"{experiment}.json").write_text(result.to_json())
        if args.csv:
            path = pathlib.Path(args.csv)
            path.mkdir(parents=True, exist_ok=True)
            (path / f"{experiment}.csv").write_text(result.to_csv())
    return 0


if __name__ == "__main__":
    sys.exit(main())

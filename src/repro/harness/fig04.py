"""Fig 4 — BrFusion micro-benchmark: netperf over message sizes.

Paper claims at 1280 B: BrFusion throughput ≈ 2.1× NAT, latency 18.4 %
lower than NAT, and within 3.5 % of NoCont; NAT scales more slowly with
message size and stagnates past the MTU.
"""

from __future__ import annotations

from repro.core import DeploymentMode
from repro.harness.config import ExperimentConfig
from repro.harness.micro import ratio, run_sweep
from repro.harness.results import ExperimentResult

MODES = (DeploymentMode.NAT, DeploymentMode.BRFUSION, DeploymentMode.NOCONT)
HEADLINE_SIZE = 1280


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    config = config or ExperimentConfig()
    if HEADLINE_SIZE not in config.message_sizes:
        config = ExperimentConfig(
            **{**config.__dict__,
               "message_sizes": tuple(config.message_sizes) + (HEADLINE_SIZE,)}
        )
    rows = run_sweep(MODES, config)
    notes = (
        "BrFusion/NAT throughput @1280B: "
        f"{ratio(rows, 'throughput_mbps', HEADLINE_SIZE, 'brfusion', 'nat'):.2f}x"
        " (paper ≈ 2.1x; fig 2's -68% implies ≈ 3.1x)",
        "BrFusion/NoCont throughput @1280B: "
        f"{ratio(rows, 'throughput_mbps', HEADLINE_SIZE, 'brfusion', 'nocont'):.3f}"
        " (paper ≥ 0.965)",
        "BrFusion/NAT latency @1280B: "
        f"{ratio(rows, 'latency_us', HEADLINE_SIZE, 'brfusion', 'nat'):.3f}"
        " (paper ≈ 0.816)",
    )
    return ExperimentResult(
        experiment="fig04",
        title="Fig 4: BrFusion micro-benchmark (netperf TCP_STREAM + UDP_RR)",
        rows=tuple(rows),
        notes=notes,
    )

"""Closed-form performance analysis, cross-validated against the DES.

The discrete-event engine *simulates* contention; this package
*predicts* it: per-CPU-domain busy time per message gives each domain a
service rate, the slowest domain bounds throughput, and the pipeline
latency bounds what a fixed window can keep in flight.  Validation
tests assert the simulator lands near the prediction for every
deployment mode — a strong internal-consistency check, and a fast way
to sweep parameters without running events.
"""

from repro.analysis.model import (
    StreamPrediction,
    predict_rr_latency,
    predict_stream_throughput,
    sweep_message_sizes,
)

__all__ = [
    "StreamPrediction",
    "predict_rr_latency",
    "predict_stream_throughput",
    "sweep_message_sizes",
]

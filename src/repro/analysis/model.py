"""The analytic throughput/latency model."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.net.path import Datapath
from repro.net.transfer import TransferEngine

#: Mirrors the TCP ACK cadence of the netperf stream workload.
ACK_EVERY = 2
ACK_BYTES = 64


def _domain_seconds(
    engine: TransferEngine,
    path: Datapath,
    nbytes: int,
    stream: bool,
    weight: float = 1.0,
    into: dict[str, float] | None = None,
) -> dict[str, float]:
    """Busy seconds per CPU domain for one message on *path*."""
    busy = into if into is not None else {}
    segments = path.segments_for(nbytes)
    for stage in path.stages:
        cost = engine.cost_model[stage.stage]
        packets = 1 if cost.per_message else segments
        cycles = cost.cycles(packets, nbytes, batched=stream) * stage.multiplier
        pool = engine.cpu(stage.domain)
        busy[stage.domain] = busy.get(stage.domain, 0.0) + (
            weight * cycles / pool.freq_hz
        )
    return busy


def pipeline_latency(engine: TransferEngine, path: Datapath,
                     nbytes: int, stream: bool) -> float:
    """Uncontended time for one message to traverse the whole path."""
    segments = path.segments_for(nbytes)
    total = 0.0
    for stage in path.stages:
        cost = engine.cost_model[stage.stage]
        packets = 1 if cost.per_message else segments
        cycles = cost.cycles(packets, nbytes, batched=stream) * stage.multiplier
        pool = engine.cpu(stage.domain)
        total += cycles / pool.freq_hz
        wakeup = cost.wakeup_s
        if stream and cost.batch_factor > 1.0:
            wakeup = wakeup / cost.batch_factor
        total += wakeup
    return total


@dataclasses.dataclass(frozen=True)
class StreamPrediction:
    """Predicted streaming behaviour of one flow."""

    throughput_bps: float
    bottleneck_domain: str
    bottleneck_rate_msgs: float
    window_rate_msgs: float
    pipeline_latency_s: float

    @property
    def window_bound(self) -> bool:
        """True when the window, not a CPU, limits the flow."""
        return self.window_rate_msgs < self.bottleneck_rate_msgs


def predict_stream_throughput(
    engine: TransferEngine,
    forward: Datapath,
    ack_path: Datapath | None,
    nbytes: int,
    window: int = 128,
) -> StreamPrediction:
    """Closed-form throughput of a windowed stream on *forward*.

    Each CPU domain serves ``cores / busy_seconds_per_message``
    messages per second; the slowest domain is the bottleneck; a
    *window* of in-flight messages over the pipeline latency caps the
    rate from above as well.
    """
    busy = _domain_seconds(engine, forward, nbytes, stream=True)
    if ack_path is not None:
        _domain_seconds(engine, ack_path, ACK_BYTES, stream=True,
                        weight=1.0 / ACK_EVERY, into=busy)

    bottleneck_domain = "none"
    bottleneck_rate = float("inf")
    for domain, seconds in busy.items():
        if seconds <= 0:
            continue
        rate = engine.cpu(domain).cores / seconds
        if rate < bottleneck_rate:
            bottleneck_domain, bottleneck_rate = domain, rate

    latency = pipeline_latency(engine, forward, nbytes, stream=True)
    window_rate = window / latency if latency > 0 else float("inf")
    rate = min(bottleneck_rate, window_rate)
    return StreamPrediction(
        throughput_bps=rate * nbytes * 8,
        bottleneck_domain=bottleneck_domain,
        bottleneck_rate_msgs=bottleneck_rate,
        window_rate_msgs=window_rate,
        pipeline_latency_s=latency,
    )


def predict_rr_latency(
    engine: TransferEngine,
    forward: Datapath,
    reverse: Datapath,
    nbytes: int,
) -> float:
    """Closed-form round-trip latency of one synchronous transaction."""
    return (
        pipeline_latency(engine, forward, nbytes, stream=False)
        + pipeline_latency(engine, reverse, nbytes, stream=False)
    )


def sweep_message_sizes(
    engine: TransferEngine,
    forward: Datapath,
    reverse: Datapath,
    ack_path: Datapath | None,
    sizes: t.Sequence[int],
    window: int = 128,
) -> list[dict[str, float | str]]:
    """Instant (no-DES) sweep: one row per message size."""
    rows: list[dict[str, float | str]] = []
    for size in sizes:
        stream = predict_stream_throughput(
            engine, forward, ack_path, size, window=window
        )
        rows.append({
            "size_B": float(size),
            "throughput_mbps": stream.throughput_bps / 1e6,
            "bottleneck": stream.bottleneck_domain,
            "rr_latency_us": predict_rr_latency(
                engine, forward, reverse, size
            ) * 1e6,
        })
    return rows

"""Measurement utilities: latency/throughput statistics and the
usr/sys/soft/guest CPU breakdowns the paper's figures report."""

from repro.metrics.cpu import CpuBreakdown, collect_breakdowns
from repro.metrics.stats import SampleStats, Cdf

__all__ = ["Cdf", "CpuBreakdown", "SampleStats", "collect_breakdowns"]

"""CPU-time breakdowns in the paper's categories.

§5.1 defines the categories: ``usr`` (software work), ``sys`` (kernel
work excluding interrupts), ``soft`` (kernel serving software
interrupts) and ``guest`` (host CPU time given to a guest VM).  Guest
vCPU pools accumulate usr/sys/soft directly; the host's ``guest``
category is the sum of all vCPU busy time, and vhost/QMP work lands in
the host's ``sys`` — exactly the attribution question §5.3.4 discusses.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.sim import CpuResource


@dataclasses.dataclass(frozen=True)
class CpuBreakdown:
    """Busy seconds per accounting category over a measurement window."""

    usr: float = 0.0
    sys: float = 0.0
    soft: float = 0.0
    guest: float = 0.0
    window_s: float = 0.0
    cores: int = 1

    @property
    def total(self) -> float:
        return self.usr + self.sys + self.soft + self.guest

    @property
    def kernel(self) -> float:
        """Kernel work including softirqs (sys + soft)."""
        return self.sys + self.soft

    def cores_used(self) -> float:
        """Average cores kept busy over the window."""
        if self.window_s <= 0:
            return 0.0
        return self.total / self.window_s

    def share(self, category: str) -> float:
        """Fraction of busy time in *category*."""
        value = getattr(self, category)
        return value / self.total if self.total else 0.0

    def scaled(self, factor: float) -> "CpuBreakdown":
        return CpuBreakdown(
            usr=self.usr * factor,
            sys=self.sys * factor,
            soft=self.soft * factor,
            guest=self.guest * factor,
            window_s=self.window_s,
            cores=self.cores,
        )


def breakdown_of(cpu: CpuResource, window_s: float,
                 guest_seconds: float = 0.0) -> CpuBreakdown:
    """Read one CPU pool's accounts into a :class:`CpuBreakdown`."""
    accounts = cpu.breakdown()
    return CpuBreakdown(
        usr=accounts.get("usr", 0.0),
        sys=accounts.get("sys", 0.0),
        soft=accounts.get("soft", 0.0),
        guest=guest_seconds,
        window_s=window_s,
        cores=cpu.cores,
    )


def collect_breakdowns(
    host_cpu: CpuResource,
    vm_cpus: t.Mapping[str, CpuResource],
    window_s: float,
    extra: t.Mapping[str, CpuResource] | None = None,
    host_extra_sys: float = 0.0,
    vm_soft_extra: t.Mapping[str, float] | None = None,
) -> dict[str, CpuBreakdown]:
    """Breakdowns for the host, each VM and any extra pools (client).

    The host's ``guest`` category is the summed busy time of all vCPU
    pools, mirroring how the host kernel accounts vCPU thread time.
    ``host_extra_sys`` adds kernel-thread time (vhost workers, the
    hostlo handler) into the host's ``sys`` share; ``vm_soft_extra``
    adds each guest's RX softirq-context time to its ``soft`` share
    (and to the host's ``guest`` total — softirq cycles run on a vCPU).
    """
    result: dict[str, CpuBreakdown] = {}
    guest_total = 0.0
    for name, cpu in vm_cpus.items():
        bd = breakdown_of(cpu, window_s)
        soft_extra = (vm_soft_extra or {}).get(name, 0.0)
        if soft_extra:
            bd = CpuBreakdown(
                usr=bd.usr, sys=bd.sys, soft=bd.soft + soft_extra,
                guest=bd.guest, window_s=bd.window_s, cores=bd.cores,
            )
        result[name] = bd
        guest_total += cpu.busy_seconds() + (vm_soft_extra or {}).get(name, 0.0)
    host = breakdown_of(host_cpu, window_s, guest_seconds=guest_total)
    if host_extra_sys:
        host = CpuBreakdown(
            usr=host.usr, sys=host.sys + host_extra_sys, soft=host.soft,
            guest=host.guest, window_s=host.window_s, cores=host.cores,
        )
    result["host"] = host
    for name, cpu in (extra or {}).items():
        result[name] = breakdown_of(cpu, window_s)
    return result

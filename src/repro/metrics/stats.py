"""Sample statistics and empirical CDFs."""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SampleStats:
    """Summary statistics of a sample (latencies, boot times, ...)."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    p50: float
    p75: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: t.Sequence[float]) -> "SampleStats":
        if len(samples) == 0:
            raise ConfigurationError("cannot summarise an empty sample")
        arr = np.asarray(samples, dtype=float)
        q = np.quantile(arr, [0.25, 0.50, 0.75, 0.90, 0.99])
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            p25=float(q[0]),
            p50=float(q[1]),
            p75=float(q[2]),
            p90=float(q[3]),
            p99=float(q[4]),
            maximum=float(arr.max()),
        )

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean) — the paper quotes
        std-dev as a percentage of the average throughout §5."""
        return self.std / self.mean if self.mean else 0.0


@dataclasses.dataclass(frozen=True)
class Cdf:
    """An empirical CDF (used by the fig 8 boot-time plot)."""

    values: tuple[float, ...]  # sorted

    @classmethod
    def from_samples(cls, samples: t.Sequence[float]) -> "Cdf":
        if len(samples) == 0:
            raise ConfigurationError("cannot build a CDF from no samples")
        return cls(values=tuple(sorted(float(s) for s in samples)))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile out of range: {q!r}")
        return float(np.quantile(np.asarray(self.values), q))

    def fraction_below(self, threshold: float) -> float:
        arr = np.asarray(self.values)
        return float(np.count_nonzero(arr <= threshold) / arr.size)

    def points(self) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        n = len(self.values)
        return [(v, (i + 1) / n) for i, v in enumerate(self.values)]

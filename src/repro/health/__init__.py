"""Runtime health: topology invariants and the watchdog process.

The simulator's layers each maintain wiring invariants (a device lives
in exactly one namespace, a bridge's FDB only references its ports, a
hostlo queue always has a live consumer) and accounting invariants
(every injected frame is delivered or sits in exactly one labelled
drop bucket).  Under chaos — crashes, partitions, stalls, evictions —
a bug in any teardown path silently violates them.

* :mod:`repro.health.invariants` — pure check functions over a
  :class:`HealthScope` (the set of namespaces/engines/reports to
  audit), each returning :class:`Violation` records.
* :mod:`repro.health.monitor` — :class:`HealthMonitor`, a simulation
  process that runs the checks periodically, reports through
  ``repro.obs`` and evicts wedged hostlo queues through the
  orchestrator's recovery machinery.
"""

from repro.health.invariants import (
    ALL_CHECKS,
    HealthScope,
    Violation,
    check_bridge_consistency,
    check_capture_conservation,
    check_device_wiring,
    check_fabric_consistency,
    check_frame_conservation,
    check_hostlo_liveness,
    check_leaked_devices,
    run_checks,
    stalled_hostlo_queues,
)
from repro.health.monitor import HealthMonitor

__all__ = [
    "ALL_CHECKS",
    "HealthMonitor",
    "HealthScope",
    "Violation",
    "check_bridge_consistency",
    "check_capture_conservation",
    "check_device_wiring",
    "check_fabric_consistency",
    "check_frame_conservation",
    "check_hostlo_liveness",
    "check_leaked_devices",
    "run_checks",
    "stalled_hostlo_queues",
]

"""Topology and accounting invariants, as pure check functions.

Each check takes a :class:`HealthScope` — the collection of namespaces,
forwarding engines and ARQ reports under audit — and returns zero or
more :class:`Violation` records.  Checks never mutate anything; acting
on what they find (evicting a wedged hostlo queue, re-scheduling a pod)
belongs to :class:`repro.health.monitor.HealthMonitor` and the
orchestrator.

A deliberately *stalled* hostlo queue is not a violation: it is a
fault the watchdog is expected to handle, surfaced separately through
:func:`stalled_hostlo_queues`.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.net.bridge import Bridge
from repro.net.devices import HostloEndpoint, HostloTap, TapDevice
from repro.net.namespace import NetworkNamespace

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.arq import ArqReport
    from repro.net.capture import CaptureSession
    from repro.net.forwarding import ForwardingEngine
    from repro.orchestrator.cluster import Orchestrator
    from repro.virt.host import PhysicalHost
    from repro.virt.vmm import Vmm


@dataclasses.dataclass(frozen=True)
class Violation:
    """One broken invariant: which check, on what, and why."""

    check: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"[{self.check}] {self.subject}: {self.detail}"


class HealthScope:
    """What one health pass audits.

    Build it directly from namespaces, or with :meth:`of` from the
    higher-level owners (hosts, VMMs, orchestrators) — the usual way,
    since those know every namespace they created.
    """

    def __init__(
        self,
        namespaces: t.Iterable[NetworkNamespace] = (),
        forwarding: "ForwardingEngine | None" = None,
        arq_reports: t.Iterable["ArqReport"] = (),
        capture: "CaptureSession | None" = None,
        fabrics: t.Iterable[t.Any] = (),
    ) -> None:
        deduped: dict[int, NetworkNamespace] = {}
        for ns in namespaces:
            deduped.setdefault(id(ns), ns)
        self.namespaces: tuple[NetworkNamespace, ...] = tuple(deduped.values())
        self.forwarding = forwarding
        self.arq_reports = tuple(arq_reports)
        self.capture = capture
        self.fabrics = tuple(fabrics)

    @classmethod
    def of(
        cls,
        *,
        hosts: t.Iterable["PhysicalHost"] = (),
        vmms: t.Iterable["Vmm"] = (),
        orchestrators: t.Iterable["Orchestrator"] = (),
        namespaces: t.Iterable[NetworkNamespace] = (),
        forwarding: "ForwardingEngine | None" = None,
        arq_reports: t.Iterable["ArqReport"] = (),
        capture: "CaptureSession | None" = None,
        fabrics: t.Iterable[t.Any] = (),
    ) -> "HealthScope":
        """Gather every namespace the given owners are responsible for."""
        gathered: list[NetworkNamespace] = list(namespaces)
        vmm_list = list(vmms)
        for orch in orchestrators:
            vmm_list.append(orch.vmm)
            for deployment in orch.deployments.values():
                gathered.extend(deployment.fragments.values())
        host_list = list(hosts)
        fabric_list = list(fabrics)
        for tree in fabric_list:
            # A fat-tree owns its switch namespaces *and* its racked
            # hosts: auditing the tree audits both.
            gathered.extend(tree.namespaces())
            host_list.extend(tree.hosts.values())
        for vmm in vmm_list:
            host_list.append(vmm.host)
            for vm in vmm.vms.values():
                gathered.extend(vm.namespaces)
        for host in host_list:
            gathered.append(host.ns)
        return cls(gathered, forwarding=forwarding,
                   arq_reports=arq_reports, capture=capture,
                   fabrics=fabric_list)

    # -- derived views ----------------------------------------------------
    def devices(self) -> t.Iterator[tuple[NetworkNamespace, str, t.Any]]:
        for ns in self.namespaces:
            for name, dev in ns.devices.items():
                yield ns, name, dev

    def bridges(self) -> tuple[Bridge, ...]:
        return tuple(dev for _, _, dev in self.devices()
                     if isinstance(dev, Bridge))

    def hostlo_taps(self) -> tuple[HostloTap, ...]:
        return tuple(dev for _, _, dev in self.devices()
                     if isinstance(dev, HostloTap))


# -- the checks -----------------------------------------------------------
def check_device_wiring(scope: HealthScope) -> list[Violation]:
    """Every attached device points back at its namespace, under the
    name it is registered as; a TAP and the vNIC it backs agree."""
    out: list[Violation] = []
    for ns, name, dev in scope.devices():
        if dev.namespace is not ns:
            where = dev.namespace.name if dev.namespace else "nowhere"
            out.append(Violation(
                "device-wiring", f"{ns.name}/{name}",
                f"device thinks it lives in {where}",
            ))
        if dev.name != name:
            out.append(Violation(
                "device-wiring", f"{ns.name}/{name}",
                f"registered as {name!r} but named {dev.name!r}",
            ))
        if isinstance(dev, TapDevice) and dev.backs is not None \
                and dev.backs.backend is not dev:
            out.append(Violation(
                "device-wiring", f"{ns.name}/{name}",
                f"backs {dev.backs.name!r} which does not point back",
            ))
    return out


def check_leaked_devices(scope: HealthScope) -> list[Violation]:
    """Nothing survives its owner: no orphaned host-side taps, no
    bridge ports belonging to no namespace."""
    out: list[Violation] = []
    for ns, name, dev in scope.devices():
        if isinstance(dev, TapDevice) and dev.backs is None:
            out.append(Violation(
                "leaked-device", f"{ns.name}/{name}",
                "host tap backs no vNIC but is still attached",
            ))
    for bridge in scope.bridges():
        for port in bridge.ports:
            if port.namespace is None:
                out.append(Violation(
                    "leaked-device", f"{bridge.name}/{port.name}",
                    "bridge port belongs to no namespace",
                ))
    return out


def check_bridge_consistency(scope: HealthScope) -> list[Violation]:
    """Ports point back at their bridge and the FDB only references
    current ports (``remove_port`` must flush stale entries)."""
    out: list[Violation] = []
    for bridge in scope.bridges():
        for port in bridge.ports:
            if port.bridge is not bridge:
                out.append(Violation(
                    "bridge-consistency", f"{bridge.name}/{port.name}",
                    "port does not point back at its bridge",
                ))
        ports = set(map(id, bridge.ports))
        for mac, port in bridge._fdb.items():
            if id(port) not in ports:
                out.append(Violation(
                    "bridge-consistency", f"{bridge.name}",
                    f"FDB entry {mac} -> {port.name} references a "
                    "removed port",
                ))
    return out


def check_hostlo_liveness(scope: HealthScope) -> list[Violation]:
    """Every queue on a hostlo tap serves a live, attached endpoint."""
    out: list[Violation] = []
    for tap in scope.hostlo_taps():
        for endpoint in tap.endpoints:
            if endpoint.backend is not tap:
                out.append(Violation(
                    "hostlo-liveness", f"{tap.name}/{endpoint.name}",
                    "queued endpoint does not point back at the tap",
                ))
            if endpoint.namespace is None:
                out.append(Violation(
                    "hostlo-liveness", f"{tap.name}/{endpoint.name}",
                    "queue serves a detached endpoint "
                    "(evict it via remove_queue)",
                ))
    return out


def check_frame_conservation(scope: HealthScope) -> list[Violation]:
    """injected == delivered + sum of labelled drops, everywhere."""
    out: list[Violation] = []
    engine = scope.forwarding
    if engine is not None:
        accounted = engine.frames_delivered + sum(engine.drops.values())
        if engine.frames_sent != accounted:
            out.append(Violation(
                "frame-conservation", "forwarding",
                f"sent {engine.frames_sent} != delivered "
                f"{engine.frames_delivered} + drops "
                f"{sum(engine.drops.values())}",
            ))
    for index, report in enumerate(scope.arq_reports):
        if not report.conserved():
            out.append(Violation(
                "frame-conservation", f"arq[{index}]",
                f"transmissions {report.transmissions} != delivered "
                f"{report.delivered} + duplicates {report.duplicates} "
                f"+ lost {report.lost}",
            ))
        if not report.exactly_once:
            out.append(Violation(
                "frame-conservation", f"arq[{index}]",
                f"delivered {report.delivered} messages over "
                f"{len(report.delivered_ids)} distinct ids "
                "(exactly-once broken)",
            ))
    return out


def check_capture_conservation(scope: HealthScope) -> list[Violation]:
    """The capture session's per-frame ledger agrees with the
    forwarding engine's: every counted frame the engine sent appears in
    the capture with the same terminal verdict.  Only meaningful when
    the scope carries both (a session active for the engine's whole
    accounting period)."""
    out: list[Violation] = []
    session = scope.capture
    engine = scope.forwarding
    if session is None or engine is None:
        return out
    for problem in session.reconcile(engine):
        out.append(Violation("capture-conservation", "capture", problem))
    return out


def check_fabric_consistency(scope: HealthScope) -> list[Violation]:
    """Fat-tree wiring is coherent: every switch port points back at
    its switch and lives in the switch namespace, is an end of the link
    it claims, and down-routes/uplinks only reference own ports."""
    out: list[Violation] = []
    for tree in scope.fabrics:
        for switch in tree.switches.values():
            ports = set(map(id, switch.ports))
            for port in switch.ports:
                if port.fabric_switch is not switch:
                    out.append(Violation(
                        "fabric-consistency", f"{switch.name}/{port.name}",
                        "port does not point back at its switch",
                    ))
                if port.namespace is not switch.ns:
                    where = (port.namespace.name if port.namespace
                             else "nowhere")
                    out.append(Violation(
                        "fabric-consistency", f"{switch.name}/{port.name}",
                        f"port lives in {where}, not the switch namespace",
                    ))
                link = port.link
                if link is not None and port is not link.nic_a \
                        and port is not link.nic_b:
                    out.append(Violation(
                        "fabric-consistency", f"{switch.name}/{port.name}",
                        f"port claims link {link.name!r} but is not "
                        "an end of it",
                    ))
            for network, port in switch.down_routes:
                if id(port) not in ports:
                    out.append(Violation(
                        "fabric-consistency", switch.name,
                        f"down-route {network} via foreign port "
                        f"{port.name!r}",
                    ))
            for port in switch.uplinks:
                if id(port) not in ports:
                    out.append(Violation(
                        "fabric-consistency", switch.name,
                        f"uplink {port.name!r} is not an attached port",
                    ))
    return out


#: Every invariant check, in the order a health pass runs them.
ALL_CHECKS: tuple[t.Callable[[HealthScope], list[Violation]], ...] = (
    check_device_wiring,
    check_leaked_devices,
    check_bridge_consistency,
    check_hostlo_liveness,
    check_fabric_consistency,
    check_frame_conservation,
    check_capture_conservation,
)


def run_checks(scope: HealthScope) -> list[Violation]:
    """Run every invariant check over *scope*."""
    out: list[Violation] = []
    for check in ALL_CHECKS:
        out.extend(check(scope))
    return out


def stalled_hostlo_queues(
    scope: HealthScope,
) -> list[tuple[HostloTap, HostloEndpoint]]:
    """Wedged queues the watchdog should evict (not violations)."""
    return [
        (tap, endpoint)
        for tap in scope.hostlo_taps()
        for endpoint in tap.stalled_endpoints()
    ]

"""The health watchdog: periodic invariant checks + queue eviction.

A :class:`HealthMonitor` is a simulation process.  Every
``interval_s`` of simulated time it rebuilds its :class:`~repro.health.
invariants.HealthScope` (topology changes between ticks), runs every
invariant check, reports violations through ``repro.obs`` and an
optional callback, and — the degraded-mode half — evicts hostlo queues
whose consumer stalled, preferring the orchestrator's recovery
machinery (:meth:`~repro.orchestrator.cluster.Orchestrator.
handle_hostlo_stall`) so the eviction lands in the recovery log.
"""

from __future__ import annotations

import typing as t

from repro.errors import ConfigurationError
from repro.health.invariants import (
    HealthScope,
    Violation,
    run_checks,
    stalled_hostlo_queues,
)
from repro.obs import metrics as _active_metrics
from repro.obs import tracer as _active_tracer

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.devices import HostloEndpoint, HostloTap
    from repro.orchestrator.cluster import Orchestrator
    from repro.sim import Environment
    from repro.virt.vmm import Vmm

#: Default watchdog period (simulated seconds): two kubelet-ish probe
#: intervals scaled to the sub-second experiment horizons.
DEFAULT_INTERVAL_S = 2e-3


class HealthMonitor:
    """Periodically audits a scope and acts on what it finds.

    Parameters
    ----------
    env: the simulation environment.
    scope_fn: builds the :class:`HealthScope` to audit *at each tick*
        (topology is mutable; a frozen scope would go stale).
    interval_s: watchdog period in simulated seconds.
    orchestrator: when given, stalled-queue evictions go through
        :meth:`~repro.orchestrator.cluster.Orchestrator.
        handle_hostlo_stall` (recovery log + degraded-pod marking).
    vmm: fallback eviction path when no orchestrator manages the tap.
    on_violation: called with each :class:`Violation` as found.
    evict_stalled: turn the degraded-mode eviction off to only observe.
    """

    def __init__(
        self,
        env: "Environment",
        scope_fn: t.Callable[[], HealthScope],
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        orchestrator: "Orchestrator | None" = None,
        vmm: "Vmm | None" = None,
        on_violation: t.Callable[[Violation], None] | None = None,
        evict_stalled: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ConfigurationError(
                f"watchdog interval must be positive: {interval_s!r}"
            )
        self.env = env
        self.scope_fn = scope_fn
        self.interval_s = interval_s
        self.orchestrator = orchestrator
        self.vmm = vmm if vmm is not None else (
            orchestrator.vmm if orchestrator is not None else None
        )
        self.on_violation = on_violation
        self.evict_stalled = evict_stalled
        self.checks_run = 0
        self.violations: list[tuple[float, Violation]] = []
        #: (sim time, tap name, endpoint name, frames drained) per evict.
        self.evictions: list[tuple[float, str, str, int]] = []
        self._stop = False

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    # -- one pass ---------------------------------------------------------
    def check_now(self) -> list[Violation]:
        """Run every invariant check once; evict stalled queues."""
        self.checks_run += 1
        scope = self.scope_fn()
        found = run_checks(scope)
        metrics = _active_metrics()
        metrics.counter(
            "health.checks_total", help="health watchdog passes",
        ).inc()
        tracer = _active_tracer()
        for violation in found:
            self.violations.append((self.env.now, violation))
            metrics.counter(
                "health.violations_total",
                help="invariant violations found, by check",
            ).inc(check=violation.check)
            if tracer.enabled:
                tracer.event("health.violation", violation.subject,
                             check=violation.check, detail=violation.detail)
            if self.on_violation is not None:
                self.on_violation(violation)
        if self.evict_stalled:
            for tap, endpoint in stalled_hostlo_queues(scope):
                self._evict(tap, endpoint)
        return found

    def _evict(self, tap: "HostloTap", endpoint: "HostloEndpoint") -> None:
        named = self._identify(tap, endpoint)
        if self.orchestrator is not None and named is not None:
            drained = self.orchestrator.handle_hostlo_stall(*named)
        elif self.vmm is not None and named is not None:
            drained = self.vmm.evict_hostlo_queue(*named)
        else:
            drained = tap.remove_queue(endpoint)
        self.evictions.append(
            (self.env.now, tap.name, endpoint.name, drained)
        )
        metrics = _active_metrics()
        metrics.counter(
            "health.evictions_total",
            help="stalled hostlo queues evicted by the watchdog",
        ).inc(hostlo=tap.name)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("health.evict", f"{tap.name}/{endpoint.name}",
                         drained=drained)

    def _identify(
        self, tap: "HostloTap", endpoint: "HostloEndpoint"
    ) -> tuple[str, str] | None:
        """Reverse-map a (tap, endpoint) pair to (hostlo, vm) names."""
        if self.vmm is None:
            return None
        for hostlo_name in self.vmm.hostlo_names():
            handle = self.vmm.hostlo(hostlo_name)
            if handle.tap is not tap:
                continue
            for vm_name, ep in handle.endpoints.items():
                if ep is endpoint:
                    return hostlo_name, vm_name
        return None

    # -- the process ------------------------------------------------------
    def start(self, horizon_s: float | None = None) -> t.Any:
        """Spawn the periodic watchdog; returns its Process event.

        ``horizon_s`` bounds the watchdog's lifetime so an
        ``env.run()``-to-exhaustion simulation still terminates;
        without it, call :meth:`stop` to end the loop at the next tick.
        """
        return self.env.process(self._watch(horizon_s))

    def stop(self) -> None:
        self._stop = True

    def _watch(self, horizon_s: float | None) -> t.Generator:
        while not self._stop:
            if horizon_s is not None \
                    and self.env.now + self.interval_s > horizon_s:
                return
            yield self.env.timeout(self.interval_s)
            if self._stop:
                return
            self.check_now()

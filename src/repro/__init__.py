"""Reproduction of *Nested Virtualization Without the Nest* (ICPP 2019).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the :class:`Testbed` facade and deployment scenarios.
* :mod:`repro.harness` — one runnable experiment per paper figure/table.
* :mod:`repro.workloads` — netperf, Memcached, NGINX, Kafka drivers.
* :mod:`repro.costsim` / :mod:`repro.traces` — the fig 9 cost study.
* :mod:`repro.net`, :mod:`repro.virt`, :mod:`repro.containers`,
  :mod:`repro.orchestrator` — the simulated substrate.
* :mod:`repro.sim` — the discrete-event kernel everything runs on.
"""

from repro.core import DeploymentMode, Scenario, Testbed, build_scenario
from repro.core.testbed import default_testbed
from repro.errors import ReproError
from repro.harness import ExperimentConfig, ExperimentResult, run_experiment

__version__ = "1.0.0"

__all__ = [
    "DeploymentMode",
    "ExperimentConfig",
    "ExperimentResult",
    "ReproError",
    "Scenario",
    "Testbed",
    "build_scenario",
    "default_testbed",
    "run_experiment",
    "__version__",
]

"""Topology-aware hostlo reflection cost for the §5.3.1 simulation.

The paper's cost model treats a split pod's cross-VM reflection as
free: both fragments share one physical host, so hostlo's copies stay
in one kernel.  On a fabric that assumption breaks — VMs land on racked
hosts, and a split whose fragments sit pods apart pays the fabric
round-trip on every exchange.  :class:`TopologyCostModel` prices that:
the assignment's dollar cost plus a reflection tax per split pod
proportional to the worst pairwise hop distance between the hosts
carrying its fragments.

Plugged into :func:`repro.costsim.hostlo.improve_assignment` via its
``cost_fn`` hook, the tax changes *decisions*, not just reports: a
split that only pays off ignoring distance is rejected once its
fragments would land far apart, which is exactly the fig9 claim made
rack-aware.
"""

from __future__ import annotations

import typing as t

from repro.costsim.packing import BoughtVm, total_cost
from repro.fabric.topology import FatTree
from repro.sim.rng import stable_hash


class TopologyCostModel:
    """Prices a bought-VM assignment on a fat-tree.

    Parameters
    ----------
    tree: the fabric the VMs are placed on.
    reflection_rate: $/hour per hop of the worst fragment separation of
        each split pod (0 reproduces the paper's distance-blind model).
    host_of_vm: optional explicit VM-name → racked-host-name placement;
        unmapped (and all, by default) VMs land deterministically by
        ``stable_hash(name)`` over the tree's hosts.
    """

    def __init__(self, tree: FatTree, reflection_rate: float = 0.004,
                 host_of_vm: t.Mapping[str, str] | None = None) -> None:
        self.tree = tree
        self.reflection_rate = reflection_rate
        self.host_of_vm = dict(host_of_vm or {})
        self._host_names = sorted(tree.hosts)

    def host_of(self, vm_name: str) -> str:
        """The racked host carrying *vm_name*."""
        mapped = self.host_of_vm.get(vm_name)
        if mapped is not None:
            return mapped
        return self._host_names[stable_hash(vm_name)
                                % len(self._host_names)]

    def reflection_cost(self, vms: t.Sequence[BoughtVm]) -> float:
        """The distance tax: worst pairwise fragment distance per split
        pod, priced at :attr:`reflection_rate` per hop."""
        locations: dict[str, set[str]] = {}
        for vm in vms:
            host = self.host_of(vm.name)
            for item in vm.placed:
                locations.setdefault(item.pod_name, set()).add(host)
        tax = 0.0
        for hosts in locations.values():
            if len(hosts) < 2:
                continue
            spread = sorted(hosts)
            worst = max(
                self.tree.host_distance(spread[i], spread[j])
                for i in range(len(spread))
                for j in range(i + 1, len(spread))
            )
            tax += self.reflection_rate * worst
        return tax

    def cost(self, vms: t.Sequence[BoughtVm]) -> float:
        """Dollar cost plus the reflection tax — pass this as
        ``cost_fn`` to the improvement pass."""
        return total_cost(vms) + self.reflection_cost(vms)

"""The datacenter fabric subsystem: fat-trees, ECMP, rack awareness.

What the single-host paper testbed lacks: real topology distance.  This
package builds k-ary fat-trees of :class:`FabricSwitch` nodes cabled
with the existing :class:`~repro.net.links.PhysicalLink` wires, racks
of :class:`~repro.virt.host.PhysicalHost`s under the edges, and layers
on top of them deterministic per-flow ECMP (:mod:`repro.fabric.ecmp`),
traffic-aware elephant re-pinning (:mod:`repro.fabric.flowsched`),
rack-aware pod placement (:mod:`repro.fabric.scheduler`) and a
topology-priced hostlo reflection cost (:mod:`repro.fabric.costs`).

The forwarding engine walks fabric hops natively (frames land on switch
ports and follow down-routes/ECMP decisions), so conservation ledgers,
capture provenance, flow accounting and fault injection all apply to
fabric traffic unchanged.
"""

from repro.fabric.costs import TopologyCostModel
from repro.fabric.ecmp import ecmp_index, flow_signature
from repro.fabric.flowsched import Repin, TrafficAwareFlowScheduler
from repro.fabric.scheduler import TopologyAwareScheduler
from repro.fabric.topology import (
    DISTANCE_CROSS_POD,
    DISTANCE_SAME_HOST,
    DISTANCE_SAME_POD,
    DISTANCE_SAME_RACK,
    FabricSwitch,
    FatTree,
)

__all__ = [
    "DISTANCE_CROSS_POD",
    "DISTANCE_SAME_HOST",
    "DISTANCE_SAME_POD",
    "DISTANCE_SAME_RACK",
    "FabricSwitch",
    "FatTree",
    "Repin",
    "TopologyAwareScheduler",
    "TopologyCostModel",
    "TrafficAwareFlowScheduler",
    "ecmp_index",
    "flow_signature",
]

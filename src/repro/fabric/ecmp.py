"""Deterministic per-flow ECMP hashing.

Real switches hash the 5-tuple into one of N equal-cost next hops so a
flow's packets never reorder across paths.  The simulator does the same
with :func:`repro.sim.rng.stable_hash` (CRC32 — platform- and
process-stable), salted by the switch name so consecutive tiers make
*independent* choices: without the salt every switch would pick the
same index and half the fabric would never carry traffic.

The hash is pure: same flow signature + same switch + same candidate
count → same index, on every run, under every seed.  All load-dependent
behaviour (elephant re-pinning) lives in
:mod:`repro.fabric.flowsched`, which overrides the hash via explicit
pins rather than perturbing it.
"""

from __future__ import annotations

from repro.net.flows import flow_signature  # re-export: the hash key
from repro.sim.rng import stable_hash

__all__ = ["ecmp_index", "flow_signature"]


def ecmp_index(signature: str, salt: str, n: int) -> int:
    """Which of *n* equal-cost candidates carries this flow here.

    *salt* is the deciding switch's name; *signature* comes from
    :func:`repro.net.flows.flow_signature`.
    """
    if n <= 0:
        raise ValueError("ecmp_index needs at least one candidate")
    return stable_hash(f"{salt}|{signature}") % n

"""Rack-aware pod placement over a fat-tree.

The §5.3.1 "most requested" policy only looks at node fullness; on a
real fabric that happily scatters one pod's fragments across pods,
turning every hostlo-adjacent exchange into a 6-hop core round trip.
:class:`TopologyAwareScheduler` keeps the grouping policy but charges
each candidate node for its mean rack distance to the fragments already
placed — close-but-slightly-emptier beats far-but-fullest once the
distance term outweighs the fullness delta.
"""

from __future__ import annotations

import typing as t

from repro.fabric.topology import DISTANCE_CROSS_POD, FatTree
from repro.orchestrator.node import Node
from repro.orchestrator.scheduler import MostRequestedScheduler


class TopologyAwareScheduler(MostRequestedScheduler):
    """Most-requested placement, penalised by rack distance.

    Parameters
    ----------
    tree: the fabric the nodes' VMs run on.
    host_of_node: node (VM) name → racked host name in *tree*.
    rack_weight: score penalty for a full-fabric-diameter spread; the
        default makes distance decisive between near-equally-full nodes
        without ever overriding a hard capacity difference.
    """

    def __init__(self, tree: FatTree,
                 host_of_node: t.Mapping[str, str],
                 rack_weight: float = 0.15) -> None:
        self.tree = tree
        self.host_of_node = dict(host_of_node)
        self.rack_weight = rack_weight

    def _split_score(self, node: Node, cpu_frac: float, mem_frac: float,
                     chosen: t.Sequence[str]) -> float:
        score = super()._split_score(node, cpu_frac, mem_frac, chosen)
        host = self.host_of_node.get(node.name)
        if host is None or not chosen:
            return score
        distances = [
            self.tree.host_distance(host, peer_host)
            for name in chosen
            if (peer_host := self.host_of_node.get(name)) is not None
        ]
        if not distances:
            return score
        mean = sum(distances) / len(distances)
        return score - self.rack_weight * mean / DISTANCE_CROSS_POD

    def mean_distance(self, node_names: t.Sequence[str]) -> float:
        """Mean pairwise host distance of an assignment (reporting)."""
        hosts = [self.host_of_node[name] for name in node_names
                 if name in self.host_of_node]
        if len(hosts) < 2:
            return 0.0
        pairs = [
            self.tree.host_distance(hosts[i], hosts[j])
            for i in range(len(hosts))
            for j in range(i + 1, len(hosts))
        ]
        return sum(pairs) / len(pairs)

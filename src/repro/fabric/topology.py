"""k-ary fat-tree fabrics: switches, racks, cabling.

The classic three-tier Clos (Al-Fares et al.): ``k`` pods of ``k/2``
edge and ``k/2`` aggregation switches, ``(k/2)²`` cores, every edge
fronting a rack of :class:`~repro.virt.host.PhysicalHost`s.  All
cabling is real :class:`~repro.net.links.PhysicalLink` objects between
:class:`~repro.net.devices.PhysicalNic` ports, so the forwarding
engine's wire semantics (carrier checks, loss faults, per-link
accounting) apply to every fabric hop unchanged.

Addressing follows the paper's scheme shape: the host under edge ``e``
at index ``n`` of pod ``p`` owns the ``10.p.(e·hpe+n).0/24`` subnet on
its default bridge, so prefixes aggregate cleanly — edges route /24s to
their hosts, aggs route their pod's /24s to edges, cores route whole
``10.p.0.0/16`` pods to aggs — and everything else ECMP-hashes upward
over the equal-cost uplinks.

Forwarding itself lives in
:meth:`repro.net.forwarding.ForwardingEngine._fabric_forward`; a switch
only answers *which port* (:meth:`FabricSwitch.select_port`), which is
where down-routes, liveness-filtered ECMP and elephant pins compose.
"""

from __future__ import annotations

import contextlib
import typing as t

from repro.errors import TopologyError
from repro.fabric.ecmp import ecmp_index
from repro.net.addresses import Ipv4Address, Ipv4Network, cidr
from repro.net.devices import DeviceQueue, PhysicalNic
from repro.net.links import PhysicalLink
from repro.net.namespace import NetworkNamespace
from repro.sim import Environment
from repro.virt.host import PhysicalHost

#: The supernet every fabric host lives under; host namespaces route it
#: out of their fabric uplink.
FABRIC_SUPERNET = "10.0.0.0/8"

TIERS = ("edge", "agg", "core")

#: Hop-count distances between hosts, used by the rack-aware scheduler
#: and the topology cost model: same host, same rack (via one edge),
#: same pod (via an agg), cross-pod (via a core).
DISTANCE_SAME_HOST = 0
DISTANCE_SAME_RACK = 2
DISTANCE_SAME_POD = 4
DISTANCE_CROSS_POD = 6


class FabricSwitch:
    """One fat-tree switch: a namespace full of ports plus forwarding
    state (down-routes, ECMP uplinks, elephant pins)."""

    def __init__(self, name: str, tier: str, pod: int | None = None) -> None:
        if tier not in TIERS:
            raise TopologyError(f"bad switch tier {tier!r} (have: {TIERS})")
        self.name = name
        self.tier = tier
        self.pod = pod
        self.up = True
        self.ns = NetworkNamespace(name, kind="host",
                                   domain=f"switch:{name}")
        self.ports: list[PhysicalNic] = []
        self.uplinks: list[PhysicalNic] = []
        #: Longest-prefix-first routes toward hosts this switch fronts
        #: (downward); anything unmatched hashes over :attr:`uplinks`.
        self.down_routes: list[tuple[Ipv4Network, PhysicalNic]] = []
        #: Flow-signature → port-name overrides (elephant re-pinning).
        self.pins: dict[str, str] = {}
        #: Back-reference set by :class:`FatTree` (congestion window).
        self.tree: "FatTree | None" = None

    # -- construction ------------------------------------------------------
    def add_port(self, name: str, uplink: bool = False,
                 queue_capacity: int | None = None) -> PhysicalNic:
        nic = PhysicalNic(name)
        nic.fabric_switch = self
        if queue_capacity is not None:
            nic.tx_queue = DeviceQueue(f"{name}:tx", queue_capacity)
        self.ns.attach(nic)
        self.ports.append(nic)
        if uplink:
            self.uplinks.append(nic)
        return nic

    def add_down_route(self, network: Ipv4Network,
                       port: PhysicalNic) -> None:
        if port not in self.ports:
            raise TopologyError(
                f"{self.name}: down-route via foreign port {port.name!r}"
            )
        self.down_routes.append((network, port))

    # -- administrative state ----------------------------------------------
    def set_down(self) -> None:
        """Kill the switch (power/fabric-manager failure)."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def congested(self) -> bool:
        """Inside the owning tree's congestion window?"""
        return self.tree is not None and self.tree.congested

    # -- forwarding decisions ----------------------------------------------
    def down_route(self, dst: Ipv4Address) -> PhysicalNic | None:
        """The longest-prefix downward port for *dst*, if any."""
        best: tuple[int, PhysicalNic] | None = None
        for network, port in self.down_routes:
            if dst in network and (best is None
                                   or network.prefix_len > best[0]):
                best = (network.prefix_len, port)
        return best[1] if best else None

    def _viable(self, port: PhysicalNic, dst: Ipv4Address) -> bool:
        """Can traffic for *dst* leave this port and keep progressing?"""
        link = port.link
        if link is None or not link.up:
            return False
        peer = link.peer_of(port)
        next_switch = peer.fabric_switch
        if next_switch is None:
            return True  # lands on a host NIC
        return next_switch.up and next_switch.can_reach(dst)

    def can_reach(self, dst: Ipv4Address) -> bool:
        """Is there a live path from this switch down (or up) to *dst*?

        Down-routes are authoritative: a switch fronting *dst*'s subnet
        never detours upward, so a dead rack link is a dead end (and a
        labelled drop), while upward ECMP candidates are filtered to
        live ones — which is exactly what makes reroute-on-fault
        automatic.
        """
        if not self.up:
            return False
        port = self.down_route(dst)
        if port is not None:
            return self._viable(port, dst)
        return any(self._viable(port, dst) for port in self.uplinks)

    def live_uplinks(self, dst: Ipv4Address) -> list[PhysicalNic]:
        """The equal-cost uplinks that can currently progress *dst*,
        in name order (the ECMP hash space)."""
        return sorted(
            (port for port in self.uplinks if self._viable(port, dst)),
            key=lambda port: port.name,
        )

    def select_port(self, signature: str,
                    dst: Ipv4Address) -> PhysicalNic | None:
        """Which port carries this flow's frames toward *dst* here."""
        port = self.down_route(dst)
        if port is not None:
            return port
        live = self.live_uplinks(dst)
        if not live:
            return None
        pinned = self.pins.get(signature)
        if pinned is not None:
            for candidate in live:
                if candidate.name == pinned:
                    return candidate
            # The pinned port died: fall back to the hash over what
            # still lives rather than blackholing the elephant.
        return live[ecmp_index(signature, self.name, len(live))]

    def pin(self, signature: str, port_name: str) -> None:
        """Override the ECMP hash for one flow at this switch."""
        if all(port.name != port_name for port in self.uplinks):
            raise TopologyError(
                f"{self.name}: cannot pin {signature!r} to unknown "
                f"uplink {port_name!r}"
            )
        self.pins[signature] = port_name

    def unpin_all(self) -> None:
        self.pins.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "" if self.up else " down"
        return (f"<FabricSwitch {self.name!r} {self.tier}"
                f" ports={len(self.ports)}{state}>")


class FatTree:
    """A fully cabled k-ary fat-tree of switches and racked hosts.

    Parameters
    ----------
    env: the simulation environment the hosts run in.
    k: pod count / switch radix (even, >= 4).
    hosts_per_edge: rack size (1..k/2; default k/2, the full tree).
    bandwidth_bps: line rate of every fabric link.
    queue_capacity: switch-port TX ring depth (``None`` keeps the
        device default, deep enough that only an incast burst inside a
        :meth:`congestion` window overflows it).
    seed: base RNG seed; host ``i`` gets ``seed + i``.
    host_cores: cores per racked host.
    """

    def __init__(
        self,
        env: Environment,
        k: int = 4,
        hosts_per_edge: int | None = None,
        bandwidth_bps: float = 10e9,
        queue_capacity: int | None = None,
        seed: int = 0,
        host_cores: int = 12,
    ) -> None:
        if k < 4 or k % 2:
            raise TopologyError(f"fat-tree k must be even and >= 4: {k!r}")
        if k > 16:
            raise TopologyError(f"fat-tree k={k} is past simulation scale")
        half = k // 2
        hosts_per_edge = half if hosts_per_edge is None else hosts_per_edge
        if not 1 <= hosts_per_edge <= half:
            raise TopologyError(
                f"hosts_per_edge must be in 1..{half}: {hosts_per_edge!r}"
            )
        self.env = env
        self.k = k
        self.hosts_per_edge = hosts_per_edge
        self.bandwidth_bps = float(bandwidth_bps)
        self.queue_capacity = queue_capacity
        self.switches: dict[str, FabricSwitch] = {}
        self.hosts: dict[str, PhysicalHost] = {}
        self.links: dict[str, PhysicalLink] = {}
        #: rack id (the edge switch name) → host names, build order.
        self.racks: dict[str, list[str]] = {}
        self._rack_of: dict[str, str] = {}
        self._pod_of: dict[str, int] = {}
        self._host_subnet: dict[str, Ipv4Network] = {}
        #: While True, switch ports accumulate TX depth instead of
        #: draining at line rate — the incast model.
        self.congested = False
        self._build(seed, host_cores)

    # -- construction ------------------------------------------------------
    def _switch(self, name: str, tier: str,
                pod: int | None = None) -> FabricSwitch:
        switch = FabricSwitch(name, tier, pod=pod)
        switch.tree = self
        self.switches[name] = switch
        return switch

    def _cable(self, name: str, nic_a: PhysicalNic,
               nic_b: PhysicalNic) -> PhysicalLink:
        link = PhysicalLink(name, nic_a, nic_b,
                            bandwidth_bps=self.bandwidth_bps)
        self.links[name] = link
        return link

    def _build(self, seed: int, host_cores: int) -> None:
        half = self.k // 2
        cores = [
            [self._switch(f"core-g{g}c{c}", "core") for c in range(half)]
            for g in range(half)
        ]
        host_index = 0
        for p in range(self.k):
            edges = [self._switch(f"edge-p{p}e{e}", "edge", pod=p)
                     for e in range(half)]
            aggs = [self._switch(f"agg-p{p}a{a}", "agg", pod=p)
                    for a in range(half)]
            pod_net = cidr(f"10.{p}.0.0/16")
            # Full edge<->agg bipartite mesh within the pod.
            for e, edge in enumerate(edges):
                for a, agg in enumerate(aggs):
                    up = edge.add_port(f"{edge.name}-up{a}", uplink=True,
                                       queue_capacity=self.queue_capacity)
                    down = agg.add_port(f"{agg.name}-dn{e}",
                                        queue_capacity=self.queue_capacity)
                    self._cable(f"{edge.name}--{agg.name}", up, down)
            # Agg a uplinks to every core of group a.
            for a, agg in enumerate(aggs):
                for c, core in enumerate(cores[a]):
                    up = agg.add_port(f"{agg.name}-up{c}", uplink=True,
                                      queue_capacity=self.queue_capacity)
                    down = core.add_port(f"{core.name}-dn{p}",
                                         queue_capacity=self.queue_capacity)
                    self._cable(f"{agg.name}--{core.name}", up, down)
                    core.add_down_route(pod_net, down)
            # Racks: hosts under each edge, one /24 each.
            for e, edge in enumerate(edges):
                self.racks[edge.name] = []
                for n in range(self.hosts_per_edge):
                    subnet_index = e * self.hosts_per_edge + n
                    subnet = cidr(f"10.{p}.{subnet_index}.0/24")
                    name = f"h-p{p}e{e}n{n}"
                    host = PhysicalHost(
                        self.env, name=name, cores=host_cores,
                        seed=seed + host_index,
                        bridge_cidr=f"10.{p}.{subnet_index}.0/24",
                    )
                    host_index += 1
                    uplink = PhysicalNic(
                        "fab0", host.mac_allocator.allocate(),
                        bandwidth_bps=self.bandwidth_bps,
                    )
                    host.ns.attach(uplink)
                    host.ns.routes.add_on_link(cidr(FABRIC_SUPERNET),
                                               "fab0")
                    port = edge.add_port(
                        f"{edge.name}-dn{n}",
                        queue_capacity=self.queue_capacity,
                    )
                    self._cable(f"{edge.name}--{name}", port, uplink)
                    edge.add_down_route(subnet, port)
                    for agg in aggs:
                        agg.add_down_route(
                            subnet,
                            agg.ns.device(f"{agg.name}-dn{e}"),
                        )
                    self.hosts[name] = host
                    self.racks[edge.name].append(name)
                    self._rack_of[name] = edge.name
                    self._pod_of[name] = p
                    self._host_subnet[name] = subnet

    # -- lookups -----------------------------------------------------------
    def switch(self, name: str) -> FabricSwitch:
        try:
            return self.switches[name]
        except KeyError:
            raise TopologyError(f"no switch {name!r} in the tree") from None

    def host(self, name: str) -> PhysicalHost:
        try:
            return self.hosts[name]
        except KeyError:
            raise TopologyError(f"no host {name!r} in the tree") from None

    def link(self, name: str) -> PhysicalLink:
        try:
            return self.links[name]
        except KeyError:
            raise TopologyError(f"no link {name!r} in the tree") from None

    def rack_of(self, host_name: str) -> str:
        try:
            return self._rack_of[host_name]
        except KeyError:
            raise TopologyError(f"no host {host_name!r} in the tree") from None

    def pod_of(self, host_name: str) -> int:
        return self._pod_of[self.host(host_name).name]

    def host_subnet(self, host_name: str) -> Ipv4Network:
        return self._host_subnet[self.host(host_name).name]

    def host_of_ip(self, address: Ipv4Address) -> str | None:
        """Which racked host's subnet owns *address* (its bridge/VMs)."""
        for name, subnet in self._host_subnet.items():
            if address in subnet:
                return name
        return None

    def host_distance(self, a: str, b: str) -> int:
        """Hop distance between two racked hosts."""
        if self.host(a) is self.host(b):
            return DISTANCE_SAME_HOST
        if self.rack_of(a) == self.rack_of(b):
            return DISTANCE_SAME_RACK
        if self.pod_of(a) == self.pod_of(b):
            return DISTANCE_SAME_POD
        return DISTANCE_CROSS_POD

    def rack_distance(self, rack_a: str, rack_b: str) -> int:
        """Hop distance between two racks (edge switch names)."""
        if rack_a == rack_b:
            return DISTANCE_SAME_RACK
        if self.switch(rack_a).pod == self.switch(rack_b).pod:
            return DISTANCE_SAME_POD
        return DISTANCE_CROSS_POD

    def namespaces(self) -> list[NetworkNamespace]:
        """Every switch namespace (hosts audit via their own owners)."""
        return [switch.ns for switch in self.switches.values()]

    # -- link accounting ----------------------------------------------------
    def link_loads(self, contains: str = "") -> dict[str, int]:
        """``bytes_carried`` per link, optionally name-filtered."""
        return {
            name: link.bytes_carried
            for name, link in sorted(self.links.items())
            if contains in name
        }

    def uplink_links(self, switch_name: str) -> dict[str, PhysicalLink]:
        """The links hanging off *switch_name*'s ECMP uplinks."""
        switch = self.switch(switch_name)
        return {
            port.link.name: port.link
            for port in switch.uplinks
            if port.link is not None
        }

    def reset_link_counters(self) -> None:
        for link in self.links.values():
            link.reset_counters()

    def unpin_all(self) -> None:
        for switch in self.switches.values():
            switch.unpin_all()

    # -- congestion window ---------------------------------------------------
    @contextlib.contextmanager
    def congestion(self) -> t.Iterator["FatTree"]:
        """A window during which switch ports stop draining: offered
        frames pile depth onto the bounded TX rings, and whatever
        exceeds capacity becomes labelled ``fabric-overflow`` drops —
        the incast microburst model."""
        self.congested = True
        try:
            yield self
        finally:
            self.congested = False

    def service_all(self) -> int:
        """Drain every switch port ring (the burst subsides); returns
        how many queued frames were serviced."""
        serviced = 0
        for switch in self.switches.values():
            for port in switch.ports:
                depth = port.tx_queue.depth
                if depth:
                    port.tx_queue.take(depth)
                    serviced += depth
        return serviced

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<FatTree k={self.k} switches={len(self.switches)} "
                f"hosts={len(self.hosts)} links={len(self.links)}>")

"""Traffic-aware flow scheduling: elephants off the hash, onto air.

Hash ECMP is oblivious: two heavy flows that collide on one uplink stay
collided forever, even while an equal-cost sibling idles (the classic
Hedera observation).  This scheduler closes the loop using what the
stack already measures: it reads live :class:`~repro.net.flows.
FlowTable` statistics, classifies flows by bytes carried into
*elephants* and *mice*, and re-pins each elephant — heaviest first — at
every ECMP decision switch along its path onto the least-loaded live
uplink (actual link bytes plus the load this rebalance round has
already planned onto it).  Mice keep the plain hash: they are many,
small and well spread by it.

Pins live on the switches (:attr:`FabricSwitch.pins`), survive link
flaps by falling back to the hash when the pinned port dies, and are
honoured by the forwarding engine through the same
:meth:`~repro.fabric.topology.FabricSwitch.select_port` the hash path
uses — re-pinning changes the decision, never the mechanism.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.fabric.topology import FabricSwitch, FatTree
from repro.net.addresses import Ipv4Address
from repro.net.devices import PhysicalNic
from repro.net.flows import FlowKey, FlowStats, FlowTable

#: A flow that carried this much payload is an elephant.  Tuned to the
#: harness scale (tens of frames of a few KiB each), overridable.
DEFAULT_ELEPHANT_BYTES = 50_000


@dataclasses.dataclass(frozen=True)
class Repin:
    """One pinning decision at one switch for one elephant."""

    signature: str
    switch: str
    port: str
    #: Whether the pin differs from what the hash would have chosen.
    moved: bool


class TrafficAwareFlowScheduler:
    """Classifies flows from live stats and re-pins the elephants."""

    def __init__(self, tree: FatTree,
                 elephant_bytes: int = DEFAULT_ELEPHANT_BYTES) -> None:
        self.tree = tree
        self.elephant_bytes = elephant_bytes

    def classify(
        self, table: FlowTable
    ) -> tuple[list[tuple[FlowKey, FlowStats]],
               list[tuple[FlowKey, FlowStats]]]:
        """(elephants, mice), elephants heaviest-first."""
        elephants: list[tuple[FlowKey, FlowStats]] = []
        mice: list[tuple[FlowKey, FlowStats]] = []
        for key, stats in table.items():
            bucket = elephants if stats.bytes >= self.elephant_bytes else mice
            bucket.append((key, stats))
        elephants.sort(key=lambda item: (-item[1].bytes, item[0]))
        return elephants, mice

    def rebalance(self, table: FlowTable) -> list[Repin]:
        """Re-pin every elephant onto least-loaded equal-cost paths.

        Returns the pinning decisions made (``moved`` marks the ones
        that actually changed the hash's choice).  Safe to call
        repeatedly as stats evolve; later calls overwrite earlier pins.
        """
        elephants, _mice = self.classify(table)
        #: Planned bytes per link this round: measured so far, plus the
        #: elephants already assigned (each expected to keep its rate).
        planned: dict[str, int] = {}
        decisions: list[Repin] = []
        for key, stats in elephants:
            decisions.extend(self._pin_flow(key, stats, planned))
        return decisions

    # -- internals ---------------------------------------------------------
    def _load(self, planned: dict[str, int], port: PhysicalNic) -> int:
        assert port.link is not None  # live_uplinks filtered uncabled
        name = port.link.name
        if name not in planned:
            planned[name] = port.link.bytes_carried
        return planned[name]

    def _pin_flow(self, key: FlowKey, stats: FlowStats,
                  planned: dict[str, int]) -> list[Repin]:
        src = Ipv4Address.parse(key.src_ip)
        dst = Ipv4Address.parse(key.dst_ip)
        src_host = self.tree.host_of_ip(src)
        if src_host is None or self.tree.host_of_ip(dst) is None:
            return []  # not fabric traffic
        signature = key.signature
        switch: FabricSwitch | None = self.tree.switch(
            self.tree.rack_of(src_host)
        )
        out: list[Repin] = []
        while switch is not None and switch.up:
            if switch.down_route(dst) is not None:
                break  # descending from here: no more ECMP choices
            live = switch.live_uplinks(dst)
            if not live:
                break
            hashed = switch.select_port(signature, dst)
            best = min(
                live,
                key=lambda port: (self._load(planned, port), port.name),
            )
            switch.pin(signature, best.name)
            assert best.link is not None
            planned[best.link.name] = (
                self._load(planned, best) + stats.bytes
            )
            out.append(Repin(signature=signature, switch=switch.name,
                             port=best.name, moved=best is not hashed))
            peer = best.link.peer_of(best)
            switch = peer.fabric_switch
        return out

"""The orchestrator's in-VM agent.

The VMM hands device identifiers (MAC addresses) back to the
orchestrator; the VM agent is the component inside the guest that finds
the device by MAC and configures it for the scheduled pod
(§3.1 step 4, §4.1 step 4).
"""

from __future__ import annotations

from repro.containers.container import Container
from repro.errors import HotplugError
from repro.faults import injector as _active_injector
from repro.net.addresses import Ipv4Address, Ipv4Network, MacAddress
from repro.orchestrator.node import Node


class VmAgent:
    """One agent per node (VM)."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.configured: list[MacAddress] = []
        self.stalls = 0

    def configure_nic(
        self,
        mac: MacAddress,
        container: Container,
        address: Ipv4Address,
        network: Ipv4Network,
        gateway: Ipv4Address | None = None,
        default_route: bool = True,
    ) -> None:
        """Find the device with *mac* and wire it into the pod."""
        if not self.node.vm.running:
            raise HotplugError(
                f"agent on {self.node.name}: VM is down",
                vm=self.node.name, device=str(mac), retryable=False,
            )
        inj = _active_injector()
        if inj.enabled and inj.fires(
                "agent.stall", self.node.name, device=str(mac)) is not None:
            # The agent's netlink work times out; the orchestrator sees
            # the configure step fail and may retry (the device is still
            # there, so a retry can succeed).
            self.stalls += 1
            raise HotplugError(
                f"agent on {self.node.name} stalled configuring {mac} "
                "(injected)", vm=self.node.name, device=str(mac),
            )
        nic = self.node.vm.find_nic_by_mac(mac)
        if nic is None:
            raise HotplugError(
                f"agent on {self.node.name}: no device with MAC {mac}",
                vm=self.node.name, device=str(mac),
            )
        self.node.engine.adopt_nic(
            container, nic, address, network,
            gateway=gateway, default_route=default_route,
        )
        self.configured.append(mac)

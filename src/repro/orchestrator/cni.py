"""The Container Network Interface plugin contract.

CNI plugins follow a standard specification and are how new networking
models are added to Kubernetes (§3.2); the BrFusion and Hostlo
prototypes are CNI plugins that talk to the VMM.
"""

from __future__ import annotations

import abc
import typing as t

from repro.obs import tracer as _active_tracer

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cluster import Deployment, Orchestrator


class CniPlugin(abc.ABC):
    """One pod-networking model."""

    #: Registry key (``nat``, ``brfusion``, ``hostlo``, ``overlay``).
    name: str = "abstract"
    #: Whether the plugin can serve a pod split across several VMs.
    supports_split: bool = False

    def note_attach(self, deployment: "Deployment", **attrs: t.Any) -> None:
        """Record the wiring decision as a ``cni.attach`` trace event."""
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event(
                "cni.attach", deployment.name, plugin=self.name,
                split=deployment.is_split,
                nodes=",".join(deployment.placement.node_names), **attrs,
            )

    @abc.abstractmethod
    def attach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        """Wire the deployed pod's networking.

        Must populate ``deployment.intra_addresses`` (how fragments
        reach each other over the pod's localhost) and, for published
        containers, ``deployment.external_endpoints``.
        """

    def detach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        """Undo :meth:`attach` (best effort; default: nothing)."""

"""The Container Network Interface plugin contract.

CNI plugins follow a standard specification and are how new networking
models are added to Kubernetes (§3.2); the BrFusion and Hostlo
prototypes are CNI plugins that talk to the VMM.
"""

from __future__ import annotations

import abc
import typing as t

from repro.obs import tracer as _active_tracer

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cluster import Deployment, Orchestrator


class CniPlugin(abc.ABC):
    """One pod-networking model."""

    #: Registry key (``nat``, ``brfusion``, ``hostlo``, ``overlay``).
    name: str = "abstract"
    #: Whether the plugin can serve a pod split across several VMs.
    supports_split: bool = False

    def note_attach(self, deployment: "Deployment", **attrs: t.Any) -> None:
        """Record the wiring decision as a ``cni.attach`` trace event."""
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event(
                "cni.attach", deployment.name, plugin=self.name,
                split=deployment.is_split,
                nodes=",".join(deployment.placement.node_names), **attrs,
            )

    def note_detach(self, deployment: "Deployment", **attrs: t.Any) -> None:
        """Record the unwiring as a ``cni.detach`` trace event."""
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("cni.detach", deployment.name, plugin=self.name,
                         **attrs)

    @abc.abstractmethod
    def attach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        """Wire the deployed pod's networking.

        Must populate ``deployment.intra_addresses`` (how fragments
        reach each other over the pod's localhost) and, for published
        containers, ``deployment.external_endpoints``.
        """

    def detach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        """Undo :meth:`attach` completely.

        The contract is *attach/detach symmetry*: after ``detach`` the
        deployment's wiring state (``intra_addresses``,
        ``external_endpoints``, plugin entries in ``plugin_state``,
        container ``network_mode``) is back to its pre-attach values
        and a fresh ``attach`` must succeed — crash recovery and
        retry-with-rollback both rebuild wiring through this path.
        Implementations must tolerate *partially attached* deployments
        (an attach that raised midway).
        """

    def reset_wiring(self, deployment: "Deployment",
                     *plugin_keys: str) -> None:
        """Shared detach epilogue: clear the deployment's wiring state."""
        deployment.intra_addresses.clear()
        deployment.external_endpoints.clear()
        for key in plugin_keys:
            deployment.plugin_state.pop(key, None)
        for container in deployment.containers.values():
            container.network_mode = "none"

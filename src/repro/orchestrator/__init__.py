"""The pod orchestrator (Kubernetes-like).

The paper's thesis is that the orchestrator should become the main
actor of the datacenter and drive the VMM.  This package implements
the pieces that thesis needs:

* :class:`PodSpec` / :class:`ContainerSpec` — what users deploy.
* :class:`Node` — a VM enrolled as a scheduling target.
* :class:`MostRequestedScheduler` — Kubernetes' "most requested"
  placement policy (§5.3.1), plus the cross-VM split placement that
  Hostlo makes legal.
* The CNI plugin interface and the four plugins the evaluation
  compares: ``nat`` (default bridge+NAT), ``brfusion``, ``hostlo``
  and ``overlay``.
* :class:`VmAgent` — the in-guest agent that receives a device
  identifier (MAC) from the VMM via the orchestrator and configures
  the device inside the pod (§3.1/§4.1 step 4).
* :class:`Orchestrator` — ties it all together: ``deploy_pod``.
"""

from repro.orchestrator.agent import VmAgent
from repro.orchestrator.cluster import Deployment, Orchestrator
from repro.orchestrator.cni import CniPlugin
from repro.orchestrator.node import Node
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.orchestrator.scheduler import MostRequestedScheduler, Placement

__all__ = [
    "CniPlugin",
    "ContainerSpec",
    "Deployment",
    "MostRequestedScheduler",
    "Node",
    "Orchestrator",
    "Placement",
    "PodSpec",
    "VmAgent",
]

"""The CNI plugins the evaluation compares.

* :class:`NatPlugin` — Docker's default bridge+NAT inside the VM (the
  paper's "NAT" baseline; also the "SameNode" configuration when the
  pod communicates over its own loopback).
* :class:`BrFusionPlugin` — §3: per-pod NIC hot-plugged by the VMM and
  switched by the host bridge.
* :class:`HostloPlugin` — §4: host-backed multiplexed loopback for
  cross-VM pods.
* :class:`OverlayPlugin` — Docker Overlay, the state-of-the-art
  comparison point for cross-VM pods.
"""

from repro.orchestrator.plugins.brfusion import BrFusionPlugin
from repro.orchestrator.plugins.hostlo import HostloPlugin
from repro.orchestrator.plugins.nat import NatPlugin
from repro.orchestrator.plugins.overlay import OverlayPlugin


def default_plugins():
    """Fresh instances of the four standard plugins."""
    return [NatPlugin(), BrFusionPlugin(), HostloPlugin(), OverlayPlugin()]


__all__ = [
    "BrFusionPlugin",
    "HostloPlugin",
    "NatPlugin",
    "OverlayPlugin",
    "default_plugins",
]

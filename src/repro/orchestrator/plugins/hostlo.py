"""Hostlo CNI plugin (§4).

Implements the §4.1 interaction:

1. the orchestrator asks the VMM for a new hostlo for the pod, naming
   the VMs targeted by the (possibly split) placement;
2. the VMM creates the multiplexed loopback TAP and inserts one
   endpoint into each VM;
3. the VMM reports the endpoints' MAC addresses;
4. each VM agent configures its endpoint inside the local pod fragment
   as the pod's localhost interface.

A pod that lands whole on one VM needs no hostlo: its namespace
loopback is the localhost (the "SameNode" baseline).  Published
containers additionally get classic NAT wiring on their own fragment —
hostlo only replaces the *intra-pod* localhost.
"""

from __future__ import annotations

import typing as t

from repro.net.addresses import Ipv4Address
from repro.orchestrator.cni import CniPlugin

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cluster import Deployment, Orchestrator

LOCALHOST = Ipv4Address.parse("127.0.0.1")


class HostloPlugin(CniPlugin):
    """Host-backed multiplexed loopback for cross-VM pods."""

    name = "hostlo"
    supports_split = True

    def attach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        node_names = deployment.placement.node_names
        if len(node_names) == 1:
            # Whole pod on one VM: the pod namespace loopback suffices.
            self._wire_external(orch, deployment)
            for cspec in deployment.spec.containers:
                deployment.intra_addresses[cspec.name] = LOCALHOST
                if deployment.containers[cspec.name].network_mode == "none":
                    deployment.containers[cspec.name].network_mode = "pod"
            self.note_attach(deployment, hostlo=False)
            return

        # Steps 1–3: orchestrator ↔ VMM.
        vms = [orch.node(name).vm for name in node_names]
        handle = orch.vmm.create_hostlo(f"hlo-{deployment.name}", vms)
        macs = handle.endpoint_macs()
        subnet = orch.pod_subnets.allocate()
        deployment.plugin_state["hostlo"] = handle
        deployment.plugin_state["pod_subnet"] = subnet

        # Step 4: each agent wires its fragment's endpoint.
        fragment_address: dict[str, Ipv4Address] = {}
        for index, node_name in enumerate(node_names):
            address = subnet.host(2 + index)
            fragment_address[node_name] = address
            carrier = self._fragment_carrier(deployment, node_name)
            orch.agent(node_name).configure_nic(
                macs[node_name], carrier, address, subnet,
                default_route=False,
            )

        for cspec in deployment.spec.containers:
            node_name = deployment.placement.node_of(cspec.name)
            deployment.intra_addresses[cspec.name] = fragment_address[node_name]
        self._wire_external(orch, deployment)
        self.note_attach(deployment, hostlo=True, queues=len(vms))

    def detach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        handle = deployment.plugin_state.get("hostlo")
        if handle is not None and orch.vmm.has_hostlo(handle.name):
            orch.vmm.remove_hostlo(handle.name)
        # Fragments with published containers carry classic NAT wiring.
        for node_name in deployment.placement.node_names:
            node = orch.node(node_name)
            carrier = self._fragment_carrier(deployment, node_name)
            node.engine.teardown_bridge_network(carrier)
        self.reset_wiring(deployment, "hostlo", "pod_subnet")
        self.note_detach(deployment)

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _fragment_carrier(deployment: "Deployment", node_name: str):
        """The first container placed on *node_name* (shares the
        fragment namespace with every other local container)."""
        for cname, assigned in deployment.placement.assignments:
            if assigned == node_name:
                return deployment.containers[cname]
        raise AssertionError(f"no container on {node_name}")  # pragma: no cover

    def _wire_external(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        """Classic NAT wiring for fragments with published containers."""
        published_nodes: dict[str, list[tuple[str, int, int]]] = {}
        for cspec in deployment.spec.containers:
            if not cspec.publish:
                continue
            node_name = deployment.placement.node_of(cspec.name)
            published_nodes.setdefault(node_name, []).extend(cspec.publish)
        for node_name, publish in published_nodes.items():
            node = orch.node(node_name)
            carrier = self._fragment_carrier(deployment, node_name)
            if carrier.network_mode != "none":
                continue  # fragment already wired
            node.engine.setup_bridge_network(carrier, publish=publish)
            vm_ip = node.vm.primary_nic.primary_ip
            assert vm_ip is not None
            for cspec in deployment.spec.containers:
                if deployment.placement.node_of(cspec.name) != node_name:
                    continue
                for _proto, host_port, _cont in cspec.publish:
                    deployment.external_endpoints[cspec.name] = (vm_ip, host_port)

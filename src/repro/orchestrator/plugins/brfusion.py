"""BrFusion CNI plugin (§3).

Implements the §3.1 interaction verbatim:

1. the orchestrator asks the VMM for a new NIC on the scheduled VM
   (optionally naming the host-level networking domain, i.e. bridge);
2. the VMM provisions it (TAP on the host bridge, virtio in the VM);
3. the VMM reports the NIC's MAC address;
4. the VM agent finds the device by MAC and configures it inside the
   pod's namespace.

The pod then uses the host-layer network virtualization directly: no
guest bridge, no guest NAT.
"""

from __future__ import annotations

import typing as t

from repro.errors import HotplugError, SchedulingError
from repro.net.addresses import Ipv4Address
from repro.orchestrator.cni import CniPlugin

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cluster import Deployment, Orchestrator

LOCALHOST = Ipv4Address.parse("127.0.0.1")


class BrFusionPlugin(CniPlugin):
    """Per-pod hot-plugged NIC, switched by the host bridge.

    §3.1 allows the orchestrator to name the host-level networking
    domain (the bridge) that owns the new NIC — the common bridge all
    VMs share, or a tenant-specific bridge.  Register one plugin
    instance per tenant domain::

        orch.register_plugin(BrFusionPlugin(bridge="tenant-a",
                                            name="brfusion-tenant-a"))
    """

    supports_split = False

    def __init__(self, bridge: str | None = None,
                 name: str | None = None,
                 nic_budget: int | None = None) -> None:
        #: Host-level networking domain (bridge) new NICs attach to;
        #: ``None`` means the common bridge shared by all VMs.
        self.bridge = bridge
        self.name = name or "brfusion"
        #: Max hot-plugged pod NICs per VM (``None`` = unlimited).  Real
        #: VMs run out of PCI slots; exhausting the budget is a
        #: *deterministic* failure, so it is marked non-retryable and
        #: recovery falls straight back to NAT.
        self.nic_budget = nic_budget

    def attach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        if deployment.is_split:
            raise SchedulingError(
                f"{deployment.name}: BrFusion pods are VM-local"
            )
        node = orch.node(deployment.placement.node_names[0])
        if self.nic_budget is not None:
            # eth0 is the VM's primary NIC; everything beyond it is a
            # hot-plugged pod NIC competing for the budget.
            pod_nics = max(0, len(node.vm.virtio_nics()) - 1)
            if pod_nics >= self.nic_budget:
                raise HotplugError(
                    f"{node.name}: vNIC budget exhausted "
                    f"({pod_nics}/{self.nic_budget} pod NICs)",
                    vm=node.name, device="nic", retryable=False,
                )

        # Steps 1–2: orchestrator → VMM, VMM provisions the NIC.
        nic = orch.vmm.add_nic(node.vm, bridge=self.bridge)
        # Record the NIC before the agent step so a failed configure
        # can still be rolled back through detach().
        deployment.plugin_state["pod_nic"] = nic
        # Step 3: the VMM reports an identifier — the MAC address.
        mac = nic.mac
        assert mac is not None
        # Step 4: the agent configures the NIC inside the pod.
        bridge_name = self.bridge or orch.host.default_bridge.name
        network = orch.host.bridge_network(bridge_name)
        address = orch.host.allocate_address(bridge_name)
        carrier = deployment.containers[deployment.spec.containers[0].name]
        orch.agent(node.name).configure_nic(
            mac, carrier, address, network, gateway=network.host(1)
        )

        deployment.plugin_state["pod_address"] = address
        for cspec in deployment.spec.containers:
            deployment.intra_addresses[cspec.name] = LOCALHOST
            deployment.containers[cspec.name].network_mode = "provided-nic"
            for _proto, _host_port, cont_port in cspec.publish:
                # No guest DNAT: the pod address is directly reachable.
                deployment.external_endpoints[cspec.name] = (address, cont_port)
        self.note_attach(deployment, mac=str(mac), address=str(address))

    def detach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        nic = deployment.plugin_state.get("pod_nic")
        if nic is not None and nic.mac is not None:
            node = orch.node(deployment.placement.node_names[0])
            if node.vm.find_nic_by_mac(nic.mac) is not None:
                orch.vmm.remove_nic(node.vm, nic.mac)
        self.reset_wiring(deployment, "pod_nic", "pod_address")
        self.note_detach(deployment)

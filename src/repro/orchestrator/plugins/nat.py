"""The default CNI: Docker bridge + NAT inside the VM."""

from __future__ import annotations

import typing as t

from repro.errors import SchedulingError
from repro.net.addresses import Ipv4Address
from repro.orchestrator.cni import CniPlugin

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cluster import Deployment, Orchestrator

LOCALHOST = Ipv4Address.parse("127.0.0.1")


def union_publish(deployment: "Deployment") -> list[tuple[str, int, int]]:
    """All published ports of the pod, in container order."""
    ports: list[tuple[str, int, int]] = []
    for cspec in deployment.spec.containers:
        ports.extend(cspec.publish)
    return ports


class NatPlugin(CniPlugin):
    """Pod networking through the guest's docker0 bridge and NAT rules."""

    name = "nat"
    supports_split = False

    def attach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        if deployment.is_split:
            raise SchedulingError(
                f"{deployment.name}: NAT networking is VM-local; "
                "cross-VM pods need hostlo or overlay"
            )
        node_name = deployment.placement.node_names[0]
        node = orch.node(node_name)
        carrier = deployment.containers[deployment.spec.containers[0].name]
        node.engine.setup_bridge_network(carrier, publish=union_publish(deployment))
        vm_ip = node.vm.primary_nic.primary_ip
        assert vm_ip is not None
        for cspec in deployment.spec.containers:
            deployment.intra_addresses[cspec.name] = LOCALHOST
            deployment.containers[cspec.name].network_mode = "bridge"
            for proto, host_port, _cont_port in cspec.publish:
                del proto
                deployment.external_endpoints[cspec.name] = (vm_ip, host_port)
        self.note_attach(deployment, published=len(union_publish(deployment)))

    def detach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        node = orch.node(deployment.placement.node_names[0])
        carrier = deployment.containers[deployment.spec.containers[0].name]
        node.engine.teardown_bridge_network(carrier)
        self.reset_wiring(deployment)
        self.note_detach(deployment)

"""Docker Overlay CNI plugin — the state-of-the-art comparison point.

Each pod gets its own VXLAN overlay network; every fragment namespace
is connected to the overlay bridge of its VM through a veth pair, and
fragments on different VMs talk through VXLAN encapsulation over the
underlay (the VMs' primary NICs and the host bridge).
"""

from __future__ import annotations

import typing as t

from repro.containers.overlay import OverlayNetwork
from repro.net.addresses import Ipv4Address
from repro.orchestrator.cni import CniPlugin

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cluster import Deployment, Orchestrator


class OverlayPlugin(CniPlugin):
    """Cross-VM pod networking over VXLAN."""

    name = "overlay"
    supports_split = True

    def attach(self, orch: "Orchestrator", deployment: "Deployment") -> None:
        subnet = orch.overlay_subnets.allocate()
        overlay = OverlayNetwork(
            f"ov-{deployment.name}", subnet, vni=orch.next_vni()
        )
        deployment.plugin_state["overlay"] = overlay

        fragment_address: dict[str, Ipv4Address] = {}
        for node_name in deployment.placement.node_names:
            node = orch.node(node_name)
            carrier = self._fragment_carrier(deployment, node_name)
            fragment_address[node_name] = overlay.connect(node.vm, carrier)

        for cspec in deployment.spec.containers:
            node_name = deployment.placement.node_of(cspec.name)
            deployment.intra_addresses[cspec.name] = fragment_address[node_name]
            deployment.containers[cspec.name].network_mode = "overlay"
            vm_ip = orch.node(node_name).vm.primary_nic.primary_ip
            assert vm_ip is not None
            for _proto, host_port, _cont in cspec.publish:
                deployment.external_endpoints[cspec.name] = (vm_ip, host_port)
        self.note_attach(deployment, vni=overlay.vni, subnet=str(subnet))

    @staticmethod
    def _fragment_carrier(deployment: "Deployment", node_name: str):
        for cname, assigned in deployment.placement.assignments:
            if assigned == node_name:
                return deployment.containers[cname]
        raise AssertionError(f"no container on {node_name}")  # pragma: no cover

"""Nodes: VMs enrolled as scheduling targets."""

from __future__ import annotations

from repro.containers.engine import ContainerEngine
from repro.errors import CapacityError
from repro.virt.vm import VirtualMachine


class Node:
    """One schedulable node (a VM) with tracked resource allocations."""

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.engine = ContainerEngine(vm)
        self.cpu_capacity = float(vm.vcpus)
        self.memory_capacity = float(vm.memory_gb)
        self.cpu_allocated = 0.0
        self.memory_allocated = 0.0
        #: Scheduling eligibility (Kubernetes "Ready" condition): a
        #: crashed VM's node is cordoned until the VM restarts.
        self.ready = True

    @property
    def name(self) -> str:
        return self.vm.name

    # -- capacity -----------------------------------------------------------
    @property
    def cpu_free(self) -> float:
        return self.cpu_capacity - self.cpu_allocated

    @property
    def memory_free(self) -> float:
        return self.memory_capacity - self.memory_allocated

    def fits(self, cpu: float, memory_gb: float) -> bool:
        if not self.ready:
            return False
        return cpu <= self.cpu_free + 1e-9 and memory_gb <= self.memory_free + 1e-9

    def allocate(self, cpu: float, memory_gb: float) -> None:
        if not self.fits(cpu, memory_gb):
            raise CapacityError(
                f"{self.name}: cannot allocate cpu={cpu} mem={memory_gb} "
                f"(free: cpu={self.cpu_free:.2f} mem={self.memory_free:.2f})"
            )
        self.cpu_allocated += cpu
        self.memory_allocated += memory_gb

    def release(self, cpu: float, memory_gb: float) -> None:
        self.cpu_allocated = max(0.0, self.cpu_allocated - cpu)
        self.memory_allocated = max(0.0, self.memory_allocated - memory_gb)

    def requested_score(self) -> float:
        """Kubernetes "most requested" score: mean requested fraction."""
        cpu_frac = self.cpu_allocated / self.cpu_capacity if self.cpu_capacity else 0.0
        mem_frac = (
            self.memory_allocated / self.memory_capacity
            if self.memory_capacity else 0.0
        )
        return 0.5 * (cpu_frac + mem_frac)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Node {self.name!r} cpu {self.cpu_allocated:.1f}/"
            f"{self.cpu_capacity:.1f} mem {self.memory_allocated:.1f}/"
            f"{self.memory_capacity:.1f}>"
        )

"""The orchestrator proper: nodes, deployments, plugin dispatch."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.containers.container import Container
from repro.errors import (
    CapacityError,
    ConfigurationError,
    HotplugError,
    RecoveryExhaustedError,
    ReproError,
    SchedulingError,
)
from repro.faults.recovery import RecoveryPolicy
from repro.net.addresses import Ipv4Address, SubnetAllocator, cidr
from repro.net.namespace import NetworkNamespace
from repro.obs import metrics as _active_metrics
from repro.obs import tracer as _active_tracer
from repro.orchestrator.agent import VmAgent
from repro.orchestrator.cni import CniPlugin
from repro.orchestrator.node import Node
from repro.orchestrator.pod import PodSpec
from repro.orchestrator.scheduler import MostRequestedScheduler, Placement
from repro.virt.mempipe import MempipeManager
from repro.virt.virtfs import VirtfsManager
from repro.virt.vm import VirtualMachine
from repro.virt.vmm import Vmm

#: Pod-private (hostlo) and overlay address pools.
POD_SUBNET_POOL = "10.88.0.0/16"
OVERLAY_SUBNET_POOL = "10.96.0.0/16"


@dataclasses.dataclass
class Deployment:
    """A deployed pod and everything the experiments need to drive it."""

    spec: PodSpec
    placement: Placement
    network: str
    fragments: dict[str, NetworkNamespace] = dataclasses.field(default_factory=dict)
    containers: dict[str, Container] = dataclasses.field(default_factory=dict)
    #: container name → address its peers use over the pod's localhost.
    intra_addresses: dict[str, Ipv4Address] = dataclasses.field(default_factory=dict)
    #: container name → (address, port) reachable from outside the pod.
    external_endpoints: dict[str, tuple[Ipv4Address, int]] = dataclasses.field(
        default_factory=dict
    )
    #: plugin-private resources (hostlo handle, overlay network, ...).
    plugin_state: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_split(self) -> bool:
        return self.placement.is_split

    def fragment_of(self, container: str) -> NetworkNamespace:
        return self.fragments[self.placement.node_of(container)]

    def namespace_of(self, container: str) -> NetworkNamespace:
        return self.containers[container].netns

    def intra_address(self, container: str) -> Ipv4Address:
        """The address peers use to reach *container* inside the pod."""
        try:
            return self.intra_addresses[container]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no intra-pod address for {container!r}"
            ) from None


def _default_cni_fallbacks() -> tuple[tuple[str, str], ...]:
    """CNI fallback pairs declared by the registered netstack backends.

    Imported lazily: ``repro.netstack`` is above this module in the
    layering (its backends build scenarios through the orchestrator).
    """
    from repro.netstack.registry import cni_fallbacks

    return cni_fallbacks()


class Orchestrator:
    """Datacenter-global controller with one agent per enrolled VM."""

    def __init__(
        self,
        vmm: Vmm,
        scheduler: MostRequestedScheduler | None = None,
        virtfs_available: bool = True,
        mempipe_available: bool = True,
        recovery: RecoveryPolicy | None = None,
    ):
        self.vmm = vmm
        self.host = vmm.host
        self.scheduler = scheduler or MostRequestedScheduler()
        #: How attach failures are handled (bounded retry + fallback).
        #: The default fallback chain is declared by the network-stack
        #: backends themselves (BrFusion names in_vm_nat), not here.
        self.recovery = recovery or RecoveryPolicy(
            fallbacks=_default_cni_fallbacks()
        )
        # Backoff jitter draws from its own named stream so enabling
        # recovery never perturbs any other RNG consumer.
        self._recovery_rng = self.host.rng.stream("recovery:backoff")
        #: Every recovery action taken, in order — the chaos experiment
        #: derives its per-run report from this (global metrics would
        #: bleed across same-process runs).
        self.recovery_log: list[dict[str, t.Any]] = []
        # §4.3 substrates: cross-VM volumes and shared memory.
        self.virtfs = VirtfsManager(available=virtfs_available)
        self.mempipe = MempipeManager(available=mempipe_available)
        self.nodes: dict[str, Node] = {}
        self.agents: dict[str, VmAgent] = {}
        self.deployments: dict[str, Deployment] = {}
        self._plugins: dict[str, CniPlugin] = {}
        self.pod_subnets = SubnetAllocator(cidr(POD_SUBNET_POOL), 24)
        self.overlay_subnets = SubnetAllocator(cidr(OVERLAY_SUBNET_POOL), 24)
        self._vni_seq = 100
        self._register_default_plugins()

    def _register_default_plugins(self) -> None:
        from repro.orchestrator.plugins import default_plugins

        for plugin in default_plugins():
            self.register_plugin(plugin)

    # -- plugins ---------------------------------------------------------
    def register_plugin(self, plugin: CniPlugin) -> None:
        if plugin.name in self._plugins:
            raise ConfigurationError(f"plugin {plugin.name!r} already registered")
        self._plugins[plugin.name] = plugin

    def plugin(self, name: str) -> CniPlugin:
        try:
            return self._plugins[name]
        except KeyError:
            raise ConfigurationError(
                f"no CNI plugin {name!r} (have: {sorted(self._plugins)})"
            ) from None

    def next_vni(self) -> int:
        self._vni_seq += 1
        return self._vni_seq

    # -- nodes ------------------------------------------------------------
    def enroll(self, vm: VirtualMachine) -> Node:
        """Register *vm* as a schedulable node."""
        if vm.name in self.nodes:
            raise ConfigurationError(f"node {vm.name!r} already enrolled")
        node = Node(vm)
        self.nodes[vm.name] = node
        self.agents[vm.name] = VmAgent(node)
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise SchedulingError(f"no node {name!r}") from None

    def agent(self, name: str) -> VmAgent:
        return self.agents[name]

    # -- deployment -----------------------------------------------------------
    def deploy_pod(
        self,
        spec: PodSpec,
        network: str = "nat",
        allow_split: bool = False,
        node: str | None = None,
    ) -> Deployment:
        """Schedule and wire *spec*; returns the live deployment.

        ``node`` pins the whole pod to one named node (a nodeSelector).
        """
        if spec.name in self.deployments:
            raise SchedulingError(f"pod {spec.name!r} already deployed")
        plugin = self.plugin(network)
        if allow_split and not plugin.supports_split:
            raise SchedulingError(
                f"plugin {network!r} cannot serve split pods; "
                "only hostlo/overlay can"
            )
        node_list = list(self.nodes.values())
        if node is not None:
            target = self.node(node)
            if not target.fits(spec.cpu, spec.memory_gb):
                raise CapacityError(
                    f"pod {spec.name!r} does not fit pinned node {node!r}"
                )
            placement = Placement(
                pod=spec,
                assignments=tuple((c.name, node) for c in spec.containers),
            )
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.event("sched.place", spec.name, policy="pinned",
                             split=False, nodes=node,
                             containers=len(spec.containers))
        elif allow_split:
            # §4.3 feasibility: volumes need VirtFS, shared memory needs
            # MemPipe; an infeasible pod silently degrades to whole-pod
            # placement (which may then fail on capacity).
            effective = spec
            if not spec.can_split_on(self.virtfs.available,
                                     self.mempipe.available):
                effective = dataclasses.replace(spec, splittable=False)
            placement = self.scheduler.place_split(node_list, effective)
        else:
            placement = self.scheduler.place_whole(node_list, spec)

        deployment = Deployment(spec=spec, placement=placement, network=network)
        # Account resources and create one pod namespace per fragment node.
        for cname, node_name in placement.assignments:
            cspec = spec.container(cname)
            self.node(node_name).allocate(cspec.cpu, cspec.memory_gb)
        for node_name in placement.node_names:
            node = self.node(node_name)
            deployment.fragments[node_name] = node.vm.create_namespace(
                f"pod:{spec.name}@{node_name}"
            )
        # Containers join their fragment's shared namespace.
        for cspec in spec.containers:
            node = self.node(placement.node_of(cspec.name))
            container = node.engine.create_container(
                f"{spec.name}/{cspec.name}",
                cspec.image,
                netns=deployment.fragments[node.name],
                cpu_request=cspec.cpu,
                memory_gb=cspec.memory_gb,
            )
            deployment.containers[cspec.name] = container

        try:
            self._attach_with_recovery(plugin, deployment)
        except ReproError:
            self._abort_deployment(deployment)
            raise
        if deployment.is_split:
            self._provision_shared_resources(deployment)

        for container in deployment.containers.values():
            container.mark_running(self.host.env.now)
        self.deployments[spec.name] = deployment
        return deployment

    # -- recovery --------------------------------------------------------------
    def _attach_with_recovery(self, plugin: CniPlugin,
                              deployment: Deployment) -> None:
        """Wire the pod, surviving hot-plug failures.

        Each failed attempt is rolled back through the plugin's
        ``detach`` (the attach/detach symmetry contract) and retried
        after an exponential-backoff delay.  Non-retryable failures —
        the VM is down, the vNIC budget is spent — skip the remaining
        retries.  Once retries are exhausted the policy's fallback
        plugin takes over (BrFusion → NAT by default); if none applies,
        :class:`RecoveryExhaustedError` carries the last cause.

        ``deploy_pod`` is synchronous, so backoff delays are accounted
        in the recovery log and the ``recover.backoff_s`` histogram
        rather than advancing the simulation clock.
        """
        retry = self.recovery.retry
        waited = 0.0
        attempt = 0
        last: HotplugError | None = None
        for attempt in range(1, retry.max_attempts + 1):
            try:
                plugin.attach(self, deployment)
            except HotplugError as exc:
                last = exc
                plugin.detach(self, deployment)  # roll back partial wiring
                if not exc.retryable or attempt == retry.max_attempts:
                    break
                delay = retry.backoff_s(attempt, self._recovery_rng)
                waited += delay
                self._record_recovery(
                    "retry", deployment, plugin.name,
                    attempt=attempt, backoff_s=delay, error=str(exc))
                _active_metrics().histogram(
                    "recover.backoff_s",
                    help="backoff before an attach retry (s)",
                ).observe(delay, plugin=plugin.name)
                continue
            if attempt > 1:
                self._record_recovery(
                    "retry-success", deployment, plugin.name,
                    attempts=attempt, waited_s=waited)
                _active_metrics().histogram(
                    "recover.latency_s",
                    help="total recovery delay until attach success (s)",
                ).observe(waited, plugin=plugin.name)
            return
        assert last is not None
        fallback = self.recovery.fallback_for(plugin.name)
        if fallback is not None and not deployment.is_split:
            self._record_recovery(
                "fallback", deployment, plugin.name,
                to=fallback, attempts=attempt, error=str(last))
            deployment.network = fallback
            self.plugin(fallback).attach(self, deployment)
            _active_metrics().histogram(
                "recover.latency_s",
                help="total recovery delay until attach success (s)",
            ).observe(waited, plugin=fallback)
            return
        raise RecoveryExhaustedError(
            f"{deployment.name}: {plugin.name} attach failed after "
            f"{attempt} attempt(s) and no fallback applies"
        ) from last

    def _record_recovery(self, action: str, deployment: Deployment,
                         plugin_name: str, **attrs: t.Any) -> None:
        entry: dict[str, t.Any] = {
            "action": action, "pod": deployment.name,
            "plugin": plugin_name, "time": self.host.env.now, **attrs,
        }
        self.recovery_log.append(entry)
        _active_metrics().counter(
            "recover.actions_total", help="recovery actions, by kind",
        ).inc(action=action, plugin=plugin_name)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event(f"recover.{action}", deployment.name,
                         plugin=plugin_name, **attrs)

    def _abort_deployment(self, deployment: Deployment) -> None:
        """Undo the scheduling side of a deploy whose attach failed."""
        for cname, node_name in deployment.placement.assignments:
            cspec = deployment.spec.container(cname)
            node = self.node(node_name)
            node.release(cspec.cpu, cspec.memory_gb)
            full_name = f"{deployment.name}/{cname}"
            if full_name in node.engine.containers:
                node.engine.remove_container(full_name)

    def handle_vm_crash(self, vm_name: str) -> list[str]:
        """Crash recovery: cordon the node, re-schedule its pods.

        Every deployment with a fragment on *vm_name* is torn down
        (best-effort — guest-side cleanup is moot once the VM is gone)
        and re-deployed on the surviving nodes, splitting when its
        plugin allows.  Returns the re-deployed pod names; pods that no
        longer fit anywhere are logged as failed reschedules.
        """
        node = self.node(vm_name)
        node.ready = False
        affected = sorted(
            (d for d in self.deployments.values()
             if vm_name in d.placement.node_names),
            key=lambda d: d.name,
        )
        recovered: list[str] = []
        for deployment in affected:
            spec, network = deployment.spec, deployment.network
            self._teardown_crashed(deployment)
            try:
                self.deploy_pod(
                    spec, network=network,
                    allow_split=self.plugin(network).supports_split,
                )
            except (SchedulingError, RecoveryExhaustedError) as exc:
                self._record_recovery("reschedule-failed", deployment,
                                      network, error=str(exc))
                continue
            recovered.append(spec.name)
            self._record_recovery("reschedule", deployment,
                                  self.deployments[spec.name].network,
                                  from_node=vm_name)
        return recovered

    def handle_hostlo_stall(self, hostlo_name: str, vm_name: str) -> int:
        """Degraded-mode recovery: evict a wedged hostlo queue.

        Called by the health watchdog when *vm_name*'s queue on
        *hostlo_name* stopped servicing its ring.  The queue is drained
        and removed so reflections stop piling onto it; the pod keeps
        running on its surviving fragments, and the eviction is
        surfaced in the recovery log (action ``hostlo-evict``) and the
        ``recover.actions_total`` counter.  Returns the number of
        frames that died with the queue.
        """
        drained = self.vmm.evict_hostlo_queue(hostlo_name, vm_name)
        for deployment in self.deployments.values():
            handle = deployment.plugin_state.get("hostlo")
            if getattr(handle, "name", None) != hostlo_name:
                continue
            degraded = deployment.plugin_state.setdefault(
                "degraded_nodes", []
            )
            if vm_name not in degraded:
                degraded.append(vm_name)
            self._record_recovery("hostlo-evict", deployment, "hostlo",
                                  node=vm_name, drained=drained)
        return drained

    def mark_node_ready(self, vm_name: str) -> Node:
        """Un-cordon *vm_name*, restarting its VM if necessary."""
        node = self.node(vm_name)
        if not node.vm.running:
            self.vmm.restart_vm(vm_name)
        node.ready = True
        return node

    def _teardown_crashed(self, deployment: Deployment) -> None:
        """Best-effort removal of a deployment whose VM died."""
        self.deployments.pop(deployment.name, None)
        try:
            self.plugin(deployment.network).detach(self, deployment)
        except ReproError:
            pass  # the VM-side wiring died with the VM
        for share in deployment.plugin_state.get("virtfs_shares", ()):
            for vm_name in list(share.mounts):
                share.unmount_from(vm_name)
            self.virtfs.remove_share(share.name)
        for channel in deployment.plugin_state.get("mempipe_channels", ()):
            self.mempipe.remove_channel(channel.name)
        for cname, node_name in deployment.placement.assignments:
            cspec = deployment.spec.container(cname)
            node = self.node(node_name)
            node.release(cspec.cpu, cspec.memory_gb)
            full_name = f"{deployment.name}/{cname}"
            try:
                node.engine.remove_container(full_name)
            except ReproError:
                node.engine.containers.pop(full_name, None)

    def _provision_shared_resources(self, deployment: Deployment) -> None:
        """§4.3: VirtFS mounts and MemPipe channels for a split pod."""
        spec = deployment.spec
        vms = [self.node(name).vm for name in deployment.placement.node_names]
        shares = []
        for volume in spec.volumes:
            share = self.virtfs.create_share(
                f"{spec.name}/{volume}", host_path=f"/srv/pods/{spec.name}/{volume}"
            )
            for vm in vms:
                share.mount_into(vm)
            shares.append(share)
        if shares:
            deployment.plugin_state["virtfs_shares"] = shares
        if spec.shared_memory:
            channels = []
            for i, vm_a in enumerate(vms):
                for vm_b in vms[i + 1:]:
                    channels.append(self.mempipe.create_channel(
                        f"{spec.name}/{vm_a.name}-{vm_b.name}", vm_a, vm_b
                    ))
            deployment.plugin_state["mempipe_channels"] = channels

    def remove_pod(self, name: str) -> None:
        try:
            deployment = self.deployments.pop(name)
        except KeyError:
            raise SchedulingError(f"no deployment {name!r}") from None
        self.plugin(deployment.network).detach(self, deployment)
        for share in deployment.plugin_state.get("virtfs_shares", ()):
            for vm_name in list(share.mounts):
                share.unmount_from(vm_name)
            self.virtfs.remove_share(share.name)
        for channel in deployment.plugin_state.get("mempipe_channels", ()):
            self.mempipe.remove_channel(channel.name)
        for cname, node_name in deployment.placement.assignments:
            cspec = deployment.spec.container(cname)
            node = self.node(node_name)
            node.release(cspec.cpu, cspec.memory_gb)
            node.engine.remove_container(f"{deployment.name}/{cname}")

    def deployment(self, name: str) -> Deployment:
        try:
            return self.deployments[name]
        except KeyError:
            raise SchedulingError(f"no deployment {name!r}") from None

"""Pod placement: the "most requested" policy, whole and split.

§5.3.1: among the nodes with enough free resources, the best node is
the one that currently has the most requested resources (a grouping
strategy).  Without Hostlo a pod must land whole on one node; with
Hostlo the scheduler may split it container-by-container.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import CapacityError
from repro.obs import tracer as _active_tracer
from repro.orchestrator.node import Node
from repro.orchestrator.pod import ContainerSpec, PodSpec


@dataclasses.dataclass(frozen=True)
class Placement:
    """Where each container of a pod goes: container name → node."""

    pod: PodSpec
    assignments: tuple[tuple[str, str], ...]  # (container, node name)

    @property
    def node_names(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for _, node in self.assignments:
            seen.setdefault(node, None)
        return tuple(seen)

    @property
    def is_split(self) -> bool:
        return len(self.node_names) > 1

    def node_of(self, container: str) -> str:
        for name, node in self.assignments:
            if name == container:
                return node
        raise CapacityError(f"no assignment for container {container!r}")


class MostRequestedScheduler:
    """Implements whole-pod and (Hostlo) split-pod placement.

    "Most requested" is a *grouping* strategy: new pods land on the
    fullest feasible node, which concentrates load and leaves whole
    nodes empty (cheap to release).  The spreading alternative is
    :class:`LeastRequestedScheduler`.
    """

    #: +1: prefer the fullest feasible node; -1: prefer the emptiest.
    direction = 1.0

    def _split_score(self, node: Node, cpu_frac: float, mem_frac: float,
                     chosen: t.Sequence[str]) -> float:
        """Score one feasible node for the next container of a split.

        *cpu_frac*/*mem_frac* include this pass's tentative placements;
        *chosen* is the node names already assigned fragments (in
        order).  The base policy ignores *chosen* — subclasses (the
        fabric's rack-aware scheduler) use it to keep fragments close.
        """
        del chosen
        return self.direction * 0.5 * (cpu_frac + mem_frac)

    def pick_node(self, nodes: t.Sequence[Node], cpu: float,
                  memory_gb: float) -> Node | None:
        """The feasible node with the best score, or None."""
        best: Node | None = None
        best_score = -float("inf")
        for node in nodes:
            if not node.fits(cpu, memory_gb):
                continue
            score = self.direction * node.requested_score()
            if score > best_score:
                best, best_score = node, score
        return best

    def place_whole(self, nodes: t.Sequence[Node], pod: PodSpec) -> Placement:
        """Classic Kubernetes: the whole pod on one node."""
        node = self.pick_node(nodes, pod.cpu, pod.memory_gb)
        if node is None:
            raise CapacityError(
                f"pod {pod.name!r} (cpu={pod.cpu}, mem={pod.memory_gb}GB) "
                f"fits on no node"
            )
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("sched.place", pod.name,
                         policy=type(self).__name__, split=False,
                         nodes=node.name, containers=len(pod.containers))
        return Placement(
            pod=pod,
            assignments=tuple((c.name, node.name) for c in pod.containers),
        )

    def place_split(self, nodes: t.Sequence[Node], pod: PodSpec) -> Placement:
        """Hostlo-enabled placement: containers may spread over nodes.

        Containers are placed biggest-first, each on the most-requested
        feasible node — the same greedy the cost simulation uses.
        Falls back to whole-pod placement when the pod is marked
        non-splittable (§4.3 volumes/shm feasibility).
        """
        if not pod.splittable:
            return self.place_whole(nodes, pod)
        ordered: list[ContainerSpec] = sorted(
            pod.containers, key=lambda c: (c.cpu, c.memory_gb), reverse=True
        )
        # Tentative allocations so one scheduling pass sees its own placements.
        tentative: dict[str, tuple[float, float]] = {}
        assignments: list[tuple[str, str]] = []

        def free(node: Node) -> tuple[float, float]:
            used_cpu, used_mem = tentative.get(node.name, (0.0, 0.0))
            return node.cpu_free - used_cpu, node.memory_free - used_mem

        for spec in ordered:
            best: Node | None = None
            # -inf, not -1: subclass scores (rack-distance penalties)
            # may be legitimately below the base policy's range.
            best_score = -float("inf")
            for node in nodes:
                if not node.ready:
                    continue
                cpu_free, mem_free = free(node)
                if spec.cpu > cpu_free + 1e-9 or spec.memory_gb > mem_free + 1e-9:
                    continue
                used_cpu, used_mem = tentative.get(node.name, (0.0, 0.0))
                cpu_frac = (node.cpu_allocated + used_cpu) / node.cpu_capacity
                mem_frac = (node.memory_allocated + used_mem) / node.memory_capacity
                score = self._split_score(
                    node, cpu_frac, mem_frac,
                    [node_name for _, node_name in assignments],
                )
                if score > best_score:
                    best, best_score = node, score
            if best is None:
                raise CapacityError(
                    f"container {spec.name!r} of pod {pod.name!r} fits nowhere"
                )
            used_cpu, used_mem = tentative.get(best.name, (0.0, 0.0))
            tentative[best.name] = (used_cpu + spec.cpu, used_mem + spec.memory_gb)
            assignments.append((spec.name, best.name))

        order = {c.name: i for i, c in enumerate(pod.containers)}
        assignments.sort(key=lambda pair: order[pair[0]])
        placement = Placement(pod=pod, assignments=tuple(assignments))
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("sched.place", pod.name,
                         policy=type(self).__name__, split=placement.is_split,
                         nodes=",".join(placement.node_names),
                         containers=len(pod.containers))
        return placement


class LeastRequestedScheduler(MostRequestedScheduler):
    """Kubernetes' spreading alternative: prefer the emptiest node.

    Spreading balances load but fragments capacity — the §5.3.1 cost
    simulation's grouping choice exists precisely because spreading
    makes the "return empty VMs" move rare.  Exposed for the scheduler
    ablation.
    """

    direction = -1.0

"""Pod and container specifications."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ContainerSpec:
    """One container of a pod: image plus resource requests."""

    name: str
    image: str
    cpu: float = 1.0        # vCPUs requested
    memory_gb: float = 0.5
    publish: tuple[tuple[str, int, int], ...] = ()  # (proto, host, cont)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("container spec needs a name")
        if self.cpu <= 0 or self.memory_gb <= 0:
            raise ConfigurationError(
                f"container {self.name!r}: requests must be positive"
            )


@dataclasses.dataclass(frozen=True)
class PodSpec:
    """A pod: logically coupled containers sharing a localhost.

    Splitting a pod across VMs needs more than hostlo (§4.3): shared
    ``volumes`` must be servable by a VirtFS-style multi-guest mount
    and ``shared_memory`` communication needs a MemPipe-style cross-VM
    channel.  ``splittable`` is the explicit opt-out; the orchestrator
    combines it with the platform's capabilities (see
    :meth:`can_split_on`).
    """

    name: str
    containers: tuple[ContainerSpec, ...]
    splittable: bool = True
    volumes: tuple[str, ...] = ()
    shared_memory: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pod spec needs a name")
        if not self.containers:
            raise ConfigurationError(f"pod {self.name!r} has no containers")
        names = [c.name for c in self.containers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"pod {self.name!r} has duplicate containers")
        if len(set(self.volumes)) != len(self.volumes):
            raise ConfigurationError(f"pod {self.name!r} has duplicate volumes")

    def can_split_on(self, virtfs_available: bool,
                     mempipe_available: bool) -> bool:
        """§4.3 feasibility: may this pod span VMs on this platform?"""
        if not self.splittable:
            return False
        if self.volumes and not virtfs_available:
            return False
        if self.shared_memory and not mempipe_available:
            return False
        return True

    @property
    def cpu(self) -> float:
        """Total vCPUs requested by the pod."""
        return sum(c.cpu for c in self.containers)

    @property
    def memory_gb(self) -> float:
        """Total memory requested by the pod."""
        return sum(c.memory_gb for c in self.containers)

    def container(self, name: str) -> ContainerSpec:
        for spec in self.containers:
            if spec.name == name:
                return spec
        raise ConfigurationError(f"pod {self.name!r} has no container {name!r}")


def pod(name: str, *containers: ContainerSpec, splittable: bool = True) -> PodSpec:
    """Convenience constructor: ``pod("web", ContainerSpec(...), ...)``."""
    return PodSpec(name=name, containers=tuple(containers), splittable=splittable)


def simple_pod(
    name: str,
    image: str,
    containers: int = 1,
    cpu: float = 1.0,
    memory_gb: float = 0.5,
    publish: t.Sequence[tuple[str, int, int]] = (),
) -> PodSpec:
    """A pod of *containers* identical containers (handy in tests)."""
    specs = tuple(
        ContainerSpec(
            name=f"c{i}", image=image, cpu=cpu, memory_gb=memory_gb,
            publish=tuple(publish) if i == 0 else (),
        )
        for i in range(containers)
    )
    return PodSpec(name=name, containers=specs)

"""The per-VM container engine (Docker-like).

The engine wires container network namespaces according to the modes
the paper compares:

* ``bridge`` — Docker's default: a ``docker0`` bridge in the guest,
  veth pair into the container, DNAT publish rules and masquerade.
  This is the "NAT" baseline whose duplicated virtualization layer
  BrFusion removes.
* ``provided-nic`` — BrFusion: an existing (hot-plugged) NIC is moved
  into the container namespace and configured there; no guest bridge,
  no guest NAT.
* ``pod`` — the container joins an existing shared pod namespace
  (SameNode intra-pod communication over the pod's loopback).
* hostlo endpoints are adopted with the same ``provided-nic``
  machinery (the agent does not care what backs the NIC).
"""

from __future__ import annotations

import typing as t

from repro.containers.container import Container
from repro.containers.image import ContainerImage, get_image
from repro.errors import ContainerError, TopologyError
from repro.net.addresses import (
    HostAllocator,
    Ipv4Address,
    Ipv4Network,
    cidr,
)
from repro.net.bridge import Bridge
from repro.net.devices import NetDevice, VethPair
from repro.net.netfilter import DnatRule, MasqueradeRule
from repro.virt.vm import VirtualMachine

#: Docker's default bridge subnet.
DOCKER_BRIDGE_CIDR = "172.17.0.0/16"

PublishSpec = t.Sequence[tuple[str, int, int]]  # (proto, host port, container port)


class ContainerEngine:
    """Container lifecycle + network wiring inside one VM."""

    def __init__(self, vm: VirtualMachine, name: str = "docker") -> None:
        self.vm = vm
        self.name = name
        self.containers: dict[str, Container] = {}
        self._bridge: Bridge | None = None
        self._bridge_net = cidr(DOCKER_BRIDGE_CIDR)
        self._addr_alloc = HostAllocator(self._bridge_net)
        self._veth_seq = 0

    # -- lifecycle ---------------------------------------------------------
    def create_container(
        self,
        name: str,
        image: ContainerImage | str,
        netns: t.Any = None,
        cpu_request: float = 1.0,
        memory_gb: float = 0.5,
    ) -> Container:
        """Create a container with a fresh (or shared *netns*) namespace."""
        if name in self.containers:
            raise ContainerError(f"container {name!r} already exists in {self.vm.name}")
        if isinstance(image, str):
            image = get_image(image)
        if netns is None:
            netns = self.vm.create_namespace(f"{self.vm.name}/{name}")
        container = Container(
            name=name,
            image=image,
            netns=netns,
            cpu_request=cpu_request,
            memory_gb=memory_gb,
        )
        self.containers[name] = container
        return container

    def container(self, name: str) -> Container:
        try:
            return self.containers[name]
        except KeyError:
            raise ContainerError(
                f"no container {name!r} in {self.vm.name}"
            ) from None

    def remove_container(self, name: str) -> None:
        container = self.container(name)
        container.mark_stopped()
        if container.network_mode == "bridge":
            self.teardown_bridge_network(container)
        del self.containers[name]

    # -- docker0 bridge + NAT (the paper's "NAT" baseline) ---------------------
    @property
    def bridge(self) -> Bridge:
        """The guest ``docker0`` bridge, created on first use."""
        if self._bridge is None:
            bridge = Bridge("docker0")
            bridge.assign_ip(self._bridge_net.host(1), self._bridge_net)
            self.vm.ns.attach(bridge)
            self.vm.ns.routes.add_on_link(self._bridge_net, "docker0")
            self.vm.ns.netfilter.add_masquerade(
                MasqueradeRule(self._bridge_net, "eth0")
            )
            self._bridge = bridge
        return self._bridge

    def setup_bridge_network(
        self, container: Container, publish: PublishSpec = ()
    ) -> Ipv4Address:
        """Wire *container* in Docker's default bridge+NAT mode."""
        if container.network_mode != "none":
            raise ContainerError(
                f"{container.name} already wired as {container.network_mode!r}"
            )
        bridge = self.bridge
        allocator = self.vm.host.mac_allocator
        pair = VethPair("eth0", f"veth{self._veth_seq}",
                        allocator.allocate(), allocator.allocate())
        self._veth_seq += 1
        address = self._addr_alloc.allocate()
        pair.a.assign_ip(address, self._bridge_net)
        container.netns.attach(pair.a)
        self.vm.ns.attach(pair.b)
        bridge.add_port(pair.b)
        container.netns.routes.add_on_link(self._bridge_net, "eth0")
        container.netns.routes.add_default("eth0", self._bridge_net.host(1))
        for proto, host_port, cont_port in publish:
            self.vm.ns.netfilter.add_dnat(
                DnatRule(proto, host_port, address, cont_port)
            )
        container.network_mode = "bridge"
        return address

    def teardown_bridge_network(self, container: Container) -> None:
        """Undo :meth:`setup_bridge_network` (veth, bridge port, DNAT).

        Idempotent: tearing down an unwired container is a no-op, so
        CNI ``detach`` and :meth:`remove_container` can both call it.
        """
        dev = container.netns.devices.get("eth0")
        if dev is not None and getattr(dev, "peer", None) is not None:
            peer = dev.peer
            address = dev.primary_ip
            if peer.bridge is not None:
                peer.bridge.remove_port(peer)
            if peer.namespace is not None:
                peer.namespace.detach(peer)
            container.netns.detach(dev)
            # Retract publish rules that pointed at this container.
            if address is not None:
                nf = self.vm.ns.netfilter
                nf.dnat_rules = [r for r in nf.dnat_rules
                                 if r.to_ip != address]
        if container.network_mode == "bridge":
            container.network_mode = "none"

    # -- provided NIC (BrFusion / hostlo endpoint adoption) ----------------------
    def adopt_nic(
        self,
        container: Container,
        nic: NetDevice,
        address: Ipv4Address,
        network: Ipv4Network,
        gateway: Ipv4Address | None = None,
        default_route: bool = True,
    ) -> None:
        """Move *nic* into the container namespace and configure it.

        This is the VM agent's half of BrFusion §3.1 step 4 (and of
        Hostlo §4.1 step 4 when *nic* is a hostlo endpoint).
        """
        if nic.namespace is None:
            raise TopologyError(f"{nic.name} is not attached to this VM")
        if nic.namespace.domain != self.vm.domain:
            raise TopologyError(
                f"{nic.name} belongs to {nic.namespace.domain}, not {self.vm.domain}"
            )
        container.netns.attach(nic)  # implicit move across namespaces
        nic.assign_ip(address, network)
        container.netns.routes.add_on_link(network, nic.name)
        if default_route and gateway is not None:
            container.netns.routes.add_default(nic.name, gateway)
        if container.network_mode == "none":
            container.network_mode = (
                "hostlo" if nic.kind == "hostlo_endpoint" else "provided-nic"
            )

    # -- pod namespaces -----------------------------------------------------------
    def join_pod_namespace(self, container: Container, pod_ns: t.Any) -> None:
        """Re-home *container* into a shared pod namespace (SameNode)."""
        if container.netns.devices and len(container.netns.devices) > 1:
            raise ContainerError(
                f"{container.name} already has network devices; "
                "join the pod namespace before wiring"
            )
        container.netns = pod_ns
        container.network_mode = "pod"

    # -- stats -----------------------------------------------------------------
    @property
    def running_count(self) -> int:
        return sum(1 for c in self.containers.values() if c.is_running)

    def iptables_rule_count(self) -> int:
        """Visible guest NAT rule count (feeds the fig 8 boot model)."""
        return self.vm.ns.netfilter.rule_count

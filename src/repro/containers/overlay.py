"""Docker-overlay-style VXLAN networks spanning several VMs.

One :class:`OverlayNetwork` owns an overlay subnet and a VNI.  Each VM
that joins gets an overlay bridge plus a VXLAN tunnel device enslaved
to it; remote VTEP entries are kept full-mesh, mirroring Docker's
gossip-driven forwarding tables.  Containers connect through veth pairs
into their VM's overlay bridge.
"""

from __future__ import annotations

from repro.containers.container import Container
from repro.errors import TopologyError
from repro.net.addresses import HostAllocator, Ipv4Address, Ipv4Network
from repro.net.bridge import Bridge
from repro.net.devices import VethPair, VxlanTunnel
from repro.virt.vm import VirtualMachine


class OverlayNetwork:
    """A VXLAN overlay shared by containers across VMs."""

    def __init__(self, name: str, subnet: Ipv4Network, vni: int) -> None:
        self.name = name
        self.subnet = subnet
        self.vni = vni
        self._alloc = HostAllocator(subnet)
        self._attachments: dict[str, tuple[VirtualMachine, Bridge, VxlanTunnel]] = {}
        self._locations: list[tuple[Ipv4Address, str]] = []  # container → VM
        self._veth_seq = 0

    # -- VM attachment ---------------------------------------------------------
    def attach_vm(self, vm: VirtualMachine) -> None:
        """Create this overlay's bridge + VXLAN device inside *vm*."""
        if vm.name in self._attachments:
            raise TopologyError(f"{vm.name} already attached to {self.name}")
        underlay_ip = vm.primary_nic.primary_ip
        if underlay_ip is None:
            raise TopologyError(f"{vm.name} has no underlay address")
        bridge = Bridge(f"ov-{self.name}")
        vm.ns.attach(bridge)
        vm.ns.routes.add_on_link(self.subnet, bridge.name)
        tunnel = VxlanTunnel(f"vx-{self.name}", vni=self.vni,
                             underlay_ip=underlay_ip)
        vm.ns.attach(tunnel)
        bridge.add_port(tunnel)
        # Docker keeps per-endpoint forwarding entries (gossiped): teach
        # the new VTEP where every existing container lives.
        for address, owner in self._locations:
            if owner != vm.name:
                owner_vm = self._attachments[owner][0]
                owner_underlay = owner_vm.primary_nic.primary_ip
                assert owner_underlay is not None
                tunnel.add_remote(Ipv4Network(address, 32), owner_underlay)
        self._attachments[vm.name] = (vm, bridge, tunnel)

    def is_attached(self, vm: VirtualMachine) -> bool:
        return vm.name in self._attachments

    def bridge_in(self, vm: VirtualMachine) -> Bridge:
        try:
            return self._attachments[vm.name][1]
        except KeyError:
            raise TopologyError(f"{vm.name} not attached to {self.name}") from None

    # -- container connection ------------------------------------------------------
    def connect(self, vm: VirtualMachine, container: Container) -> Ipv4Address:
        """Wire *container* (running in *vm*) onto this overlay."""
        if not self.is_attached(vm):
            self.attach_vm(vm)
        bridge = self.bridge_in(vm)
        allocator = vm.host.mac_allocator
        pair = VethPair("eth0", f"ov-veth{self._veth_seq}",
                        allocator.allocate(), allocator.allocate())
        self._veth_seq += 1
        address = self._alloc.allocate()
        pair.a.assign_ip(address, self.subnet)
        container.netns.attach(pair.a)
        vm.ns.attach(pair.b)
        bridge.add_port(pair.b)
        container.netns.routes.add_on_link(self.subnet, "eth0")
        container.network_mode = "overlay"
        # Announce the new endpoint to every other VTEP.
        underlay_ip = vm.primary_nic.primary_ip
        assert underlay_ip is not None
        for name, (_, _, tunnel) in self._attachments.items():
            if name != vm.name:
                tunnel.add_remote(Ipv4Network(address, 32), underlay_ip)
        self._locations.append((address, vm.name))
        return address

    @property
    def attached_vms(self) -> tuple[str, ...]:
        return tuple(sorted(self._attachments))

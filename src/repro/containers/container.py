"""The container object."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.containers.image import ContainerImage
from repro.net.namespace import NetworkNamespace

ContainerState = t.Literal["created", "running", "stopped"]


@dataclasses.dataclass
class Container:
    """One container inside a VM.

    ``netns`` may be private or shared with other containers of the
    same pod (the Kubernetes pod model); ``network_mode`` records how it
    was wired (``bridge``, ``provided-nic``, ``pod``, ``hostlo``,
    ``overlay``, ``none``).
    """

    name: str
    image: ContainerImage
    netns: NetworkNamespace
    network_mode: str = "none"
    cpu_request: float = 1.0
    memory_gb: float = 0.5
    state: ContainerState = "created"
    started_at: float | None = None

    def mark_running(self, now: float) -> None:
        self.state = "running"
        self.started_at = now

    def mark_stopped(self) -> None:
        self.state = "stopped"

    @property
    def is_running(self) -> bool:
        return self.state == "running"

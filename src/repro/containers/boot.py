"""The timed container start-up pipeline (fig 8).

Start-up time is defined exactly as in §5.2.4: the duration between
ordering the engine to create the container and the containerized
application sending its first message through a TCP socket.

The pipeline has three parts:

1. the engine-common work (runtime init, rootfs setup, namespace and
   cgroup creation) — identical across network modes;
2. the network setup — this is where NAT (veth + iptables programming,
   which grows with the guest's rule count) differs from BrFusion (QMP
   ``netdev_add``/``device_add`` plus the guest PCI probe);
3. the application's own start until its first TCP send.

Constants were calibrated so the resulting distributions reproduce the
fig 8 shape: BrFusion is slightly faster for ~75 % of runs (it skips
iptables entirely) but its hot-plug tail is heavier, so the top
quartiles overlap.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.containers.container import Container
from repro.containers.engine import ContainerEngine, PublishSpec
from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.virt.vmm import Vmm

# -- engine-common step profile: (mean seconds, lognormal sigma) --------
RUNTIME_INIT = (0.210, 0.12)     # containerd/runc init + rootfs snapshot
NAMESPACE_SETUP = (0.012, 0.15)  # clone(CLONE_NEW*) + cgroups
# -- NAT network setup ----------------------------------------------------
VETH_CREATE = (0.009, 0.15)
IPTABLES_BASE = (0.038, 0.18)    # several iptables invocations via libnetwork
IPTABLES_PER_RULE = 0.00035      # rule-list reload cost per existing rule
PORT_PROXY = (0.006, 0.20)       # docker-proxy spawn per published port
# -- BrFusion network setup ------------------------------------------------
AGENT_CONFIGURE = (0.008, 0.20)  # agent moves the NIC + addr/route config


@dataclasses.dataclass(frozen=True)
class BootRecord:
    """One measured container start."""

    container: str
    network_mode: str
    started_at: float
    total_s: float
    network_s: float


def _sample(rng: t.Any, profile: tuple[float, float]) -> float:
    mean, sigma = profile
    return mean * float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))


class BootTimer:
    """Runs timed container starts and records their durations."""

    def __init__(self, env: Environment, vmm: Vmm, seed_salt: str = "boot") -> None:
        self.env = env
        self.vmm = vmm
        self.rng = vmm.host.rng.fork(seed_salt).stream("boot")
        self.records: list[BootRecord] = []

    # -- public entry points --------------------------------------------------
    def boot_nat(
        self,
        engine: ContainerEngine,
        name: str,
        image: str,
        publish: PublishSpec = (("tcp", 8080, 80),),
    ) -> t.Generator:
        """Start a container in Docker bridge+NAT mode (process).

        Returns the :class:`BootRecord`.
        """
        t0 = self.env.now
        container = engine.create_container(name, image)
        yield from self._common_steps(engine)
        net_t0 = self.env.now
        yield self.env.timeout(_sample(self.rng, VETH_CREATE))
        rule_count = engine.iptables_rule_count()
        iptables = _sample(self.rng, IPTABLES_BASE) + IPTABLES_PER_RULE * rule_count
        yield self.env.timeout(iptables)
        engine.setup_bridge_network(container, publish=publish)
        for _ in publish:
            yield self.env.timeout(_sample(self.rng, PORT_PROXY))
        network_s = self.env.now - net_t0
        yield from self._app_start(engine, container)
        return self._record(container, t0, network_s)

    def boot_brfusion(
        self,
        engine: ContainerEngine,
        name: str,
        image: str,
        bridge: str | None = None,
    ) -> t.Generator:
        """Start a container in BrFusion mode (process).

        The network step asks the VMM for a hot-plugged NIC (§3.1) and
        the agent configures it inside the pod namespace.
        """
        t0 = self.env.now
        container = engine.create_container(name, image)
        yield from self._common_steps(engine)
        net_t0 = self.env.now
        nic = yield self.env.process(self.vmm.hotplug_nic(engine.vm, bridge=bridge))
        bridge_name = bridge or self.vmm.host.default_bridge.name
        network = self.vmm.host.bridge_network(bridge_name)
        address = self.vmm.host.allocate_address(bridge_name)
        yield self.env.timeout(_sample(self.rng, AGENT_CONFIGURE))
        engine.adopt_nic(container, nic, address, network,
                         gateway=network.host(1))
        network_s = self.env.now - net_t0
        yield from self._app_start(engine, container)
        return self._record(container, t0, network_s)

    # -- steps -------------------------------------------------------------
    def _common_steps(self, engine: ContainerEngine) -> t.Generator:
        yield self.env.timeout(_sample(self.rng, RUNTIME_INIT))
        yield engine.vm.cpu.execute(2.0e6, account="sys")  # runtime syscalls
        yield self.env.timeout(_sample(self.rng, NAMESPACE_SETUP))

    def _app_start(self, engine: ContainerEngine, container: Container) -> t.Generator:
        image = container.image
        start = image.app_start_s * float(
            self.rng.lognormal(
                mean=-0.5 * image.app_start_sigma**2, sigma=image.app_start_sigma
            )
        )
        yield engine.vm.cpu.execute(1.0e6, account="usr")
        yield self.env.timeout(start)
        container.mark_running(self.env.now)

    def _record(self, container: Container, t0: float, network_s: float) -> BootRecord:
        record = BootRecord(
            container=container.name,
            network_mode=container.network_mode,
            started_at=t0,
            total_s=self.env.now - t0,
            network_s=network_s,
        )
        self.records.append(record)
        return record

    # -- analysis helpers ---------------------------------------------------
    def totals(self, network_mode: str | None = None) -> list[float]:
        return [
            r.total_s
            for r in self.records
            if network_mode is None or r.network_mode == network_mode
        ]


def validate_publish(publish: PublishSpec) -> None:
    """Sanity-check a publish spec before feeding it to the engine."""
    for entry in publish:
        if len(entry) != 3:
            raise ConfigurationError(f"bad publish entry {entry!r}")
        proto, host_port, cont_port = entry
        if proto not in ("tcp", "udp"):
            raise ConfigurationError(f"bad publish proto {proto!r}")
        if not (0 < host_port < 65536 and 0 < cont_port < 65536):
            raise ConfigurationError(f"bad publish ports {entry!r}")

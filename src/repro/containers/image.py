"""Container images and their application start-up profiles."""

from __future__ import annotations

import dataclasses

from repro.errors import ContainerError


@dataclasses.dataclass(frozen=True)
class ContainerImage:
    """A container image.

    ``app_start_s`` is the mean time from process exec to the
    application's first outbound TCP message (the fig 8 "started"
    criterion); ``app_start_sigma`` the lognormal shape of its noise.
    """

    name: str
    size_mb: float
    app_start_s: float
    app_start_sigma: float = 0.20

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ContainerError(f"bad image size {self.size_mb!r}")
        if self.app_start_s <= 0:
            raise ContainerError(f"bad app start time {self.app_start_s!r}")


#: Images used throughout the experiments (sizes/start times typical of
#: the public images the paper ran).
IMAGES: dict[str, ContainerImage] = {
    img.name: img
    for img in (
        ContainerImage("netperf", size_mb=12.0, app_start_s=0.045),
        ContainerImage("memcached", size_mb=84.0, app_start_s=0.090),
        ContainerImage("nginx", size_mb=142.0, app_start_s=0.120),
        ContainerImage("kafka", size_mb=650.0, app_start_s=3.800),
        ContainerImage("memtier", size_mb=40.0, app_start_s=0.060),
        ContainerImage("wrk2", size_mb=15.0, app_start_s=0.040),
        ContainerImage("alpine", size_mb=6.0, app_start_s=0.020),
    )
}


def get_image(name: str) -> ContainerImage:
    """Look up a registered image by name."""
    try:
        return IMAGES[name]
    except KeyError:
        raise ContainerError(
            f"unknown image {name!r} (have: {sorted(IMAGES)})"
        ) from None

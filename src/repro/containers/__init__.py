"""Container substrate: a Docker-like engine running inside each VM.

* :class:`ContainerImage` / the :data:`IMAGES` registry — the images
  the paper's benchmarks run (netperf, memcached, nginx, kafka).
* :class:`Container` — one container: its network namespace lives
  inside the VM and is billed to the VM's vCPUs.
* :class:`ContainerEngine` — per-VM engine implementing the network
  modes the experiments compare: Docker's default ``bridge`` (NAT), an
  adopted hot-plugged NIC (BrFusion), joining a pod namespace
  (SameNode), adopting a hostlo endpoint, and Docker ``overlay``.
* :class:`OverlayNetwork` — VXLAN overlay spanning several VMs.
* :mod:`repro.containers.boot` — the timed container start-up pipeline
  measured by the fig 8 experiment.
"""

from repro.containers.container import Container
from repro.containers.engine import ContainerEngine
from repro.containers.image import IMAGES, ContainerImage
from repro.containers.overlay import OverlayNetwork

__all__ = [
    "Container",
    "ContainerEngine",
    "ContainerImage",
    "IMAGES",
    "OverlayNetwork",
]

"""Physical links between hosts.

The paper's testbed is a single server; hostlo is by construction a
single-host device (its queues are host-kernel queues).  This module
adds the missing piece for multi-host topologies — a wire between two
physical NICs — so the repository can also demonstrate *where hostlo's
reach ends*: a pod split across hosts has no hostlo option and must use
an overlay.

A link's capacity is modeled as a single-server resource whose "clock"
is the line rate: a ``wire`` stage with 8 cycles/byte then costs
``bytes × 8 / bandwidth_bps`` seconds of link time, so serialization
delay *and* congestion between flows sharing the wire emerge from the
same queueing machinery as CPU contention.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.net.devices import PhysicalNic
from repro.sim import CpuResource, Environment


class PhysicalLink:
    """A cable between two physical NICs (same L2 segment)."""

    def __init__(
        self,
        name: str,
        nic_a: PhysicalNic,
        nic_b: PhysicalNic,
        bandwidth_bps: float = 10e9,
        propagation_s: float = 2.0e-6,
    ) -> None:
        if nic_a is nic_b:
            raise TopologyError("a link needs two distinct NICs")
        for nic in (nic_a, nic_b):
            if nic.link is not None:
                raise TopologyError(f"{nic.name} is already cabled")
        if bandwidth_bps <= 0 or propagation_s < 0:
            raise TopologyError("bad link parameters")
        self.name = name
        self.nic_a = nic_a
        self.nic_b = nic_b
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_s = float(propagation_s)
        #: Administrative state; a partitioned link carries nothing.
        self.up = True
        #: Frame-level accounting (filled by the forwarding engine and
        #: by :meth:`set_down` draining in-flight queues): the fabric
        #: layer reads these to measure per-link utilisation, and the
        #: flow scheduler to find the least-loaded equal-cost path.
        self.frames_carried = 0
        self.bytes_carried = 0
        self.drops: dict[str, int] = {}
        nic_a.link = self
        nic_b.link = self

    def carry(self, payload_bytes: int) -> None:
        """Account one frame crossing the wire."""
        self.frames_carried += 1
        self.bytes_carried += payload_bytes

    def drop(self, reason: str, n: int = 1) -> None:
        """Account *n* frames dying on (or at the edge of) this wire."""
        self.drops[reason] = self.drops.get(reason, 0) + n

    def reset_counters(self) -> None:
        """Zero the carry/drop accounting (per-phase measurement)."""
        self.frames_carried = 0
        self.bytes_carried = 0
        self.drops = {}

    def set_down(self) -> int:
        """Partition the link (cable pulled / switch port down).

        Frames sitting in either endpoint's device queues die with the
        carrier: they are drained and accounted under the ``link.down``
        reason rather than silently vanishing, so the fabric ledger
        stays explainable.  Returns how many queued frames died.
        """
        self.up = False
        dead = 0
        for nic in (self.nic_a, self.nic_b):
            dead += nic.tx_queue.drain() + nic.rx_queue.drain()
        if dead:
            self.drop("link.down", dead)
        return dead

    def set_up(self) -> None:
        """Restore a partitioned link."""
        self.up = True

    @property
    def domain(self) -> str:
        """The transfer-engine domain carrying this link's wire time."""
        return f"link:{self.name}"

    def peer_of(self, nic: PhysicalNic) -> PhysicalNic:
        if nic is self.nic_a:
            return self.nic_b
        if nic is self.nic_b:
            return self.nic_a
        raise TopologyError(f"{nic.name} is not an end of link {self.name}")

    def make_pool(self, env: Environment) -> CpuResource:
        """The link's capacity resource (1 'core' clocked at line rate).

        Register it under :attr:`domain` on the transfer engine; the
        ``wire`` stage's 8 cycles/byte then yield byte-accurate
        serialization times.
        """
        return CpuResource(env, cores=1, freq_hz=self.bandwidth_bps,
                           name=self.domain)


def connect_hosts(name: str, host_a, host_b,
                  bandwidth_bps: float = 10e9,
                  propagation_s: float = 2.0e-6) -> PhysicalLink:
    """Cable two :class:`~repro.virt.host.PhysicalHost` default bridges.

    Creates an uplink NIC on each host, enslaves it to the host's
    default bridge (extending the L2 segment across the wire) and
    returns the link.  The caller must register ``link.make_pool(env)``
    under ``link.domain`` on any transfer engine that will carry
    traffic over it.
    """
    nic_a = PhysicalNic(f"uplink-{name}", host_a.mac_allocator.allocate(),
                        bandwidth_bps=bandwidth_bps)
    nic_b = PhysicalNic(f"uplink-{name}", host_b.mac_allocator.allocate(),
                        bandwidth_bps=bandwidth_bps)
    host_a.ns.attach(nic_a)
    host_b.ns.attach(nic_b)
    host_a.default_bridge.add_port(nic_a)
    host_b.default_bridge.add_port(nic_b)
    return PhysicalLink(name, nic_a, nic_b,
                        bandwidth_bps=bandwidth_bps,
                        propagation_s=propagation_s)

"""Per-namespace routing tables with longest-prefix matching."""

from __future__ import annotations

import dataclasses

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Address, Ipv4Network, cidr

DEFAULT_ROUTE = cidr("0.0.0.0/0")


@dataclasses.dataclass(frozen=True)
class Route:
    """One routing entry.

    ``gateway=None`` means the destination is on-link through *device*.
    """

    destination: Ipv4Network
    device: str
    gateway: Ipv4Address | None = None
    metric: int = 0

    def __post_init__(self) -> None:
        if self.metric < 0:
            raise TopologyError(f"negative metric: {self.metric!r}")


class RoutingTable:
    """Longest-prefix-match table (lowest metric breaks prefix ties)."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, route: Route) -> None:
        self._routes.append(route)

    def add_on_link(self, network: Ipv4Network, device: str) -> None:
        self.add(Route(network, device))

    def add_default(self, device: str, gateway: Ipv4Address, metric: int = 0) -> None:
        self.add(Route(DEFAULT_ROUTE, device, gateway, metric))

    def remove_for_device(self, device: str) -> int:
        """Drop all routes through *device*; returns how many were dropped."""
        before = len(self._routes)
        self._routes = [r for r in self._routes if r.device != device]
        return before - len(self._routes)

    def lookup(self, destination: Ipv4Address) -> Route | None:
        """Best route for *destination*, or None if unroutable."""
        best: Route | None = None
        for route in self._routes:
            if destination not in route.destination:
                continue
            if best is None:
                best = route
                continue
            if route.destination.prefix_len > best.destination.prefix_len:
                best = route
            elif (
                route.destination.prefix_len == best.destination.prefix_len
                and route.metric < best.metric
            ):
                best = route
        return best

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)

"""Network namespaces: the unit of network isolation.

A namespace owns devices, a routing table and netfilter state, and is
billed to a CPU *domain* ("host" for the host kernel, ``"vm:<name>"``
for a guest kernel).  Container namespaces live inside a VM and share
the VM's domain — a container's network processing consumes vCPU time,
which is exactly the effect the paper's CPU-breakdown figures measure.
"""

from __future__ import annotations

import typing as t

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Address, Ipv4Network
from repro.net.devices import Loopback, NetDevice
from repro.net.netfilter import Netfilter
from repro.net.routing import RoutingTable

NamespaceKind = t.Literal["host", "guest", "container"]


class NetworkNamespace:
    """A named network namespace.

    Parameters
    ----------
    name: unique namespace name.
    kind: ``"host"``, ``"guest"`` or ``"container"``.
    domain: CPU-billing domain key (defaults: host→"host",
        guest/container must say which VM they run in).
    with_loopback: create the conventional ``lo`` device.
    """

    def __init__(
        self,
        name: str,
        kind: NamespaceKind = "host",
        domain: str | None = None,
        with_loopback: bool = True,
    ) -> None:
        if kind not in ("host", "guest", "container"):
            raise TopologyError(f"bad namespace kind {kind!r}")
        if domain is None:
            if kind != "host":
                raise TopologyError(f"{kind} namespace {name!r} needs a domain")
            domain = "host"
        self.name = name
        self.kind = kind
        self.domain = domain
        self.devices: dict[str, NetDevice] = {}
        self.routes = RoutingTable()
        self.netfilter = Netfilter()
        if with_loopback:
            lo = Loopback()
            lo.assign_ip(Ipv4Address.parse("127.0.0.1"),
                         Ipv4Network.parse("127.0.0.0/8"))
            self.attach(lo)

    # -- device management ---------------------------------------------------
    def attach(self, device: NetDevice) -> NetDevice:
        """Move *device* into this namespace."""
        if device.name in self.devices:
            raise TopologyError(f"{self.name} already has device {device.name!r}")
        if device.namespace is not None:
            device.namespace.detach(device)
        device.namespace = self
        self.devices[device.name] = device
        return device

    def detach(self, device: NetDevice) -> None:
        if self.devices.get(device.name) is not device:
            raise TopologyError(f"{device.name!r} is not in {self.name}")
        del self.devices[device.name]
        device.namespace = None
        self.routes.remove_for_device(device.name)

    def device(self, name: str) -> NetDevice:
        try:
            return self.devices[name]
        except KeyError:
            raise TopologyError(f"no device {name!r} in {self.name}") from None

    @property
    def loopback(self) -> Loopback | None:
        for dev in self.devices.values():
            if isinstance(dev, Loopback):
                return dev
        return None

    # -- lookups ----------------------------------------------------------
    def find_device_owning(self, address: Ipv4Address) -> NetDevice | None:
        """The local device that owns *address*, if any."""
        for dev in self.devices.values():
            if dev.owns_ip(address):
                return dev
        return None

    def is_local(self, address: Ipv4Address) -> bool:
        return self.find_device_owning(address) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<NetworkNamespace {self.name!r} kind={self.kind} "
            f"domain={self.domain} devices={sorted(self.devices)}>"
        )

"""A learning Ethernet bridge (Linux ``br0`` style)."""

from __future__ import annotations

import typing as t

from repro.errors import TopologyError
from repro.net.addresses import MacAddress
from repro.net.devices import NetDevice


class Bridge(NetDevice):
    """A software bridge: a set of enslaved ports plus a forwarding DB.

    The bridge is itself a device (it may own an IP and act as the
    subnet gateway, as both the Docker bridge and libvirt's default
    bridge do).
    """

    kind = "bridge"

    def __init__(self, name: str, mac: MacAddress | None = None) -> None:
        super().__init__(name, mac)
        self.ports: list[NetDevice] = []
        self._fdb: dict[MacAddress, NetDevice] = {}

    # -- port management ---------------------------------------------------
    def add_port(self, device: NetDevice) -> None:
        """Enslave *device* to this bridge."""
        if device is self:
            raise TopologyError("a bridge cannot enslave itself")
        if device in self.ports:
            raise TopologyError(f"{device.name} already a port of {self.name}")
        if device.bridge is not None:
            raise TopologyError(f"{device.name} already enslaved")
        self.ports.append(device)
        device.bridge = self

    def remove_port(self, device: NetDevice) -> None:
        if device not in self.ports:
            raise TopologyError(f"{device.name} is not a port of {self.name}")
        self.ports.remove(device)
        device.bridge = None
        # Flush learned entries pointing at the removed port.
        self._fdb = {mac: port for mac, port in self._fdb.items() if port is not device}

    def has_port(self, device: NetDevice) -> bool:
        return device in self.ports

    # -- forwarding database -------------------------------------------------
    def learn(self, mac: MacAddress, port: NetDevice) -> None:
        """Record that *mac* was seen behind *port*."""
        if port not in self.ports:
            raise TopologyError(f"{port.name} is not a port of {self.name}")
        self._fdb[mac] = port

    def lookup(self, mac: MacAddress) -> NetDevice | None:
        """The learned port for *mac*, or None (flood)."""
        return self._fdb.get(mac)

    def fdb_size(self) -> int:
        return len(self._fdb)

    def flood_ports(self, ingress: NetDevice | None = None) -> t.Iterator[NetDevice]:
        """All ports except the ingress one (unknown-destination flood)."""
        for port in self.ports:
            if port is not ingress:
                yield port

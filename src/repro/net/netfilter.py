"""Netfilter hooks: DNAT port-forwarding, masquerade, conntrack.

Only the pieces the paper's datapaths exercise are modeled: the
PREROUTING DNAT table (port-forwards set up by Docker/libvirt for
inbound traffic), the POSTROUTING masquerade table (source NAT toward
the outside), and a connection-tracking table whose size is observable
(rule and flow churn contributes to container start-up time in the
fig 8 experiment).
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Address, Ipv4Network


@dataclasses.dataclass(frozen=True)
class DnatRule:
    """PREROUTING rule: (proto, dst ip?, dst port) → (to_ip, to_port).

    ``match_ip=None`` matches any destination address (typical Docker
    ``-p`` publish rules match on the port alone).
    """

    proto: str
    match_port: int
    to_ip: Ipv4Address
    to_port: int
    match_ip: Ipv4Address | None = None

    def __post_init__(self) -> None:
        if self.proto not in ("tcp", "udp"):
            raise TopologyError(f"bad proto {self.proto!r}")
        for port in (self.match_port, self.to_port):
            if not 0 < port < 65536:
                raise TopologyError(f"bad port {port!r}")

    def matches(self, proto: str, dst_ip: Ipv4Address, dst_port: int) -> bool:
        if proto != self.proto or dst_port != self.match_port:
            return False
        return self.match_ip is None or dst_ip == self.match_ip


@dataclasses.dataclass(frozen=True)
class MasqueradeRule:
    """POSTROUTING rule: source-NAT traffic from *source_net* leaving
    through *out_device* (by name)."""

    source_net: Ipv4Network
    out_device: str

    def matches(self, src_ip: Ipv4Address, out_device: str) -> bool:
        return out_device == self.out_device and src_ip in self.source_net


@dataclasses.dataclass(frozen=True)
class FlowKey:
    proto: str
    src_ip: Ipv4Address
    src_port: int
    dst_ip: Ipv4Address
    dst_port: int


@dataclasses.dataclass(frozen=True)
class ForwardDropRule:
    """FORWARD-chain drop: packets from *source_net* to *dest_net* that
    merely transit this namespace are discarded (tenant isolation)."""

    source_net: Ipv4Network
    dest_net: Ipv4Network

    def matches(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> bool:
        return src_ip in self.source_net and dst_ip in self.dest_net


class Netfilter:
    """Per-namespace netfilter state."""

    def __init__(self) -> None:
        self.dnat_rules: list[DnatRule] = []
        self.masq_rules: list[MasqueradeRule] = []
        self.forward_drop_rules: list[ForwardDropRule] = []
        self._conntrack: dict[FlowKey, FlowKey] = {}

    # -- rule management ---------------------------------------------------
    def add_dnat(self, rule: DnatRule) -> None:
        for existing in self.dnat_rules:
            if (existing.proto, existing.match_ip, existing.match_port) == (
                rule.proto, rule.match_ip, rule.match_port,
            ):
                raise TopologyError(
                    f"duplicate DNAT for {rule.proto}/{rule.match_port}"
                )
        self.dnat_rules.append(rule)

    def add_masquerade(self, rule: MasqueradeRule) -> None:
        self.masq_rules.append(rule)

    def remove_dnat(self, proto: str, match_port: int) -> None:
        before = len(self.dnat_rules)
        self.dnat_rules = [
            r for r in self.dnat_rules
            if not (r.proto == proto and r.match_port == match_port)
        ]
        if len(self.dnat_rules) == before:
            raise TopologyError(f"no DNAT rule for {proto}/{match_port}")

    def add_forward_drop(self, source_net: Ipv4Network,
                         dest_net: Ipv4Network) -> None:
        self.forward_drop_rules.append(ForwardDropRule(source_net, dest_net))

    def forward_dropped(self, src_ip: Ipv4Address,
                        dst_ip: Ipv4Address) -> bool:
        """Would the FORWARD chain discard this transiting flow?"""
        return any(
            r.matches(src_ip, dst_ip) for r in self.forward_drop_rules
        )

    @property
    def rule_count(self) -> int:
        return (len(self.dnat_rules) + len(self.masq_rules)
                + len(self.forward_drop_rules))

    @property
    def active(self) -> bool:
        """True when any NAT processing is configured (hooks engaged)."""
        return bool(self.dnat_rules or self.masq_rules)

    # -- packet-time operations ----------------------------------------------
    def apply_dnat(
        self, proto: str, dst_ip: Ipv4Address, dst_port: int
    ) -> tuple[Ipv4Address, int, bool]:
        """PREROUTING: translated (ip, port, hit?) for an inbound packet."""
        for rule in self.dnat_rules:
            if rule.matches(proto, dst_ip, dst_port):
                return rule.to_ip, rule.to_port, True
        return dst_ip, dst_port, False

    def masquerades(self, src_ip: Ipv4Address, out_device: str) -> bool:
        """POSTROUTING: would this flow be source-NATted?"""
        return any(r.matches(src_ip, out_device) for r in self.masq_rules)

    def track(self, key: FlowKey, translated: FlowKey) -> None:
        """Record a conntrack entry for an established flow."""
        self._conntrack[key] = translated

    def tracked(self, key: FlowKey) -> FlowKey | None:
        return self._conntrack.get(key)

    @property
    def conntrack_size(self) -> int:
        return len(self._conntrack)

    def flush_conntrack(self) -> None:
        self._conntrack.clear()

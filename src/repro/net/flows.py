"""Per-flow accounting over the frame-level data plane.

A :class:`FlowTable` aggregates every frame the forwarding engine
injects into per-flow statistics — frames, bytes, deliveries, drops
attributed by the conservation ledger's reason labels, hop counts and
per-hop latencies — keyed by what the *sender* asked for: source and
destination address, protocol, destination port, and the source
namespace's pod/VM label (its CPU-billing domain).  DNAT rewrites on
the way do not split a flow, and VXLAN *outer* frames are never
recorded (the engine only accounts the inner frame it was asked to
send, matching the ledger rule from the reliability layer).

The table is constant-memory per flow (counters plus fixed-bucket
histograms, never raw samples) and exports through the existing
:class:`repro.obs.MetricsRegistry`; :func:`FlowTable.top_flows`
renders the quick who-is-talking-to-whom answer as text.

Like :mod:`repro.net.capture`, one **active table** may be installed
as a module global (``flows.use(table)``) — the harness ``--flows``
flag does exactly that — and an uninstrumented run pays one ``None``
check per send.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as t

from repro.obs import metrics as _active_metrics
from repro.obs.metrics import Histogram, MetricsRegistry

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.capture import Hop

#: Hop-latency buckets (simulated seconds): the capture tick (1 ns)
#: up to a leisurely millisecond per hop.
HOP_LATENCY_BUCKETS = (
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3,
)

#: Hop-count buckets: BrFusion-short chains to overlay-long ones.
HOP_COUNT_BUCKETS = (2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)


def flow_signature(src_ip: t.Any, dst_ip: t.Any, proto: str,
                   dst_port: int) -> str:
    """The canonical textual flow identity (the 4-tuple the sender
    dialled).  This is the string ECMP hashing and elephant pinning key
    on, so every layer that needs "same flow, same decision" must build
    it here and nowhere else."""
    return f"{src_ip}>{dst_ip}/{proto}:{dst_port}"


@dataclasses.dataclass(frozen=True, order=True)
class FlowKey:
    """What identifies a flow: the 4-tuple the sender dialled, plus
    the sending pod/VM label."""

    src_ip: str
    dst_ip: str
    proto: str
    dst_port: int
    src_label: str

    def __str__(self) -> str:
        return (f"{self.src_ip}->{self.dst_ip}:{self.dst_port}/"
                f"{self.proto} [{self.src_label}]")

    @property
    def signature(self) -> str:
        """The ECMP hash key for this flow (label-independent)."""
        return flow_signature(self.src_ip, self.dst_ip, self.proto,
                              self.dst_port)


class FlowStats:
    """Aggregates for one flow (constant memory)."""

    __slots__ = ("frames", "bytes", "delivered", "drops", "dst_label",
                 "hop_counts", "hop_latency")

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.delivered = 0
        #: Drops attributed by the forwarding ledger's reason labels.
        self.drops: dict[str, int] = {}
        #: The destination's pod/VM label, learned on first delivery.
        self.dst_label = "-"
        self.hop_counts = Histogram("flow.hops", HOP_COUNT_BUCKETS)
        self.hop_latency = Histogram("flow.hop_latency_s",
                                     HOP_LATENCY_BUCKETS)

    @property
    def dropped(self) -> int:
        return sum(self.drops.values())

    def top_drop_reason(self) -> str:
        if not self.drops:
            return "-"
        reason = max(self.drops, key=lambda r: (self.drops[r], r))
        return f"{reason}:{self.drops[reason]}"


class RollupStats:
    """Aggregates for one rollup group (node, rack, pod label...)."""

    __slots__ = ("flows", "frames", "bytes", "delivered", "drops")

    def __init__(self) -> None:
        self.flows = 0
        self.frames = 0
        self.bytes = 0
        self.delivered = 0
        self.drops: dict[str, int] = {}

    def absorb(self, stats: FlowStats) -> None:
        self.flows += 1
        self.frames += stats.frames
        self.bytes += stats.bytes
        self.delivered += stats.delivered
        for reason, n in stats.drops.items():
            self.drops[reason] = self.drops.get(reason, 0) + n

    @property
    def dropped(self) -> int:
        return sum(self.drops.values())

    def top_drop_reason(self) -> str:
        if not self.drops:
            return "-"
        reason = max(self.drops, key=lambda r: (self.drops[r], r))
        return f"{reason}:{self.drops[reason]}"


class FlowTable:
    """The flow accounting table the forwarding engine records into."""

    def __init__(self) -> None:
        self._flows: dict[FlowKey, FlowStats] = {}

    # -- recording (called by ForwardingEngine.send) -----------------------
    def record(
        self,
        key: FlowKey,
        payload_bytes: int,
        delivered: bool,
        drop_reason: str | None = None,
        dst_label: str | None = None,
        trail: t.Sequence["Hop"] = (),
        hop_count: int | None = None,
    ) -> FlowStats:
        """Account one frame walk under *key*."""
        stats = self._flows.get(key)
        if stats is None:
            stats = self._flows[key] = FlowStats()
        stats.frames += 1
        stats.bytes += payload_bytes
        if delivered:
            stats.delivered += 1
            if dst_label:
                stats.dst_label = dst_label
        elif drop_reason is not None:
            stats.drops[drop_reason] = stats.drops.get(drop_reason, 0) + 1
        hops = hop_count if hop_count is not None else len(trail)
        if hops:
            stats.hop_counts.observe(float(hops))
        for earlier, later in zip(trail, trail[1:]):
            stats.hop_latency.observe(later.ts - earlier.ts)
        return stats

    # -- reading -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def get(self, key: FlowKey) -> FlowStats | None:
        return self._flows.get(key)

    def items(self) -> tuple[tuple[FlowKey, FlowStats], ...]:
        return tuple(sorted(self._flows.items()))

    def total_frames(self) -> int:
        return sum(s.frames for s in self._flows.values())

    def total_bytes(self) -> int:
        return sum(s.bytes for s in self._flows.values())

    def drop_totals(self) -> dict[str, int]:
        """Drops by reason across every flow — must equal the
        forwarding engine's conservation ledger for the same period."""
        totals: dict[str, int] = {}
        for stats in self._flows.values():
            for reason, n in stats.drops.items():
                totals[reason] = totals.get(reason, 0) + n
        return totals

    def rollup(
        self,
        group: "str | t.Callable[[FlowKey, FlowStats], str]" = "src_label",
    ) -> dict[str, "RollupStats"]:
        """Aggregate the table by a coarser grain than the flow.

        *group* is either a :class:`FlowKey` attribute name
        (``"src_label"``, ``"dst_ip"``, ...), the string
        ``"dst_label"`` (learned per delivery, lives on the stats), or
        a callable ``(key, stats) -> group name`` — the fabric
        experiments pass the tree's host→rack mapping to report
        per-rack traffic.
        """
        if callable(group):
            grouper = group
        elif group == "dst_label":
            def grouper(key: FlowKey, stats: FlowStats) -> str:
                del key
                return stats.dst_label
        else:
            def grouper(key: FlowKey, stats: FlowStats) -> str:
                del stats
                return str(getattr(key, group))  # type: ignore[arg-type]
        out: dict[str, RollupStats] = {}
        for key, stats in self._flows.items():
            name = grouper(key, stats)
            bucket = out.get(name)
            if bucket is None:
                bucket = out[name] = RollupStats()
            bucket.absorb(stats)
        return out

    def render_rollup(
        self,
        group: "str | t.Callable[[FlowKey, FlowStats], str]" = "src_label",
        title: str = "rollup",
    ) -> str:
        """A text table of :meth:`rollup`, heaviest group first."""
        grouped = self.rollup(group)
        if not grouped:
            return "(no flows recorded)"
        ranked = sorted(grouped.items(),
                        key=lambda item: (-item[1].bytes, item[0]))
        header = ["group", "flows", "frames", "bytes", "delivered",
                  "drops", "top drop"]
        rows = [
            [name, str(agg.flows), str(agg.frames), str(agg.bytes),
             str(agg.delivered), str(agg.dropped), agg.top_drop_reason()]
            for name, agg in ranked
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines = [f"== flow {title}: {len(rows)} groups, "
                 f"{len(self._flows)} flows =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    # -- export ------------------------------------------------------------
    def export_metrics(self, registry: MetricsRegistry | None = None) -> None:
        """Fold the table into a :class:`MetricsRegistry` (the active
        one by default): labelled counters per flow, drop reasons
        attributed, a gauge for table size."""
        registry = registry if registry is not None else _active_metrics()
        frames = registry.counter(
            "flows.frames_total", help="frames accounted per flow")
        octets = registry.counter(
            "flows.bytes_total", help="payload bytes accounted per flow")
        dropped = registry.counter(
            "flows.frames_dropped",
            help="per-flow drops, attributed by ledger reason")
        for key, stats in self._flows.items():
            labels = dict(src=key.src_ip, dst=key.dst_ip, proto=key.proto,
                          port=key.dst_port, pod=key.src_label)
            frames.inc(stats.frames, **labels)
            octets.inc(stats.bytes, **labels)
            for reason, n in stats.drops.items():
                dropped.inc(n, reason=reason, **labels)
        registry.gauge(
            "flows.active", help="distinct flows in the flow table",
        ).set(float(len(self._flows)))

    def top_flows(self, top: int = 10) -> str:
        """A text table of the heaviest flows by bytes."""
        if not self._flows:
            return "(no flows recorded)"
        ranked = sorted(
            self._flows.items(),
            key=lambda item: (-item[1].bytes, item[0]),
        )[:top]
        header = ["flow", "dst pod/vm", "frames", "bytes", "delivered",
                  "drops", "top drop", "hops p50"]
        rows: list[list[str]] = []
        for key, stats in ranked:
            rows.append([
                str(key), stats.dst_label, str(stats.frames),
                str(stats.bytes), str(stats.delivered), str(stats.dropped),
                stats.top_drop_reason(),
                f"{stats.hop_counts.quantile(0.5):g}"
                if stats.hop_counts.count() else "-",
            ])
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines = [
            f"== flow table: top {len(rows)} of {len(self._flows)} flows "
            f"({self.total_frames()} frames, {self.total_bytes()} bytes) =="
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


# -- the active table (module global, like capture) ------------------------
_ACTIVE: FlowTable | None = None


def active_table() -> FlowTable | None:
    """The installed flow table, or ``None`` (the default)."""
    return _ACTIVE


def install(table: FlowTable) -> None:
    """Make *table* the one forwarding engines record into."""
    global _ACTIVE
    _ACTIVE = table


def uninstall() -> None:
    """Back to the default: no flow accounting."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def use(table: FlowTable) -> t.Iterator[FlowTable]:
    """Install *table* for the enclosed block, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = table
    try:
        yield table
    finally:
        _ACTIVE = previous

"""Reliable transfer over a lossy datapath: sliding-window ARQ.

The :class:`~repro.net.transfer.TransferEngine` plays a message along a
:class:`~repro.net.path.Datapath` and always "succeeds" — loss lives in
the frame-level forwarding engine and in fault plans, invisible to the
analytic datapath.  This module closes that gap: a
:class:`ReliableTransfer` carries a batch of messages over a path while
consulting the *active fault injector* at the same stage granularity
the forwarding engine uses (``wire`` → ``link.loss``/``link.corrupt``,
``bridge_fwd`` → ``frame.drop``, ``hostlo_reflect`` → ``hostlo.drop``),
and recovers from losses the way TCP would: a bounded sliding window,
per-message retransmission timers with exponential backoff and jitter,
a retry budget, and duplicate suppression at the receiver.

Cycle accounting stays honest under loss: a message dropped at stage
*k* still charges stages ``0..k`` to their CPU domains (the truncated
path), and every retransmission replays the full path — this is where
goodput-vs-loss curves come from.

Determinism: loss draws come from the active injector's ``"faults"``
stream exactly as inline forwarding faults do; retransmission-timer
jitter draws from a dedicated ``rng.stream("arq")`` generator, so the
same seed and the same plan reproduce a bit-identical retransmission
schedule (:attr:`ArqReport.schedule`).
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError
from repro.faults import injector as _active_injector
from repro.net.path import Datapath
from repro.obs import metrics as _active_metrics
from repro.sim import AllOf, Store

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.costs import CostModel
    from repro.net.devices import DeviceQueue
    from repro.net.links import PhysicalLink
    from repro.net.transfer import TransferEngine

#: Bytes of a bare ACK segment (TCP header + options, no payload).
ACK_BYTES = 64

#: Which inline fault kind can kill a frame at a given path stage, and
#: which stage label is the fault target.  Mirrors the injection sites
#: of :mod:`repro.net.forwarding`.
_STAGE_FAULTS: dict[str, str] = {
    "wire": "link.loss",
    "bridge_fwd": "frame.drop",
    "hostlo_reflect": "hostlo.drop",
    "nsm_copy": "nsm.drop",
}


@dataclasses.dataclass(frozen=True)
class ArqConfig:
    """Knobs of the sliding-window retransmission protocol."""

    window: int = 16
    timeout_s: float = 200e-6
    backoff: float = 2.0
    max_retries: int = 8
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1: {self.window!r}")
        if self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive: {self.timeout_s!r}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1: {self.backoff!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries!r}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1): {self.jitter!r}"
            )

    def rto_s(self, attempt: int, rng: t.Any = None) -> float:
        """Retransmission timeout before retry *attempt* (1-based)."""
        base = self.timeout_s * self.backoff ** (attempt - 1)
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0))


@dataclasses.dataclass
class ArqReport:
    """What one reliable transfer did, message by message."""

    messages: int = 0
    nbytes: int = 0
    delivered: int = 0
    exhausted: int = 0
    transmissions: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    acks_lost: int = 0
    backpressure_waits: int = 0
    bytes_delivered: int = 0
    elapsed_s: float = 0.0
    #: loss reason → count (mirrors the forwarding drop vocabulary).
    losses: dict[str, int] = dataclasses.field(default_factory=dict)
    #: every (message id, attempt, sim time) data transmission, in
    #: order — the determinism acceptance criterion compares these.
    schedule: list[tuple[int, int, float]] = dataclasses.field(
        default_factory=list
    )
    delivered_ids: set[int] = dataclasses.field(default_factory=set)

    @property
    def lost(self) -> int:
        return sum(self.losses.values())

    @property
    def complete(self) -> bool:
        return self.delivered == self.messages and self.exhausted == 0

    @property
    def exactly_once(self) -> bool:
        """Each message id reached the application at most once."""
        return self.delivered == len(self.delivered_ids)

    @property
    def goodput_mbps(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes_delivered * 8.0 / self.elapsed_s / 1e6

    def conserved(self) -> bool:
        """Every transmission ends delivered, duplicate, or lost."""
        return (self.transmissions
                == self.delivered + self.duplicates + self.lost)


class PathFaultModel:
    """Where along a datapath can the active fault plan kill a frame?

    Precomputes the (stage index, fault kind, target label) injection
    sites of a path; :meth:`drop_point` then consults the active
    injector in stage order — the same order and targets the
    frame-level forwarding engine would use, so a plan behaves
    identically against both.
    """

    def __init__(self, path: Datapath,
                 links: t.Sequence["PhysicalLink"] = ()) -> None:
        self.path = path
        self._links = {link.name: link for link in links}
        self._sites: list[tuple[int, str, str]] = [
            (index, _STAGE_FAULTS[stage.stage], stage.label)
            for index, stage in enumerate(path.stages)
            if stage.stage in _STAGE_FAULTS
        ]

    def drop_point(self) -> tuple[int, str] | None:
        """(stages traversed before dying, loss reason) or ``None``.

        A partitioned link rejects the frame before serialization (the
        wire stage is not charged); loss and corruption consume the
        wire; bridge and hostlo drops consume their stage.
        """
        inj = _active_injector()
        for index, kind, label in self._sites:
            if kind == "link.loss":
                link = self._links.get(label)
                if link is not None and not link.up:
                    return index, "link.down"
                if inj.enabled and inj.fires(kind, label) is not None:
                    return index + 1, "link-loss"
                if inj.enabled and inj.fires("link.corrupt",
                                             label) is not None:
                    return index + 1, "corrupt"
            elif inj.enabled and inj.fires(kind, label) is not None:
                # "frame.drop" → "frame-drop" etc., matching the
                # forwarding engine's ledger reason for the same site.
                return index + 1, kind.replace(".", "-")
        return None


class ReliableTransfer:
    """Carry *messages* over *path* reliably despite injected loss.

    Parameters
    ----------
    engine: the transfer engine whose CPU domains get charged.
    path: the resolved forward datapath.
    nbytes: payload bytes per message.
    messages: how many messages to deliver.
    config: protocol knobs (:class:`ArqConfig`).
    rng: generator for retransmission-timer jitter — pass the
        testbed's ``rng.stream("arq")`` for determinism.
    ack_path: optional reverse datapath the ACKs traverse (charged and
        lossy like any path); ``None`` models free, lossless ACKs.
    links: physical links underlying the path (partition awareness).
    tx_queue: optional bounded :class:`~repro.net.devices.DeviceQueue`
        at the sender NIC; a full queue drops the attempt before it
        costs any cycles.
    stream: batch amortisation, as in
        :meth:`~repro.net.transfer.TransferEngine.transfer`.
    """

    def __init__(
        self,
        engine: "TransferEngine",
        path: Datapath,
        *,
        nbytes: int,
        messages: int,
        config: ArqConfig | None = None,
        rng: t.Any = None,
        ack_path: Datapath | None = None,
        links: t.Sequence["PhysicalLink"] = (),
        tx_queue: "DeviceQueue | None" = None,
        stream: bool = True,
        cost_model: "CostModel | None" = None,
    ) -> None:
        if messages < 1:
            raise ConfigurationError(f"messages must be >= 1: {messages!r}")
        if nbytes < 1:
            raise ConfigurationError(f"nbytes must be >= 1: {nbytes!r}")
        self.engine = engine
        self.env = engine.env
        self.path = path
        self.nbytes = nbytes
        self.messages = messages
        self.config = config or ArqConfig()
        self.rng = rng
        self.ack_path = ack_path
        self.tx_queue = tx_queue
        self.stream = stream
        # None falls through to the engine's model; backends pass their
        # repriced model so retransmissions cost what their stack costs.
        self.cost_model = cost_model
        self._faults = PathFaultModel(path, links)
        self._ack_faults = (
            PathFaultModel(ack_path, links) if ack_path is not None else None
        )
        self._window = Store(self.env)
        for slot in range(self.config.window):
            self._window.put(slot)
        self._truncated: dict[int, Datapath] = {}
        self.report = ArqReport(messages=messages, nbytes=nbytes)

    # -- driving ---------------------------------------------------------
    def start(self) -> t.Any:
        """Spawn the transfer as a process; returns its Process event."""
        return self.env.process(self._run())

    def run(self) -> ArqReport:
        """Run the simulation until the transfer completes."""
        return self.env.run(until=self.start())

    def _run(self) -> t.Generator:
        started = self.env.now
        workers = [
            self.env.process(self._message(mid))
            for mid in range(self.messages)
        ]
        yield AllOf(self.env, workers)
        self.report.elapsed_s = self.env.now - started
        return self.report

    # -- the protocol ----------------------------------------------------
    def _message(self, mid: int) -> t.Generator:
        if len(self._window) == 0:
            self.report.backpressure_waits += 1
            _active_metrics().counter(
                "net.backpressure_total",
                help="sends that waited for an ARQ window slot",
            ).inc()
        slot = yield self._window.get()
        try:
            yield from self._deliver(mid)
        finally:
            self._window.put(slot)

    def _deliver(self, mid: int) -> t.Generator:
        for attempt in range(1, self.config.max_retries + 2):
            if attempt > 1:
                yield self.env.timeout(
                    self.config.rto_s(attempt - 1, self.rng)
                )
                self.report.retransmissions += 1
                _active_metrics().counter(
                    "arq.retransmissions_total",
                    help="ARQ data retransmissions",
                ).inc()
            outcome = yield from self._transmit(mid, attempt)
            if outcome == "acked":
                return
        self.report.exhausted += 1
        _active_metrics().counter(
            "arq.exhausted_total",
            help="messages abandoned after the retry budget",
        ).inc()

    def _transmit(self, mid: int, attempt: int) -> t.Generator:
        self.report.transmissions += 1
        self.report.schedule.append((mid, attempt, self.env.now))
        queued = False
        if self.tx_queue is not None:
            queued = self.tx_queue.offer()
            if not queued:
                # The NIC ring is full: dropped before any cycles.
                self._lose("txq-overflow")
                return "lost"
        try:
            dropped = self._faults.drop_point()
            if dropped is not None:
                upto, reason = dropped
                if upto > 0:
                    yield from self.engine.transfer(
                        self._upto(upto), self.nbytes, stream=self.stream,
                        cost_model=self.cost_model,
                    )
                self._lose(reason)
                return "lost"
            yield from self.engine.transfer(
                self.path, self.nbytes, stream=self.stream,
                cost_model=self.cost_model,
            )
        finally:
            if queued:
                self.tx_queue.take()
        if mid in self.report.delivered_ids:
            # The receiver already has it (a data/ACK race after a
            # lost ACK): suppressed, but still acknowledged.
            self.report.duplicates += 1
            _active_metrics().counter(
                "arq.duplicates_total",
                help="duplicate deliveries suppressed at the receiver",
            ).inc()
        else:
            self.report.delivered_ids.add(mid)
            self.report.delivered += 1
            self.report.bytes_delivered += self.nbytes
        outcome = yield from self._ack()
        return outcome

    def _ack(self) -> t.Generator:
        if self._ack_faults is None:
            return "acked"
        dropped = self._ack_faults.drop_point()
        if dropped is not None:
            upto, _reason = dropped
            if upto > 0:
                yield from self.engine.transfer(
                    self._ack_upto(upto), ACK_BYTES, stream=False,
                    cost_model=self.cost_model,
                )
            self.report.acks_lost += 1
            _active_metrics().counter(
                "arq.acks_lost_total", help="ACK segments lost in flight",
            ).inc()
            return "ack-lost"
        yield from self.engine.transfer(
            self.ack_path, ACK_BYTES, stream=False,
            cost_model=self.cost_model,
        )
        return "acked"

    # -- internals -------------------------------------------------------
    def _lose(self, reason: str) -> None:
        self.report.losses[reason] = self.report.losses.get(reason, 0) + 1
        _active_metrics().counter(
            "arq.lost_total", help="ARQ data transmissions lost, by reason",
        ).inc(reason=reason)

    def _upto(self, count: int) -> Datapath:
        path = self._truncated.get(count)
        if path is None:
            path = dataclasses.replace(
                self.path, stages=self.path.stages[:count]
            )
            self._truncated[count] = path
        return path

    def _ack_upto(self, count: int) -> Datapath:
        assert self.ack_path is not None
        return dataclasses.replace(
            self.ack_path, stages=self.ack_path.stages[:count]
        )

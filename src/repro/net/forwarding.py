"""A frame-level forwarding engine: the data plane, frame by frame.

The datapath resolver (:mod:`repro.net.path`) computes paths
analytically for the performance experiments.  This module is its
independent cross-check: it moves concrete :class:`Frame` objects
through the same topology using the mechanisms Linux actually uses —
ARP resolution, bridge FDB learning, flooding on miss, per-queue hostlo
reflection, VXLAN encapsulation — and records every hop.

Hops are recorded twice, at two fidelities.  The free-text
``Frame.note`` strings (greppable through ``Delivery.visited``) are
always kept — they are cheap and the integration tests read them.  When
a :class:`repro.net.capture.CaptureSession` is active, the engine
additionally emits structured :class:`~repro.net.capture.Hop` records
at every ``_ingress`` / ``_transmit`` / ``_bridge_forward`` /
``_hostlo_reflect`` / ``_vxlan`` transition — machine-readable
provenance that feeds the pcapng export, the flow table and the
``trace_frame`` pretty-printer.  Without a session the per-frame cost
is one module-global load and one ``None`` check per send.

Integration tests assert that what the frames traverse agrees with
what the resolver predicted, and the learning behaviour (second frame
is switched, not flooded) is observable through the bridge FDBs.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

from repro.errors import TopologyError
from repro.faults import injector as _active_injector
from repro.net import capture as _capture
from repro.net import flows as _flows
from repro.net.addresses import Ipv4Address, MacAddress
from repro.obs import metrics as _active_metrics
from repro.obs import tracer as _active_tracer
from repro.net.bridge import Bridge
from repro.net.devices import (
    HostloEndpoint,
    HostloTap,
    Loopback,
    NetDevice,
    NsmHostStack,
    NsmPort,
    PhysicalNic,
    TapDevice,
    VethEnd,
    VirtioNic,
    VxlanTunnel,
)
from repro.net.flows import FlowKey
from repro.net.namespace import NetworkNamespace

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.capture import CaptureSession, Hop
    from repro.net.flows import FlowTable

_MAX_HOPS = 128


@dataclasses.dataclass
class Frame:
    """One Ethernet frame moving through the topology."""

    src_mac: MacAddress | None
    dst_mac: MacAddress | None
    src_ip: Ipv4Address
    dst_ip: Ipv4Address
    dst_port: int
    proto: str = "tcp"
    payload_bytes: int = 64
    origin: str = ""
    hops: list[str] = dataclasses.field(default_factory=list)
    #: Whether this frame participates in the conservation ledger.
    #: VXLAN *outer* frames carry an already-counted inner frame, so
    #: they are created with ``counted=False`` — otherwise one lost
    #: encapsulated message would be double-booked.
    counted: bool = True
    #: Capture-session frame id (0 while no session is active).
    fid: int = 0
    #: The ledger reason this frame was dropped under, if it was.
    drop_reason: str | None = None

    def note(self, what: str) -> None:
        if len(self.hops) >= _MAX_HOPS:
            raise TopologyError(f"frame forwarding loop: {self.hops[-6:]}")
        self.hops.append(what)


@dataclasses.dataclass(frozen=True)
class Delivery:
    """Outcome of one frame walk."""

    delivered: bool
    namespace: str | None
    dst_ip: Ipv4Address
    dst_port: int
    hops: tuple[str, ...]
    flooded_ports: int
    reflected_copies: int
    #: Capture-session frame id (0 when no session was active).
    frame_id: int = 0
    #: Structured provenance chain (empty when no session was active).
    trail: tuple["Hop", ...] = ()

    def visited(self, what: str) -> bool:
        return any(what in hop for hop in self.hops)


class ForwardingEngine:
    """Walks frames through namespaces, bridges and virtual devices."""

    def __init__(self) -> None:
        self._arp_count = itertools.count()
        self.flood_events = 0
        self.reflect_copies = 0
        # Conservation ledger, accumulated across sends: every counted
        # frame ends up either delivered or in exactly one labelled
        # drop bucket, so ``frames_sent == frames_delivered +
        # sum(drops.values())`` is an invariant the health monitor
        # checks (see repro.health.invariants).
        self.frames_sent = 0
        self.frames_delivered = 0
        self.drops: dict[str, int] = {}
        #: Pinned capture session / flow table; when ``None`` the
        #: module-global active ones (if any) are used per send.
        self.capture: "CaptureSession | None" = None
        self.flows: "FlowTable | None" = None
        self._cap: "CaptureSession | None" = None

    def reset_ledger(self) -> None:
        """Zero the conservation ledger (per-phase accounting)."""
        self.frames_sent = 0
        self.frames_delivered = 0
        self.drops = {}

    def _hop(self, frame: Frame, stage: str, device: "NetDevice | str",
             namespace: str = "", verdict: str = "forwarded",
             reason: str | None = None, detail: str = "") -> None:
        """Emit one structured provenance hop (no-op when untapped)."""
        cap = self._cap
        if cap is not None:
            cap.hop(frame, stage, device, namespace=namespace,
                    verdict=verdict, reason=reason, detail=detail)

    def _drop(self, frame: Frame, note: str, reason: str,
              device: "NetDevice | str" = "", namespace: str = "",
              stage: str = "drop") -> None:
        """Record one dropped frame: hop note, ledger, labelled counter."""
        frame.note(f"drop:{note}")
        frame.drop_reason = reason
        self._hop(frame, stage, device, namespace=namespace,
                  verdict="dropped", reason=reason, detail=note)
        if frame.counted:
            self.drops[reason] = self.drops.get(reason, 0) + 1
            _active_metrics().counter(
                "net.frames_dropped",
                help="frames dropped by the forwarding engine, by reason",
            ).inc(reason=reason)

    # -- public API ---------------------------------------------------------
    def send(
        self,
        src_ns: NetworkNamespace,
        dst_ip: Ipv4Address,
        dst_port: int = 0,
        proto: str = "tcp",
        payload_bytes: int = 64,
    ) -> Delivery:
        """Send one frame from a socket in *src_ns* toward *dst_ip*."""
        self.flood_events = 0
        self.reflect_copies = 0
        frame = Frame(
            src_mac=None, dst_mac=None,
            src_ip=self._source_address(src_ns),
            dst_ip=dst_ip, dst_port=dst_port, proto=proto,
            payload_bytes=payload_bytes, origin=src_ns.name,
        )
        cap = self.capture if self.capture is not None \
            else _capture.active_session()
        self._cap = cap
        if cap is not None:
            cap.begin_frame(frame, origin=src_ns.name)
        self.frames_sent += 1
        _active_metrics().counter(
            "net.frames_sent", help="frames injected into the data plane",
        ).inc()
        namespace = self._route(src_ns, frame)
        if namespace is not None:
            self.frames_delivered += 1
            _active_metrics().counter(
                "net.frames_delivered",
                help="frames delivered to a destination namespace",
            ).inc()
        trail: tuple["Hop", ...] = ()
        if cap is not None:
            trail = cap.finish_frame(frame)
            self._cap = None
        table = self.flows if self.flows is not None \
            else _flows.active_table()
        if table is not None:
            # Keyed by what the sender dialled (pre-DNAT), labelled by
            # the origin's pod/VM domain.  VXLAN outer frames never get
            # here: only the injected (counted) frame is accounted.
            table.record(
                FlowKey(
                    src_ip=str(frame.src_ip), dst_ip=str(dst_ip),
                    proto=proto, dst_port=dst_port,
                    src_label=src_ns.domain,
                ),
                payload_bytes=payload_bytes,
                delivered=namespace is not None,
                drop_reason=frame.drop_reason,
                dst_label=namespace.domain if namespace else None,
                trail=trail,
                hop_count=len(trail) if trail else len(frame.hops),
            )
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event(
                "forward.send", f"{src_ns.name}->{dst_ip}",
                delivered=namespace is not None,
                namespace=namespace.name if namespace else None,
                hops=len(frame.hops), flooded=self.flood_events,
                reflected=self.reflect_copies,
            )
            for hop in frame.hops:
                tracer.event("forward.hop", hop, origin=src_ns.name)
        return Delivery(
            delivered=namespace is not None,
            namespace=namespace.name if namespace else None,
            dst_ip=frame.dst_ip,
            dst_port=frame.dst_port,
            hops=tuple(frame.hops),
            flooded_ports=self.flood_events,
            reflected_copies=self.reflect_copies,
            frame_id=frame.fid,
            trail=trail,
        )

    # -- routing ---------------------------------------------------------------
    def _source_address(self, ns: NetworkNamespace) -> Ipv4Address:
        for dev in ns.devices.values():
            if not isinstance(dev, Loopback) and dev.primary_ip is not None:
                return dev.primary_ip
        lo = ns.loopback
        if lo is not None and lo.primary_ip is not None:
            return lo.primary_ip
        raise TopologyError(f"{ns.name}: no address to source a frame from")

    def _route(self, ns: NetworkNamespace,
               frame: Frame) -> NetworkNamespace | None:
        """IP-layer forwarding within *ns*, recursing across hops."""
        while True:
            local = ns.find_device_owning(frame.dst_ip)
            if local is not None:
                frame.note(f"deliver:{ns.name}")
                self._hop(frame, "deliver", local, namespace=ns.name,
                          verdict="delivered")
                return ns
            if (ns.name != frame.origin
                    and ns.netfilter.forward_dropped(frame.src_ip,
                                                     frame.dst_ip)):
                self._drop(frame, f"forward-policy:{ns.name}",
                           "forward-policy", device=f"nf:{ns.name}:forward",
                           namespace=ns.name, stage="netfilter")
                return None
            route = ns.routes.lookup(frame.dst_ip)
            if route is None:
                self._drop(frame, f"no-route:{ns.name}", "no-route",
                           namespace=ns.name, stage="route")
                return None
            egress = ns.device(route.device)
            if not egress.up:
                self._drop(frame, f"link-down:{egress.name}", "link-down",
                           device=egress, namespace=ns.name, stage="route")
                return None
            next_hop = route.gateway or frame.dst_ip
            frame.note(f"route:{ns.name}:{egress.name}")
            self._hop(frame, "route", egress, namespace=ns.name,
                      detail=str(next_hop))
            landing = self._transmit(ns, egress, next_hop, frame)
            if landing is None:
                return None
            ns = self._ingress(landing, frame)
            if ns is None:
                return None

    def _ingress(self, ns: NetworkNamespace,
                 frame: Frame) -> NetworkNamespace | None:
        new_ip, new_port, hit = ns.netfilter.apply_dnat(
            frame.proto, frame.dst_ip, frame.dst_port
        )
        if hit:
            frame.note(f"dnat:{ns.name}:{new_ip}:{new_port}")
            self._hop(frame, "dnat", f"nf:{ns.name}:dnat",
                      namespace=ns.name, detail=f"{new_ip}:{new_port}")
            frame.dst_ip, frame.dst_port = new_ip, new_port
        return ns

    # -- L2 ---------------------------------------------------------------------
    def _transmit(self, ns: NetworkNamespace, egress: NetDevice,
                  next_hop: Ipv4Address,
                  frame: Frame) -> NetworkNamespace | None:
        """Push the frame out of *egress* toward *next_hop* at L2."""
        frame.src_mac = egress.mac

        if isinstance(egress, Loopback):
            frame.note(f"lo:{ns.name}")
            self._hop(frame, "loopback", egress, namespace=ns.name)
            return ns

        if isinstance(egress, Bridge):
            # Routed out of a bridge-owned address: enter the segment.
            return self._bridge_forward(egress, None, next_hop, frame)

        if isinstance(egress, VethEnd):
            peer = egress.peer
            if peer is None or peer.namespace is None:
                self._drop(frame, f"dangling-veth:{egress.name}",
                           "dangling-veth", device=egress,
                           namespace=ns.name, stage="veth")
                return None
            frame.note(f"veth:{egress.name}->{peer.name}")
            self._hop(frame, "veth", egress, namespace=ns.name,
                      detail=f"->{peer.name}")
            if peer.bridge is not None:
                return self._bridge_forward(peer.bridge, peer, next_hop, frame)
            return peer.namespace

        if isinstance(egress, HostloEndpoint):
            return self._hostlo_reflect(egress, next_hop, frame)

        # NsmPort subclasses VirtioNic; its crossing is the bounded
        # shared-queue boundary, not a vhost TAP, so dispatch first.
        if isinstance(egress, NsmPort):
            return self._nsm_tx(ns, egress, next_hop, frame)

        if isinstance(egress, VirtioNic):
            backend = egress.backend
            if not isinstance(backend, TapDevice):
                self._drop(frame, f"no-backend:{egress.name}", "no-backend",
                           device=egress, namespace=ns.name, stage="virtio")
                return None
            frame.note(f"virtio:{egress.name}->tap:{backend.name}")
            self._hop(frame, "virtio", egress, namespace=ns.name,
                      detail=f"->tap:{backend.name}")
            if backend.bridge is not None:
                return self._bridge_forward(backend.bridge, backend,
                                            next_hop, frame)
            return backend.namespace

        if isinstance(egress, VxlanTunnel):
            return self._vxlan(egress, next_hop, frame)

        if isinstance(egress, PhysicalNic):
            return self._wire(egress, next_hop, frame)

        self._drop(frame, f"unsupported:{egress.kind}", "unsupported",
                   device=egress, namespace=ns.name, stage="transmit")
        return None

    def _wire(self, egress: PhysicalNic, next_hop: Ipv4Address,
              frame: Frame) -> NetworkNamespace | None:
        ns_name = egress.namespace.name if egress.namespace else ""
        link = egress.link
        if link is None:
            self._drop(frame, f"uncabled:{egress.name}", "uncabled",
                       device=egress, namespace=ns_name, stage="wire")
            return None
        if not link.up:
            # Labelled, not silent: the link keeps its own account of
            # frames that died against the downed carrier, and the
            # engine ledger carries the same ``link.down`` reason.
            link.drop("link.down")
            self._drop(frame, f"link-down:{link.name}",
                       "link.down", device=egress,
                       namespace=ns_name, stage="wire")
            return None
        inj = _active_injector()
        if inj.enabled and inj.fires("link.loss", link.name) is not None:
            link.drop("link-loss")
            self._drop(frame, f"fault-link:{link.name}", "link-loss",
                       device=egress, namespace=ns_name, stage="wire")
            return None
        if inj.enabled and inj.fires("link.corrupt", link.name) is not None:
            # The frame crosses the wire but arrives with a bad FCS:
            # the receiving NIC discards it.
            link.drop("corrupt")
            self._drop(frame, f"fault-corrupt:{link.name}", "corrupt",
                       device=link.peer_of(egress), namespace=ns_name,
                       stage="wire")
            return None
        peer = link.peer_of(egress)
        link.carry(frame.payload_bytes)
        frame.note(f"wire:{link.name}:{egress.name}->{peer.name}")
        self._hop(frame, "wire", egress, namespace=ns_name,
                  detail=f"{link.name}->{peer.name}")
        switch = peer.fabric_switch
        if switch is not None:
            return self._fabric_forward(switch, next_hop, frame)
        if peer.bridge is not None:
            return self._bridge_forward(peer.bridge, peer, next_hop, frame)
        return peer.namespace

    def _fabric_forward(self, switch: t.Any, next_hop: Ipv4Address,
                        frame: Frame) -> NetworkNamespace | None:
        """Walk the frame hop by hop across fat-tree switches.

        Each switch forwards by longest-prefix down-route toward hosts
        it fronts, or hashes the flow signature over its live equal-cost
        uplinks (see :mod:`repro.fabric`).  Every crossing re-checks the
        carrier, offers the frame to the egress port's bounded TX ring,
        and accounts the link — so congestion overflows, downed links
        and dead switches all end in labelled ledger buckets and the
        conservation invariant keeps holding fabric-wide.
        """
        signature = _flows.flow_signature(
            frame.src_ip, frame.dst_ip, frame.proto, frame.dst_port
        )
        while True:
            ns_name = switch.ns.name
            if not switch.up:
                self._drop(frame, f"switch-down:{switch.name}",
                           "fabric.switch-down", device=f"sw:{switch.name}",
                           namespace=ns_name, stage="fabric")
                return None
            port = switch.select_port(signature, next_hop)
            if port is None:
                self._drop(frame, f"fabric-no-route:{switch.name}",
                           "fabric-no-route", device=f"sw:{switch.name}",
                           namespace=ns_name, stage="fabric")
                return None
            if not port.tx_queue.offer():
                self._drop(frame, f"fabric-overflow:{port.name}",
                           "fabric-overflow", device=port,
                           namespace=ns_name, stage="fabric")
                return None
            if not switch.congested():
                # The port drains at line rate; inside a congestion
                # window (incast) depth accumulates until service_all.
                port.tx_queue.take()
            link = port.link
            if link is None:
                self._drop(frame, f"uncabled:{port.name}", "uncabled",
                           device=port, namespace=ns_name, stage="fabric")
                return None
            if not link.up:
                link.drop("link.down")
                self._drop(frame, f"link-down:{link.name}", "link.down",
                           device=port, namespace=ns_name, stage="fabric")
                return None
            inj = _active_injector()
            if inj.enabled and inj.fires("link.loss", link.name) is not None:
                link.drop("link-loss")
                self._drop(frame, f"fault-link:{link.name}", "link-loss",
                           device=port, namespace=ns_name, stage="fabric")
                return None
            if inj.enabled and inj.fires("link.corrupt",
                                         link.name) is not None:
                link.drop("corrupt")
                self._drop(frame, f"fault-corrupt:{link.name}", "corrupt",
                           device=link.peer_of(port), namespace=ns_name,
                           stage="fabric")
                return None
            peer = link.peer_of(port)
            link.carry(frame.payload_bytes)
            frame.note(f"fabric:{switch.name}:{port.name}->{peer.name}")
            self._hop(frame, "fabric", port, namespace=ns_name,
                      detail=f"{switch.tier}:{link.name}->{peer.name}")
            next_switch = getattr(peer, "fabric_switch", None)
            if next_switch is not None:
                switch = next_switch
                continue
            if peer.bridge is not None:
                return self._bridge_forward(peer.bridge, peer, next_hop,
                                            frame)
            return peer.namespace

    def _bridge_forward(self, bridge: Bridge, ingress: NetDevice | None,
                        next_hop: Ipv4Address,
                        frame: Frame) -> NetworkNamespace | None:
        """Learning-switch behaviour: learn, look up, forward or flood."""
        ns_name = bridge.namespace.name if bridge.namespace else ""
        if ingress is not None and frame.src_mac is not None:
            bridge.learn(frame.src_mac, ingress)
        inj = _active_injector()
        if inj.enabled and inj.fires("frame.drop", bridge.name) is not None:
            self._drop(frame, f"fault:{bridge.name}", "frame-drop",
                       device=bridge, namespace=ns_name, stage="bridge")
            return None
        frame.note(f"bridge:{bridge.name}")
        self._hop(frame, "bridge", bridge, namespace=ns_name)

        if bridge.owns_ip(next_hop):
            # Frame for the bridge's own stack (it is the gateway).
            assert bridge.namespace is not None
            return bridge.namespace

        target_port, target = self._arp(bridge, ingress, next_hop, frame)
        if target_port is None:
            # Unknown next hop behind this bridge: check for a VXLAN
            # port that knows it, then a cabled uplink whose far side
            # owns it, else hand up to the router.
            for port in bridge.ports:
                if port is ingress:
                    continue
                if isinstance(port, VxlanTunnel) and \
                        port.vtep_for(next_hop) is not None:
                    return self._vxlan(port, next_hop, frame)
            for port in bridge.ports:
                if port is ingress:
                    continue
                if isinstance(port, PhysicalNic) and port.link is not None:
                    peer = port.link.peer_of(port)
                    if peer.bridge is not None and (
                        peer.bridge.owns_ip(next_hop)
                        or self._arp(peer.bridge, peer, next_hop,
                                     frame)[0] is not None
                    ):
                        return self._wire(port, next_hop, frame)
            assert bridge.namespace is not None
            return bridge.namespace

        dst_mac = target.mac
        learned = dst_mac is not None and bridge.lookup(dst_mac) is target_port
        if not learned:
            # Destination unknown to the FDB: flood all other ports.
            self.flood_events += max(0, len(bridge.ports) - 1)
            frame.note(f"flood:{bridge.name}")
            self._hop(frame, "flood", bridge, namespace=ns_name,
                      detail=f"{max(0, len(bridge.ports) - 1)} ports")
            if dst_mac is not None:
                bridge.learn(dst_mac, target_port)
        frame.dst_mac = dst_mac
        return self._cross_port(target_port, target, next_hop, frame)

    def _arp(self, bridge: Bridge, ingress: NetDevice | None,
             next_hop: Ipv4Address, frame: Frame
             ) -> tuple[NetDevice | None, NetDevice | None]:
        """Who on this segment owns *next_hop*? (port, owning device)."""
        del frame
        for port in bridge.ports:
            if port is ingress:
                continue
            if isinstance(port, VethEnd):
                peer = port.peer
                if peer is not None and peer.owns_ip(next_hop):
                    return port, peer
            elif isinstance(port, TapDevice):
                backed = port.backs
                if backed is not None and backed.owns_ip(next_hop):
                    return port, backed
            elif port.owns_ip(next_hop):
                return port, port
        return None, None

    def _cross_port(self, port: NetDevice, target: NetDevice,
                    next_hop: Ipv4Address,
                    frame: Frame) -> NetworkNamespace | None:
        del next_hop
        target_ns = target.namespace.name if target.namespace else ""
        if isinstance(port, VethEnd):
            frame.note(f"veth:{port.name}->{target.name}")
            self._hop(frame, "veth", port, namespace=target_ns,
                      detail=f"->{target.name}")
            return target.namespace
        if isinstance(port, TapDevice):
            frame.note(f"tap:{port.name}->virtio:{target.name}")
            self._hop(frame, "tap", port, namespace=target_ns,
                      detail=f"->virtio:{target.name}")
            return target.namespace
        if isinstance(port, NsmHostStack):
            return self._nsm_rx(port, frame)
        self._drop(frame, f"unsupported-port:{port.kind}",
                   "unsupported-port", device=port, stage="bridge")
        return None

    def _nsm_tx(self, ns: NetworkNamespace, port: NsmPort,
                next_hop: Ipv4Address,
                frame: Frame) -> NetworkNamespace | None:
        """Guest → host-owned stack across the bounded NSM boundary."""
        stack = port.backend
        if not isinstance(stack, NsmHostStack):
            self._drop(frame, f"no-nsm-backend:{port.name}",
                       "no-nsm-backend", device=port, namespace=ns.name,
                       stage="nsm")
            return None
        inj = _active_injector()
        if inj.enabled and inj.fires("nsm.drop", stack.name) is not None:
            self._drop(frame, f"fault-nsm:{stack.name}", "nsm-drop",
                       device=stack, namespace=ns.name, stage="nsm")
            return None
        # The message lands in the shared boundary ring.  A live host
        # stack services it immediately; a stalled boundary (wedged
        # stack thread, crashed guest mid-handoff) fills until overflow.
        accepted = stack.boundary.offer()
        if accepted and not stack.boundary.stalled:
            stack.boundary.take()
        if not accepted:
            self._drop(frame, f"nsm-overflow:{stack.boundary.name}",
                       "nsm-overflow", device=stack, namespace=ns.name,
                       stage="nsm")
            return None
        if stack.boundary.stalled:
            self._drop(frame, f"nsm-stalled:{stack.boundary.name}",
                       "nsm-stalled", device=stack, namespace=ns.name,
                       stage="nsm")
            return None
        frame.note(f"nsm:{port.name}->stack:{stack.name}")
        self._hop(frame, "nsm", port, namespace=ns.name,
                  detail=f"->stack:{stack.name}")
        if stack.bridge is not None:
            return self._bridge_forward(stack.bridge, stack, next_hop, frame)
        return stack.namespace

    def _nsm_rx(self, stack: NsmHostStack,
                frame: Frame) -> NetworkNamespace | None:
        """Host-owned stack → guest port: one copy into the guest ring."""
        guest = stack.port
        ns_name = stack.namespace.name if stack.namespace else ""
        if guest is None or not guest.up or guest.namespace is None:
            self._drop(frame, f"nsm-guest-down:{stack.name}",
                       "nsm-guest-down", device=stack, namespace=ns_name,
                       stage="nsm")
            return None
        accepted = guest.rx_queue.offer()
        if accepted and not guest.rx_queue.stalled:
            guest.rx_queue.take()
        if not accepted:
            self._drop(frame, f"nsm-overflow:{guest.name}",
                       "nsm-overflow", device=guest, namespace=ns_name,
                       stage="nsm")
            return None
        if guest.rx_queue.stalled:
            self._drop(frame, f"nsm-stalled:{guest.name}",
                       "nsm-stalled", device=guest, namespace=ns_name,
                       stage="nsm")
            return None
        frame.note(f"nsm-rx:{stack.name}->{guest.name}")
        self._hop(frame, "nsm-rx", stack,
                  namespace=guest.namespace.name,
                  detail=f"->{guest.name}")
        frame.dst_mac = guest.mac
        return guest.namespace

    def _hostlo_reflect(self, endpoint: HostloEndpoint,
                        next_hop: Ipv4Address,
                        frame: Frame) -> NetworkNamespace | None:
        """§4.2 semantics: the frame is copied to *every* queue; only
        the endpoint owning the destination consumes it."""
        ns_name = endpoint.namespace.name if endpoint.namespace else ""
        tap = endpoint.backend
        if not isinstance(tap, HostloTap):
            self._drop(frame, f"no-hostlo-backend:{endpoint.name}",
                       "no-hostlo-backend", device=endpoint,
                       namespace=ns_name, stage="hostlo")
            return None
        inj = _active_injector()
        if inj.enabled and inj.fires("hostlo.drop", tap.name) is not None:
            self._drop(frame, f"fault-hostlo:{tap.name}", "hostlo-drop",
                       device=tap, namespace=ns_name, stage="hostlo")
            return None
        self.reflect_copies += tap.queue_count
        frame.note(f"hostlo:{tap.name}:x{tap.queue_count}")
        # The copy lands in each queue's RX ring.  Live consumers
        # service theirs immediately; a stalled consumer's ring fills
        # until it overflows, at which point its copies are dropped at
        # the tap (and any copy *for* the stalled VM dies with them).
        # Provenance note: the per-queue loop below offers the *same*
        # frame once per RX queue — the capture session deduplicates
        # the reflect hop per (frame, device), so the trail carries one
        # ``reflected`` hop for the tap, not one per queue.
        owner: HostloEndpoint | None = None
        owner_accepted = False
        for other in tap.endpoints:
            self._hop(frame, "hostlo-reflect", tap, namespace=ns_name,
                      verdict="reflected", detail=f"x{tap.queue_count}")
            accepted = other.rx_queue.offer()
            if accepted and not other.rx_queue.stalled:
                other.rx_queue.take()
            if other.owns_ip(next_hop):
                owner = other
                owner_accepted = accepted
        if owner is None:
            self._drop(frame, f"hostlo-no-owner:{next_hop}",
                       "hostlo-no-owner", device=tap, namespace=ns_name,
                       stage="hostlo")
            return None
        if not owner_accepted:
            self._drop(frame, f"hostlo-overflow:{owner.name}",
                       "hostlo-overflow", device=owner, stage="hostlo")
            return None
        if owner.rx_queue.stalled:
            # Queued on a wedged consumer: never serviced.  Accounted
            # now so the ledger stays conserved; the health watchdog's
            # eviction will drain whatever piled up.
            self._drop(frame, f"hostlo-stalled:{owner.name}",
                       "hostlo-stalled", device=owner, stage="hostlo")
            return None
        frame.note(f"hostlo-rx:{owner.name}")
        owner_ns = owner.namespace.name if owner.namespace else ""
        self._hop(frame, "hostlo-rx", owner, namespace=owner_ns)
        frame.dst_mac = owner.mac
        return owner.namespace

    def _vxlan(self, tunnel: VxlanTunnel, next_hop: Ipv4Address,
               frame: Frame) -> NetworkNamespace | None:
        """Encapsulate, walk the underlay, decapsulate at the far VTEP."""
        vtep_ip = tunnel.vtep_for(next_hop)
        tunnel_ns = tunnel.namespace.name if tunnel.namespace else ""
        if vtep_ip is None:
            self._drop(frame, f"no-vtep:{tunnel.name}", "no-vtep",
                       device=tunnel, namespace=tunnel_ns, stage="vxlan")
            return None
        assert tunnel.namespace is not None
        frame.note(f"vxlan-encap:{tunnel.name}->{vtep_ip}")
        self._hop(frame, "vxlan-encap", tunnel, namespace=tunnel_ns,
                  verdict="encapped", detail=f"->{vtep_ip}")

        outer = Frame(
            src_mac=None, dst_mac=None,
            src_ip=tunnel.underlay_ip, dst_ip=vtep_ip, dst_port=4789,
            proto="udp", payload_bytes=frame.payload_bytes + 50,
            origin=tunnel.namespace.name,
            counted=False,  # the inner frame carries the ledger entry
        )
        if self._cap is not None:
            # The outer frame gets its own provenance trail, linked to
            # the inner frame it carries; it stays outside the ledger
            # (and the flow table) exactly like its counted flag says.
            self._cap.begin_frame(outer, origin=outer.origin,
                                  parent=frame.fid)
        landing = self._route(tunnel.namespace, outer)
        frame.hops.extend(f"underlay:{hop}" for hop in outer.hops)
        if landing is None:
            self._drop(frame, "underlay-unreachable",
                       "underlay-unreachable", device=tunnel,
                       namespace=tunnel_ns, stage="vxlan")
            return None

        remote = next(
            (dev for dev in landing.devices.values()
             if isinstance(dev, VxlanTunnel) and dev.vni == tunnel.vni),
            None,
        )
        if remote is None:
            self._drop(frame, f"no-remote-vtep:{landing.name}",
                       "no-remote-vtep", device=tunnel,
                       namespace=landing.name, stage="vxlan")
            return None
        frame.note(f"vxlan-decap:{remote.name}")
        self._hop(frame, "vxlan-decap", remote, namespace=landing.name,
                  verdict="decapped")
        if remote.bridge is not None:
            return self._bridge_forward(remote.bridge, remote, next_hop, frame)
        return landing

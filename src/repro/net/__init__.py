"""Simulated Linux networking substrate.

This package models the pieces of the Linux network stack that the
paper's datapaths traverse: Ethernet/IP addressing, network devices
(NICs, veth pairs, TAP devices, loopbacks, the hostlo multiplexed
loopback endpoints), learning bridges, netfilter NAT with connection
tracking, routing tables, network namespaces, and VXLAN overlays.

Two higher-level services tie it together:

* :mod:`repro.net.path` resolves, from the actual topology objects, the
  ordered list of processing stages a packet traverses between two
  sockets — the resolver is where BrFusion's "shorter path" physically
  comes from.
* :mod:`repro.net.transfer` executes such a path on the discrete-event
  engine, charging each stage's cycles to the right CPU and account.

All stage costs live in :mod:`repro.net.costs`.
"""

from repro.net.arq import ArqConfig, ArqReport, PathFaultModel, ReliableTransfer
from repro.net.addresses import (
    Ipv4Address,
    Ipv4Network,
    MacAddress,
    MacAllocator,
    SubnetAllocator,
)
from repro.net.bridge import Bridge
from repro.net.capture import (
    CaptureFilter,
    CapturePoint,
    CaptureSession,
    Hop,
)
from repro.net.costs import CostModel, StageCost
from repro.net.devices import (
    DeviceQueue,
    HostloEndpoint,
    HostloTap,
    Loopback,
    NetDevice,
    NsmHostStack,
    NsmPort,
    PhysicalNic,
    TapDevice,
    VethPair,
    VirtioNic,
    VxlanTunnel,
)
from repro.net.flows import FlowKey, FlowStats, FlowTable
from repro.net.forwarding import Delivery, ForwardingEngine, Frame
from repro.net.links import PhysicalLink, connect_hosts
from repro.net.namespace import NetworkNamespace
from repro.net.netfilter import DnatRule, ForwardDropRule, MasqueradeRule, Netfilter
from repro.net.path import Datapath, PathStage, resolve_path
from repro.net.routing import Route, RoutingTable
from repro.net.transfer import StageTiming, TransferEngine

__all__ = [
    "ArqConfig",
    "ArqReport",
    "Bridge",
    "CaptureFilter",
    "CapturePoint",
    "CaptureSession",
    "CostModel",
    "Datapath",
    "Delivery",
    "DeviceQueue",
    "DnatRule",
    "FlowKey",
    "FlowStats",
    "FlowTable",
    "ForwardDropRule",
    "ForwardingEngine",
    "Frame",
    "Hop",
    "HostloEndpoint",
    "HostloTap",
    "Ipv4Address",
    "Ipv4Network",
    "Loopback",
    "MacAddress",
    "MacAllocator",
    "MasqueradeRule",
    "NetDevice",
    "Netfilter",
    "NetworkNamespace",
    "NsmHostStack",
    "NsmPort",
    "PathFaultModel",
    "PathStage",
    "PhysicalLink",
    "PhysicalNic",
    "ReliableTransfer",
    "Route",
    "RoutingTable",
    "StageCost",
    "StageTiming",
    "SubnetAllocator",
    "TapDevice",
    "TransferEngine",
    "connect_hosts",
    "VethPair",
    "VirtioNic",
    "VxlanTunnel",
    "resolve_path",
]

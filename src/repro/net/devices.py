"""Network devices: NICs, veth pairs, TAPs, loopbacks, hostlo, VXLAN,
and the offloaded-NSM boundary pair.

Devices are data holders plus wiring invariants; traversal logic lives
in :mod:`repro.net.path`.  A device belongs to exactly one
:class:`~repro.net.namespace.NetworkNamespace` once attached.
"""

from __future__ import annotations

import typing as t

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Address, Ipv4Network, MacAddress
from repro.net.costs import ETH_MTU, LOOPBACK_MTU

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.bridge import Bridge
    from repro.net.namespace import NetworkNamespace

#: Default per-device queue depth, in frames.  Matches the order of
#: magnitude of a virtio-net ring (256 descriptors): deep enough that
#: well-behaved traffic never notices, shallow enough that a stalled
#: consumer visibly overflows.
DEFAULT_QUEUE_CAPACITY = 256


class DeviceQueue:
    """A bounded frame queue on one side (RX or TX) of a device.

    Queues are accounting objects, not event-driven stores: the
    forwarding engine and the ARQ layer *offer* frames and either admit
    them (``depth`` grows, drained by :meth:`take`) or reject them when
    full — the overflow-drop.  A *stalled* queue models a consumer that
    stopped servicing its ring (a wedged guest): producers keep
    offering and frames pile up until the queue overflows.
    """

    def __init__(self, name: str,
                 capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        if capacity < 1:
            raise TopologyError(
                f"queue {name!r} capacity must be >= 1: {capacity!r}"
            )
        self.name = name
        self.capacity = capacity
        self.depth = 0
        self.accepted = 0
        self.drops = 0
        self.stalled = False

    def offer(self, n: int = 1) -> bool:
        """Try to enqueue *n* frames; False (and counted drops) if full."""
        if self.depth + n > self.capacity:
            self.drops += n
            return False
        self.depth += n
        self.accepted += n
        return True

    def take(self, n: int = 1) -> None:
        """The consumer services *n* frames off the ring."""
        if n > self.depth:
            raise TopologyError(
                f"queue {self.name!r}: taking {n} of {self.depth} queued"
            )
        self.depth -= n

    def drain(self) -> int:
        """Discard everything queued; returns how many frames died."""
        dead, self.depth = self.depth, 0
        return dead

    def stall(self) -> None:
        """The consumer stops servicing the ring (wedged guest)."""
        self.stalled = True

    def resume(self) -> None:
        self.stalled = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = " stalled" if self.stalled else ""
        return (f"<DeviceQueue {self.name!r} {self.depth}/"
                f"{self.capacity}{state}>")


class NetDevice:
    """Base network device.

    Parameters
    ----------
    name: interface name (unique within its namespace).
    mac: Ethernet address.
    mtu: maximum transmission unit of this device.
    gso: whether segmentation can be offloaded across this device
        (large merged frames survive the hop).
    """

    kind = "generic"

    def __init__(
        self,
        name: str,
        mac: MacAddress | None = None,
        mtu: int = ETH_MTU,
        gso: bool = True,
    ) -> None:
        if not name:
            raise TopologyError("device name must be non-empty")
        if mtu <= 0:
            raise TopologyError(f"mtu must be positive: {mtu!r}")
        self.name = name
        self.mac = mac
        self.mtu = mtu
        self.gso = gso
        self.namespace: "NetworkNamespace | None" = None
        self.bridge: "Bridge | None" = None  # set when enslaved to a bridge
        self.addresses: list[tuple[Ipv4Address, Ipv4Network]] = []
        self.up = True
        self.rx_queue = DeviceQueue(f"{name}:rx")
        self.tx_queue = DeviceQueue(f"{name}:tx")

    # -- addressing -----------------------------------------------------
    def assign_ip(self, address: Ipv4Address, network: Ipv4Network) -> None:
        """Add *address* (within *network*) to this interface."""
        if address not in network:
            raise TopologyError(f"{address} not inside {network}")
        if any(a == address for a, _ in self.addresses):
            raise TopologyError(f"{self.name} already has {address}")
        self.addresses.append((address, network))

    def owns_ip(self, address: Ipv4Address) -> bool:
        return any(a == address for a, _ in self.addresses)

    @property
    def primary_ip(self) -> Ipv4Address | None:
        return self.addresses[0][0] if self.addresses else None

    @property
    def primary_network(self) -> Ipv4Network | None:
        return self.addresses[0][1] if self.addresses else None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        where = self.namespace.name if self.namespace else "detached"
        return f"<{type(self).__name__} {self.name!r} in {where}>"


class PhysicalNic(NetDevice):
    """A physical NIC with a line rate (bits per second).

    Cabling two physical NICs together (``repro.net.links``) extends
    the L2 segment across hosts.
    """

    kind = "physical"

    def __init__(self, name: str, mac: MacAddress | None = None,
                 bandwidth_bps: float = 10e9, mtu: int = ETH_MTU) -> None:
        super().__init__(name, mac, mtu=mtu, gso=True)
        if bandwidth_bps <= 0:
            raise TopologyError(f"bandwidth must be positive: {bandwidth_bps!r}")
        self.bandwidth_bps = float(bandwidth_bps)
        self.link = None  # set by repro.net.links.PhysicalLink
        #: Back-reference set by repro.fabric when this NIC is a switch
        #: port; the forwarding engine hands frames landing on such a
        #: NIC to the fabric walker instead of a host namespace.
        self.fabric_switch = None


class Loopback(NetDevice):
    """The ``lo`` device: 64 KiB MTU, reflects within its namespace."""

    kind = "loopback"

    def __init__(self, name: str = "lo") -> None:
        super().__init__(name, mac=None, mtu=LOOPBACK_MTU, gso=True)


class VethEnd(NetDevice):
    """One end of a veth pair; see :class:`VethPair`."""

    kind = "veth"

    def __init__(self, name: str, mac: MacAddress | None = None) -> None:
        super().__init__(name, mac, mtu=ETH_MTU, gso=True)
        self.peer: "VethEnd | None" = None


class VethPair:
    """A connected pair of virtual Ethernet devices.

    ``VethPair("a", "b")`` creates ends ``.a`` and ``.b`` wired to each
    other; attach each end to a namespace (typically one inside a
    container, one on a bridge).
    """

    def __init__(self, name_a: str, name_b: str,
                 mac_a: MacAddress | None = None,
                 mac_b: MacAddress | None = None) -> None:
        if name_a == name_b:
            raise TopologyError("veth ends must have distinct names")
        self.a = VethEnd(name_a, mac_a)
        self.b = VethEnd(name_b, mac_b)
        self.a.peer = self.b
        self.b.peer = self.a


class TapDevice(NetDevice):
    """A host TAP device, typically the vhost backend of a guest NIC."""

    kind = "tap"

    def __init__(self, name: str, mac: MacAddress | None = None,
                 gso: bool = True) -> None:
        super().__init__(name, mac, mtu=ETH_MTU, gso=gso)
        self.backs: "VirtioNic | None" = None


class VirtioNic(NetDevice):
    """A guest-side virtio-net device, backed in the host by a TAP (via
    vhost), by a hostlo queue, or by an offloaded host network stack."""

    kind = "virtio"

    def __init__(self, name: str, mac: MacAddress | None = None,
                 gso: bool = True) -> None:
        super().__init__(name, mac, mtu=ETH_MTU, gso=gso)
        self.backend: "TapDevice | HostloTap | NsmHostStack | None" = None

    def attach_backend(self, backend: "TapDevice | HostloTap") -> None:
        if self.backend is not None:
            raise TopologyError(f"{self.name} already has a backend")
        self.backend = backend
        if isinstance(backend, TapDevice):
            if backend.backs is not None:
                raise TopologyError(f"{backend.name} already backs a vNIC")
            backend.backs = self


class HostloEndpoint(VirtioNic):
    """The in-VM endpoint of a hostlo interface (§4.2).

    It looks like a normal hot-plugged virtio NIC to the guest, but its
    backend is a shared :class:`HostloTap` queue, and — crucially — the
    modified TAP driver cannot offload segmentation, so ``gso=False``.
    """

    kind = "hostlo_endpoint"

    def __init__(self, name: str, mac: MacAddress | None = None) -> None:
        super().__init__(name, mac, gso=False)


class HostloTap(NetDevice):
    """The host-side multiplexed loopback TAP device (§4.2).

    It provides one RX/TX queue per served VM and reflects every
    received Ethernet frame to *all* of its queues.
    """

    kind = "hostlo_tap"

    def __init__(self, name: str) -> None:
        super().__init__(name, mac=None, mtu=ETH_MTU, gso=False)
        self.endpoints: list[HostloEndpoint] = []

    def add_queue(self, endpoint: HostloEndpoint) -> None:
        """Register one more VM-facing queue (called by the VMM)."""
        if endpoint in self.endpoints:
            raise TopologyError(f"{endpoint.name} already queued on {self.name}")
        self.endpoints.append(endpoint)
        endpoint.backend = self

    def remove_queue(self, endpoint: HostloEndpoint) -> int:
        """The inverse of :meth:`add_queue`: evict one VM-facing queue.

        Drains whatever the endpoint had pending and returns the count
        of discarded frames; subsequent reflections no longer copy to
        (or wait on) the evicted queue.  Raises
        :class:`~repro.errors.TopologyError` for an endpoint that was
        never queued here.
        """
        if endpoint not in self.endpoints:
            raise TopologyError(
                f"{endpoint.name} is not queued on {self.name}"
            )
        self.endpoints.remove(endpoint)
        if endpoint.backend is self:
            endpoint.backend = None
        endpoint.rx_queue.resume()
        return endpoint.rx_queue.drain()

    def stall_queue(self, endpoint: HostloEndpoint) -> None:
        """Mark one queue's consumer as wedged (chaos layer)."""
        if endpoint not in self.endpoints:
            raise TopologyError(
                f"{endpoint.name} is not queued on {self.name}"
            )
        endpoint.rx_queue.stall()

    def stalled_endpoints(self) -> tuple[HostloEndpoint, ...]:
        """Queues whose consumer stopped servicing them."""
        return tuple(ep for ep in self.endpoints if ep.rx_queue.stalled)

    @property
    def queue_count(self) -> int:
        return len(self.endpoints)


class NsmPort(VirtioNic):
    """The guest half of an offloaded network-stack module (NSM).

    NetKernel-style: the guest does *not* run a protocol stack for this
    interface.  Application messages cross a bounded shared-memory
    queue (the :attr:`NsmHostStack.boundary`) to a host-owned stack
    that does the real TX/RX work.  To the guest it still looks like a
    hot-pluggable virtio device (address, routes, up/down), which is
    what keeps the orchestrator and health checks oblivious.
    """

    kind = "nsm_port"

    def __init__(self, name: str, mac: MacAddress | None = None) -> None:
        super().__init__(name, mac, gso=True)


class NsmHostStack(NetDevice):
    """The host-resident network stack serving one guest's NSM port.

    Lives in the host namespace (typically enslaved to a bridge) and
    owns the protocol processing the guest delegated.  Frames cross
    between guest and host through :attr:`boundary`, a bounded
    :class:`DeviceQueue` with mempipe semantics (doorbell + copy, see
    ``repro.virt.mempipe``): a wedged or crashed guest shows up as a
    stalled boundary, not as a broken host stack.
    """

    kind = "nsm_stack"

    def __init__(self, name: str, mac: MacAddress | None = None,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        super().__init__(name, mac, mtu=ETH_MTU, gso=True)
        self.port: "NsmPort | None" = None
        self.boundary = DeviceQueue(f"{name}:boundary", queue_capacity)

    def bind(self, port: NsmPort) -> None:
        """Wire *port* as the guest side of this stack."""
        if self.port is not None:
            raise TopologyError(f"{self.name} already serves {self.port.name}")
        if port.backend is not None:
            raise TopologyError(f"{port.name} already has a backend")
        self.port = port
        port.backend = self

    def unbind(self) -> int:
        """Detach the guest port; returns frames dropped from queues."""
        port = self.port
        if port is None:
            raise TopologyError(f"{self.name} serves no port")
        self.port = None
        if port.backend is self:
            port.backend = None
        self.boundary.resume()
        dead = self.boundary.drain()
        port.rx_queue.resume()
        return dead + port.rx_queue.drain()


class VxlanTunnel(NetDevice):
    """A VXLAN tunnel endpoint (Docker overlay style).

    ``add_remote`` teaches the VTEP which remote VTEP serves a given
    overlay address range.
    """

    kind = "vxlan"

    def __init__(self, name: str, vni: int,
                 underlay_ip: Ipv4Address,
                 mac: MacAddress | None = None) -> None:
        super().__init__(name, mac, mtu=ETH_MTU, gso=True)
        if not 0 < vni < 2**24:
            raise TopologyError(f"VNI out of range: {vni!r}")
        self.vni = vni
        self.underlay_ip = underlay_ip
        self._remotes: list[tuple[Ipv4Network, Ipv4Address]] = []

    def add_remote(self, overlay_net: Ipv4Network, vtep_ip: Ipv4Address) -> None:
        self._remotes.append((overlay_net, vtep_ip))

    def vtep_for(self, overlay_ip: Ipv4Address) -> Ipv4Address | None:
        """The remote VTEP serving *overlay_ip*, or None if unknown."""
        best: tuple[int, Ipv4Address] | None = None
        for net, vtep in self._remotes:
            if overlay_ip in net:
                if best is None or net.prefix_len > best[0]:
                    best = (net.prefix_len, vtep)
        return best[1] if best else None

"""Execute resolved datapaths on the discrete-event engine.

The :class:`TransferEngine` owns the mapping from CPU *domains*
(``"host"``, ``"vm:xyz"``, ``"client"``) to
:class:`~repro.sim.CpuResource` pools and plays a message through a
:class:`~repro.net.path.Datapath`: every stage charges its cycles to
the right CPU under the right account, and deferral points add their
wakeup latency.

Contention is emergent: when several in-flight messages (a TCP stream
window, or concurrent clients) hit the same CPU, they queue, and the
busiest stage becomes the throughput bottleneck — exactly the mechanism
behind the paper's fig 4/fig 10 curves.
"""

from __future__ import annotations

import typing as t

import dataclasses

from repro.errors import ConfigurationError
from repro.net.costs import CostModel
from repro.net.path import Datapath
from repro.obs import metrics as _active_metrics
from repro.sim import CpuResource, Environment

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.arq import ReliableTransfer


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """One stage's slice of a traced message timeline."""

    stage: str
    domain: str
    label: str
    started_at: float
    cpu_done_at: float
    finished_at: float
    cycles: float

    @property
    def service_s(self) -> float:
        return self.cpu_done_at - self.started_at

    @property
    def deferral_s(self) -> float:
        return self.finished_at - self.cpu_done_at


class TransferEngine:
    """Plays datapaths on CPUs.

    Parameters
    ----------
    env: the simulation environment.
    cost_model: stage costs (defaults to the calibrated model).
    """

    def __init__(self, env: Environment, cost_model: CostModel | None = None) -> None:
        self.env = env
        self.cost_model = cost_model or CostModel.default()
        self._domains: dict[str, CpuResource] = {}

    # -- domain management ---------------------------------------------------
    def register_domain(self, name: str, cpu: CpuResource) -> None:
        """Bind CPU *domain* ``name`` to a CPU pool."""
        if name in self._domains:
            raise ConfigurationError(f"domain {name!r} already registered")
        self._domains[name] = cpu

    def cpu(self, domain: str) -> CpuResource:
        cpu = self._domains.get(domain)
        if cpu is not None:
            return cpu
        if domain.startswith(("kthread:", "softirq:")):
            # Kernel threads (vhost workers, the hostlo handler) and
            # per-guest RX softirq contexts are single-core
            # serialization points, created on first use.
            cpu = CpuResource(
                self.env, cores=1, freq_hz=self.cost_model.freq_hz,
                name=domain,
            )
            self._domains[domain] = cpu
            return cpu
        raise ConfigurationError(
            f"no CPU registered for domain {domain!r} "
            f"(have: {sorted(self._domains)})"
        )

    def domains(self) -> dict[str, CpuResource]:
        return dict(self._domains)

    def kernel_threads(self) -> dict[str, CpuResource]:
        """The lazily-created host kernel-thread pools (vhost, hostlo).

        Their busy time belongs to the host kernel's ``sys`` share in
        CPU breakdowns — the attribution §5.3.4 discusses.
        """
        return {
            name: cpu
            for name, cpu in self._domains.items()
            if name.startswith("kthread:")
        }

    def softirq_contexts(self) -> dict[str, CpuResource]:
        """Per-guest RX softirq pools; busy time belongs to the guest's
        ``soft`` share (one NAPI context per guest NIC queue)."""
        return {
            name: cpu
            for name, cpu in self._domains.items()
            if name.startswith("softirq:")
        }

    # -- execution -----------------------------------------------------------
    def transfer(
        self, path: Datapath, nbytes: int, stream: bool = False,
        cost_model: CostModel | None = None,
    ) -> t.Generator:
        """Process generator: carry one *nbytes* message along *path*.

        ``stream=True`` enables the batch amortisation of batchable
        stages (back-to-back frames, NAPI polling/GRO); request/response
        traffic must leave it off.  *cost_model* overrides the engine's
        model for this one message — the hook network-stack backends
        use to reprice their stages without a private engine.
        """
        model = cost_model or self.cost_model
        tracer = self.env.tracer
        parent = None
        queue_depth = None
        if tracer.enabled:
            parent = tracer.begin(
                "datapath.transfer", f"{path.src}->{path.dst}",
                nbytes=nbytes, stream=stream, stages=len(path.stages),
                jitter=path.jitter_class,
            )
            queue_depth = _active_metrics().gauge(
                "cpu.queue_depth",
                help="jobs waiting per CPU domain, sampled at stage entry",
            )
        segments = path.segments_for(nbytes)
        for st in path.stages:
            cost = model[st.stage]
            packets = 1 if cost.per_message else segments
            cycles = cost.cycles(packets, nbytes, batched=stream) * st.multiplier
            span = None
            if tracer.enabled:
                cpu = self.cpu(st.domain)
                span = tracer.begin(
                    "datapath.stage", st.stage, parent=parent,
                    domain=st.domain, account=cost.account, cycles=cycles,
                    label=st.label,
                )
                queue_depth.set(cpu.queue_depth, domain=st.domain)
            if cycles > 0.0:
                yield self.cpu(st.domain).execute(cycles, account=cost.account)
            wakeup = cost.wakeup_s
            if stream and cost.batch_factor > 1.0:
                # Under back-to-back traffic, interrupt coalescing and
                # NAPI polling amortise the deferral the same way they
                # amortise the per-packet cycles.
                wakeup = wakeup / cost.batch_factor
            if wakeup > 0.0:
                yield self.env.timeout(wakeup)
            if span is not None:
                tracer.end(span)
        if parent is not None:
            tracer.end(parent)

    def reliable_transfer(
        self, path: Datapath, nbytes: int, messages: int = 1, **kwargs: t.Any
    ) -> "ReliableTransfer":
        """Build an ARQ-protected transfer of *messages* over *path*.

        Convenience constructor for :class:`repro.net.arq.
        ReliableTransfer`; see that class for the keyword knobs
        (``config``, ``rng``, ``ack_path``, ``links``, ``tx_queue``).
        Call ``.start()`` to spawn it alongside other traffic or
        ``.run()`` to drive the simulation until it completes.
        """
        from repro.net.arq import ReliableTransfer

        return ReliableTransfer(
            self, path, nbytes=nbytes, messages=messages, **kwargs
        )

    def round_trip(
        self,
        forward: Datapath,
        reverse: Datapath,
        request_bytes: int,
        response_bytes: int,
    ) -> t.Generator:
        """One synchronous request/response transaction."""
        yield from self.transfer(forward, request_bytes, stream=False)
        yield from self.transfer(reverse, response_bytes, stream=False)

    # -- tracing ----------------------------------------------------------------
    def trace(self, path: Datapath, nbytes: int,
              stream: bool = False,
              cost_model: CostModel | None = None) -> list["StageTiming"]:
        """Run one message *now* and return its per-stage timeline.

        Advances the simulation until the message completes; queueing
        against concurrent traffic shows up as per-stage wait time.
        *cost_model* overrides the engine's model for this trace.
        """
        model = cost_model or self.cost_model
        timings: list[StageTiming] = []
        segments = path.segments_for(nbytes)

        def traced() -> t.Generator:
            for st in path.stages:
                cost = model[st.stage]
                packets = 1 if cost.per_message else segments
                cycles = (
                    cost.cycles(packets, nbytes, batched=stream)
                    * st.multiplier
                )
                start = self.env.now
                if cycles > 0.0:
                    yield self.cpu(st.domain).execute(
                        cycles, account=cost.account
                    )
                cpu_done = self.env.now
                wakeup = cost.wakeup_s
                if stream and cost.batch_factor > 1.0:
                    wakeup = wakeup / cost.batch_factor
                if wakeup > 0.0:
                    yield self.env.timeout(wakeup)
                timings.append(StageTiming(
                    stage=st.stage, domain=st.domain, label=st.label,
                    started_at=start, cpu_done_at=cpu_done,
                    finished_at=self.env.now,
                    cycles=cycles,
                ))

        self.env.run(until=self.env.process(traced()))
        return timings

    # -- analytics -------------------------------------------------------------
    def latency_estimate(self, path: Datapath, nbytes: int,
                         cost_model: CostModel | None = None) -> float:
        """Uncontended one-way latency (seconds): pure service + wakeups.

        Useful for sanity checks and fast parameter sweeps; the DES adds
        queueing on top of this.
        """
        model = cost_model or self.cost_model
        segments = path.segments_for(nbytes)
        total = 0.0
        for st in path.stages:
            cost = model[st.stage]
            packets = 1 if cost.per_message else segments
            cycles = cost.cycles(packets, nbytes, batched=False) * st.multiplier
            total += cycles / model.freq_hz + cost.wakeup_s
        return total

    def bottleneck_rate(self, path: Datapath, nbytes: int,
                        cost_model: CostModel | None = None) -> float:
        """Upper-bound streaming rate (messages/s) from per-domain work.

        The busiest CPU domain bounds throughput; batchable stages are
        amortised as they would be under streaming.
        """
        model = cost_model or self.cost_model
        per_domain: dict[str, float] = {}
        segments = path.segments_for(nbytes)
        for st in path.stages:
            cost = model[st.stage]
            packets = 1 if cost.per_message else segments
            cycles = cost.cycles(packets, nbytes, batched=True) * st.multiplier
            per_domain[st.domain] = per_domain.get(st.domain, 0.0) + cycles
        worst = max(per_domain.values())
        if worst <= 0.0:
            return float("inf")
        cpu_cores = {d: self.cpu(d).cores for d in per_domain}
        # A single flow rarely spreads one direction across cores; be
        # conservative and assume the bottleneck stage set runs on one core.
        del cpu_cores
        return model.freq_hz / worst

"""Topology inspection: render namespaces and devices as text.

The simulated topology can get intricate (pods, fragments, hostlo
queues, overlays, tenant bridges); these helpers print it the way an
operator would read ``ip addr`` / ``brctl show`` output — one block per
namespace, devices with their addresses and wiring, routes and NAT
rules below.
"""

from __future__ import annotations

import typing as t

from repro.net.bridge import Bridge
from repro.net.devices import (
    HostloEndpoint,
    HostloTap,
    NetDevice,
    PhysicalNic,
    TapDevice,
    VethEnd,
    VirtioNic,
    VxlanTunnel,
)
from repro.net.namespace import NetworkNamespace


def describe_device(dev: NetDevice) -> str:
    """One line: name, kind, addresses, wiring."""
    parts = [f"{dev.name} <{dev.kind}>"]
    for address, network in dev.addresses:
        parts.append(f"{address}/{network.prefix_len}")
    if dev.mac is not None:
        parts.append(f"mac={dev.mac}")
    if not dev.up:
        parts.append("DOWN")
    wiring = _wiring(dev)
    if wiring:
        parts.append(wiring)
    return " ".join(parts)


def _wiring(dev: NetDevice) -> str:
    if isinstance(dev, VethEnd) and dev.peer is not None:
        where = dev.peer.namespace.name if dev.peer.namespace else "?"
        return f"peer={dev.peer.name}@{where}"
    if isinstance(dev, HostloEndpoint):
        backend = dev.backend.name if dev.backend is not None else "?"
        return f"hostlo={backend}"
    if isinstance(dev, VirtioNic):
        backend = dev.backend.name if dev.backend is not None else "?"
        return f"backend={backend}"
    if isinstance(dev, HostloTap):
        queues = ",".join(e.name for e in dev.endpoints)
        return f"queues=[{queues}]"
    if isinstance(dev, TapDevice):
        backs = dev.backs.name if dev.backs is not None else "?"
        bridged = f" bridge={dev.bridge.name}" if dev.bridge else ""
        return f"backs={backs}{bridged}"
    if isinstance(dev, VxlanTunnel):
        return f"vni={dev.vni} underlay={dev.underlay_ip}"
    if isinstance(dev, Bridge):
        ports = ",".join(p.name for p in dev.ports)
        return f"ports=[{ports}]"
    if isinstance(dev, PhysicalNic) and dev.link is not None:
        return f"link={dev.link.name}"
    return ""


def describe_namespace(ns: NetworkNamespace) -> str:
    """A readable block for one namespace."""
    lines = [f"namespace {ns.name} (kind={ns.kind}, domain={ns.domain})"]
    for name in sorted(ns.devices):
        lines.append(f"  dev   {describe_device(ns.devices[name])}")
    for route in ns.routes:
        via = f" via {route.gateway}" if route.gateway else ""
        lines.append(f"  route {route.destination} dev {route.device}{via}")
    for rule in ns.netfilter.dnat_rules:
        lines.append(
            f"  dnat  {rule.proto}/{rule.match_port} -> "
            f"{rule.to_ip}:{rule.to_port}"
        )
    for rule in ns.netfilter.masq_rules:
        lines.append(f"  masq  {rule.source_net} out {rule.out_device}")
    for rule in ns.netfilter.forward_drop_rules:
        lines.append(f"  drop  {rule.source_net} -> {rule.dest_net}")
    return "\n".join(lines)


def describe_topology(namespaces: t.Iterable[NetworkNamespace]) -> str:
    """Blocks for several namespaces, in the given order."""
    return "\n\n".join(describe_namespace(ns) for ns in namespaces)


def testbed_namespaces(testbed) -> list[NetworkNamespace]:
    """Every namespace a testbed owns (host, client, VMs, pods)."""
    spaces: list[NetworkNamespace] = [testbed.host.ns, testbed.client_ns]
    for vm in testbed.vmm.vms.values():
        spaces.extend(vm.namespaces)
    return spaces


def describe_testbed(testbed) -> str:
    """The whole testbed as text (see ``examples/topology_tour.py``)."""
    return describe_topology(testbed_namespaces(testbed))


def trace_frame(delivery, session=None) -> str:
    """Render one delivery's frame journey as a numbered hop chain.

    Prefers the structured provenance trail a capture session recorded
    (:class:`~repro.net.capture.Hop` records, with timestamps, stages
    and verdicts); when the delivery was made without an active session
    it falls back to the free-text ``Frame.note`` hops, so the printer
    always has something to show.  Pass the *session* to also render
    encapsulated child frames (VXLAN outer frames) under their parent.
    """
    status = "delivered" if delivery.delivered else "DROPPED"
    where = f" -> {delivery.namespace}" if delivery.namespace else ""
    lines = [
        f"frame #{delivery.frame_id or '?'} to "
        f"{delivery.dst_ip}:{delivery.dst_port} — {status}{where}"
    ]
    if delivery.trail:
        for index, hop in enumerate(delivery.trail, start=1):
            lines.append(f"  {index:>2}. [{hop.ts * 1e9:>6.0f} ns] {hop}")
    else:
        for index, note in enumerate(delivery.hops, start=1):
            lines.append(f"  {index:>2}. {note}")
    if session is not None and delivery.frame_id:
        for child in session.children_of(delivery.frame_id):
            lines.append(f"  encapsulated frame #{child}:")
            for index, hop in enumerate(session.trail_of(child), start=1):
                lines.append(
                    f"    {index:>2}. [{hop.ts * 1e9:>6.0f} ns] {hop}"
                )
    return "\n".join(lines)

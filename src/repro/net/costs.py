"""The calibrated per-stage cost model.

Every processing stage a packet can traverse (socket syscalls, protocol
stack, bridge forwarding, netfilter NAT, veth crossing, virtio/vhost,
TAP, hostlo reflection, VXLAN encap/decap, loopback) is described here
by a :class:`StageCost`:

* ``cycles_per_packet`` / ``cycles_per_byte`` — CPU work billed to the
  stage's executor (the guest vCPU pool or the host CPU) under an
  accounting class (``usr``, ``sys``, ``soft``); the experiments read
  these accounts back to reproduce the paper's CPU-breakdown figures.
* ``wakeup_s`` — a fixed deferral latency (softirq scheduling, vhost
  kick, interrupt injection).  These dominate small-message round-trip
  times, which is why the *latency* penalty of nested virtualization
  (+31 % in the paper) is smaller than its *throughput* penalty
  (−68 %): throughput is governed by per-packet CPU work, latency by
  the number of deferral points.
* ``batch_factor`` — how much of the per-packet cost is amortised when
  frames arrive back-to-back (NAPI polling, vhost batched kicks, GRO).
  Closed-loop streaming benefits; one-at-a-time request/response does
  not.  The hostlo reflect stage is deliberately *not* batchable: the
  modified TAP driver of §4.2 copies each frame to every VM queue
  synchronously.  This single mechanism produces the paper's seemingly
  paradoxical fig 10 (Overlay beats Hostlo on throughput while losing
  ~10× on latency).

Calibration: constants were fitted so that the *ratios* the paper
reports emerge from the simulated topologies (see
``tests/shape/``).  Absolute magnitudes are sized for a 2.2 GHz core
(the paper's Xeon E5-2420 v2) and sanity-checked against public
virtio/vhost measurements, but only the ratios are claimed.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError

#: Default CPU frequency (Hz) — the paper's Xeon E5-2420 v2.
DEFAULT_FREQ_HZ = 2.2e9

#: Ethernet MTU and the TCP payload it carries (1500 - 40 - 12 of options).
ETH_MTU = 1500
TCP_SEGMENT_PAYLOAD = 1448
#: Loopback devices use a 64 KiB MTU (Linux default for ``lo``).
LOOPBACK_MTU = 65536
#: VXLAN outer headers (IP + UDP + VXLAN) shrink the inner payload.
VXLAN_OVERHEAD = 50


@dataclasses.dataclass(frozen=True)
class StageCost:
    """Cost description of one datapath stage type."""

    name: str
    account: str  # "usr" | "sys" | "soft"
    cycles_per_packet: float
    cycles_per_byte: float = 0.0
    wakeup_s: float = 0.0
    batch_factor: float = 1.0  # >1: per-packet cycles shrink under streaming
    per_message: bool = False  # True: billed once per message, not per segment

    def __post_init__(self) -> None:
        if self.account not in ("usr", "sys", "soft"):
            raise ConfigurationError(f"bad account {self.account!r}")
        if self.cycles_per_packet < 0 or self.cycles_per_byte < 0:
            raise ConfigurationError(f"negative cost in stage {self.name!r}")
        if self.batch_factor < 1.0:
            raise ConfigurationError(f"batch_factor < 1 in stage {self.name!r}")

    def cycles(self, packets: int, nbytes: int, batched: bool = False) -> float:
        """Total cycles for *packets* segments carrying *nbytes* in all."""
        per_pkt = self.cycles_per_packet
        if batched and self.batch_factor > 1.0:
            per_pkt = per_pkt / self.batch_factor
        return per_pkt * packets + self.cycles_per_byte * nbytes


class CostModel:
    """A complete, immutable-by-convention set of stage costs.

    ``CostModel.default()`` is the calibrated model used throughout; an
    experiment may derive variants via :meth:`replace` for ablations.
    """

    def __init__(self, stages: dict[str, StageCost], freq_hz: float = DEFAULT_FREQ_HZ):
        if freq_hz <= 0:
            raise ConfigurationError(f"freq_hz must be positive: {freq_hz!r}")
        self._stages = dict(stages)
        self.freq_hz = float(freq_hz)

    def __getitem__(self, name: str) -> StageCost:
        try:
            return self._stages[name]
        except KeyError:
            raise ConfigurationError(f"unknown stage cost {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._stages))

    def replace(self, **overrides: StageCost) -> "CostModel":
        """A copy of the model with some stages replaced (for ablations)."""
        stages = dict(self._stages)
        for key, stage in overrides.items():
            if key not in stages:
                raise ConfigurationError(f"unknown stage cost {key!r}")
            stages[key] = stage
        return CostModel(stages, self.freq_hz)

    def scale(self, name: str, factor: float) -> "CostModel":
        """A copy with one stage's cycle costs multiplied by *factor*."""
        stage = self[name]
        return self.replace(
            **{
                name: dataclasses.replace(
                    stage,
                    cycles_per_packet=stage.cycles_per_packet * factor,
                    cycles_per_byte=stage.cycles_per_byte * factor,
                )
            }
        )

    @staticmethod
    def default() -> "CostModel":
        """The calibrated default model (see module docstring)."""
        stages = [
            # -- application / socket layer (billed per message) ----------
            StageCost("app_send", "usr", 1000, 0.25, per_message=True),
            StageCost("app_recv", "usr", 1000, 0.25, per_message=True),
            StageCost("syscall_send", "sys", 1800, 0.45, per_message=True),
            StageCost("syscall_recv", "sys", 1800, 0.45, per_message=True),
            # -- protocol stack (per wire segment) -------------------------
            StageCost("stack_tx", "sys", 1900, 0.05, batch_factor=2.0),
            StageCost("stack_rx", "soft", 2100, 0.05, wakeup_s=4.0e-6,
                      batch_factor=2.0),
            # -- L2 forwarding ---------------------------------------------
            StageCost("bridge_fwd", "soft", 3000, 0.0, wakeup_s=2.0e-6,
                      batch_factor=2.0),
            # Conntrack + rule evaluation barely batches (per-flow hash
            # walks, per-packet hook dispatch): the dominant cost of the
            # duplicated layer, in cycles *and* in softirq deferrals.
            StageCost("netfilter_nat", "soft", 2900, 0.0, wakeup_s=14.0e-6,
                      batch_factor=1.0),
            StageCost("veth_xmit", "soft", 3500, 0.0, wakeup_s=4.0e-6,
                      batch_factor=2.0),
            StageCost("loopback_xmit", "soft", 900, 0.05, wakeup_s=3.0e-6,
                      batch_factor=4.0),
            # -- virtualization boundary ------------------------------------
            # virtio_rx carries the big deferral: interrupt injection into
            # a (possibly descheduled) vCPU, guest IRQ + NAPI + socket
            # wakeup.  This is why every ordinary guest crossing costs
            # tens of microseconds of *latency* while costing little
            # *throughput* (streams amortise it via polling).
            StageCost("virtio_tx", "sys", 1000, 0.0, batch_factor=3.0),
            StageCost("virtio_rx", "soft", 1300, 0.0, wakeup_s=110.0e-6,
                      batch_factor=3.0),
            StageCost("vhost_tx", "sys", 2100, 0.30, wakeup_s=4.0e-6,
                      batch_factor=3.0),
            StageCost("vhost_rx", "sys", 2100, 0.30, wakeup_s=4.0e-6,
                      batch_factor=3.0),
            StageCost("tap_xmit", "sys", 900, 0.0, batch_factor=3.0),
            # -- hostlo (§4.2) ------------------------------------------------
            # reflect: the modified TAP driver copies every frame to every
            # VM queue, synchronously, in its single kernel thread — high
            # per-byte cost, no batching, so it caps streaming throughput;
            # deliver: the receiving queue is drained in the same thread
            # context with the guest already polling, so the *latency* of
            # a hostlo crossing stays near loopback-level.
            StageCost("hostlo_reflect", "sys", 600, 2.9, wakeup_s=3.0e-6),
            StageCost("hostlo_deliver", "sys", 500, 0.0, wakeup_s=2.0e-6,
                      batch_factor=2.5),
            StageCost("hostlo_rx", "soft", 900, 0.0, wakeup_s=3.0e-6),
            # -- physical wire (multi-host topologies) ----------------------
            # nic_xmit: driver + DMA per segment on the host kernel;
            # wire: 8 "cycles" per byte on the link pool, whose clock is
            # the line rate, so service time = bytes*8/bandwidth, and
            # flows sharing a wire queue against each other.
            StageCost("nic_xmit", "sys", 600, 0.0, batch_factor=3.0),
            StageCost("wire", "sys", 0, 8.0, wakeup_s=2.0e-6),
            # -- offloaded NSM (NetKernel-style host-owned stack) -----------
            # The guest runs no protocol stack: a doorbell + copy cross
            # the bounded shared queue (constants match
            # repro.virt.mempipe: 1400 cycles/msg, 0.5 cycles/byte,
            # 2 µs doorbell), then the host kernel thread runs the whole
            # TX/RX stack once — no duplicated guest layer, but every
            # message pays the copy's per-byte cost at the boundary.
            StageCost("nsm_doorbell", "sys", 700, 0.0, wakeup_s=2.0e-6,
                      batch_factor=4.0),
            StageCost("nsm_copy", "sys", 1400, 0.5, batch_factor=2.0),
            StageCost("nsm_host_stack", "sys", 2000, 0.05, batch_factor=2.0),
            StageCost("nsm_rx", "usr", 600, 0.0, wakeup_s=3.0e-6,
                      batch_factor=4.0),
            # -- overlay (VXLAN encap/decap in the guest) -------------------
            # Tunnel offloads (GRO over UDP) batch well — overlay streams
            # fast — but each encap/decap adds a long deferral chain, so
            # overlay latency is the worst of all configurations (§5.3.2).
            StageCost("vxlan_encap", "soft", 2700, 0.10, wakeup_s=40.0e-6,
                      batch_factor=8.0),
            StageCost("vxlan_decap", "soft", 2700, 0.10, wakeup_s=40.0e-6,
                      batch_factor=8.0),
        ]
        return CostModel({s.name: s for s in stages})


@dataclasses.dataclass(frozen=True)
class JitterModel:
    """Multiplicative lognormal noise applied to a path's latency.

    ``sigma`` is the lognormal shape; paths through conntrack/overlay
    code show much larger latency variance in the paper (NAT and
    Overlay std-dev between 25.8 % and 95.4 % of the mean in §5.3.2)
    than hostlo (27.9 %) or the loopback (20.5 %).
    """

    sigma: float

    def sample(self, rng: t.Any) -> float:
        if self.sigma <= 0:
            return 1.0
        return float(rng.lognormal(mean=-0.5 * self.sigma**2, sigma=self.sigma))


#: Jitter classes per path flavour, fitted to the std-dev ranges of §5.
JITTER = {
    "clean": JitterModel(0.20),      # loopback / SameNode
    "hostlo": JitterModel(0.27),     # stable, slightly above loopback
    "nsm": JitterModel(0.24),        # host-owned stack, one queue crossing
    "virt": JitterModel(0.30),       # single-level virtualization
    "nat": JitterModel(0.55),        # conntrack paths
    "overlay": JitterModel(0.75),    # vxlan paths
}

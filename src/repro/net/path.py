"""Datapath resolution: from topology objects to an ordered stage list.

:func:`resolve_path` walks the actual simulated topology — namespaces,
routing tables, netfilter rules, bridges, veth pairs, virtio/vhost
backends, hostlo queues, VXLAN tunnels — from a source namespace to a
destination IP and records every processing stage a packet traverses.

This module is where the paper's structural argument lives: BrFusion's
path is shorter than NAT's *because the resolver finds fewer stages*,
not because anyone hard-coded a speedup.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import TopologyError
from repro.net.addresses import Ipv4Address
from repro.net.bridge import Bridge
from repro.net.devices import (
    HostloEndpoint,
    HostloTap,
    Loopback,
    NetDevice,
    NsmHostStack,
    NsmPort,
    PhysicalNic,
    TapDevice,
    VethEnd,
    VirtioNic,
    VxlanTunnel,
)
from repro.net.namespace import NetworkNamespace

#: Bytes of L3/L4 headers subtracted from the device MTU per segment.
SEGMENT_HEADER_BYTES = 52
#: Extra per-segment overhead added by each level of VXLAN encapsulation.
VXLAN_HEADER_BYTES = 50

_MAX_HOPS = 64

#: Netfilter hook cost grows with the rule list: every packet walks the
#: chains, so each additional published port / masquerade entry adds a
#: slice of work.  (The same growth shows up in the fig 8 boot-time
#: model, where *programming* the rules slows down as the list grows.)
NETFILTER_RULE_SCALING = 0.04


def _netfilter_multiplier(ns: NetworkNamespace) -> float:
    extra_rules = max(0, ns.netfilter.rule_count - 1)
    return 1.0 + NETFILTER_RULE_SCALING * extra_rules

#: Stages executed in softirq context.  Inside a guest, a single flow's
#: RX processing runs in one NAPI context on one vCPU, so these stages
#: are routed to the guest's single-core ``softirq:`` domain — the
#: serialization that makes the duplicated NAT layer a throughput
#: bottleneck (and not merely added work).  Kept in sync with the
#: ``soft``-account stages of :class:`repro.net.costs.CostModel` by a
#: unit test.
SOFTIRQ_STAGES = frozenset({
    "stack_rx",
    "bridge_fwd",
    "netfilter_nat",
    "veth_xmit",
    "loopback_xmit",
    "virtio_rx",
    "vxlan_encap",
    "vxlan_decap",
    "hostlo_rx",
})


def softirq_domain(stage: str, domain: str) -> str:
    """The executing domain after softirq routing (guest domains only)."""
    if stage in SOFTIRQ_STAGES and domain.startswith("vm:"):
        return f"softirq:{domain}"
    return domain


@dataclasses.dataclass(frozen=True)
class PathStage:
    """One processing stage of a resolved datapath.

    ``stage`` keys into the :class:`~repro.net.costs.CostModel`;
    ``domain`` names the CPU that executes it; ``multiplier`` scales the
    cycles (used by the hostlo reflect stage, which copies each frame to
    every VM queue).
    """

    stage: str
    domain: str
    label: str = ""
    multiplier: float = 1.0


@dataclasses.dataclass(frozen=True)
class Datapath:
    """A resolved path: ordered stages plus segmentation metadata."""

    stages: tuple[PathStage, ...]
    segment_payload: int
    jitter_class: str
    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.segment_payload <= 0:
            raise TopologyError(
                f"path {self.src}->{self.dst} has non-positive payload "
                f"({self.segment_payload}); MTU too small for encapsulation?"
            )

    def segments_for(self, nbytes: int) -> int:
        """Wire segments needed to carry an *nbytes* message."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.segment_payload)  # ceil division

    def stage_names(self) -> tuple[str, ...]:
        return tuple(s.stage for s in self.stages)

    def domains(self) -> tuple[str, ...]:
        """Distinct CPU domains traversed, in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.stages:
            seen.setdefault(s.domain, None)
        return tuple(seen)

    def count(self, stage_name: str) -> int:
        return sum(1 for s in self.stages if s.stage == stage_name)


class _Walk:
    """Mutable state of one resolution walk."""

    def __init__(self, src_ip: Ipv4Address | None = None,
                 source_ns: str | None = None) -> None:
        self.stages: list[PathStage] = []
        self.min_mtu = 65536
        self.vxlan_depth = 0
        self.flavors: set[str] = set()
        self.hops = 0
        self.src_ip = src_ip
        self.source_ns = source_ns

    def add(self, stage: str, ns_or_domain: "NetworkNamespace | str",
            label: str = "", multiplier: float = 1.0) -> None:
        domain = (
            ns_or_domain if isinstance(ns_or_domain, str) else ns_or_domain.domain
        )
        domain = softirq_domain(stage, domain)
        self.stages.append(PathStage(stage, domain, label, multiplier))

    def see_device(self, device: NetDevice) -> None:
        self.min_mtu = min(self.min_mtu, device.mtu)

    def tick(self, what: str) -> None:
        self.hops += 1
        if self.hops > _MAX_HOPS:
            raise TopologyError(f"path resolution loop detected at {what}")


def resolve_path(
    src_ns: NetworkNamespace,
    dst_ip: Ipv4Address,
    dst_port: int = 0,
    proto: str = "tcp",
    include_endpoints: bool = True,
) -> Datapath:
    """Resolve the datapath from a socket in *src_ns* to *dst_ip*.

    Raises :class:`TopologyError` when no route exists or the walk
    cannot reach a device owning the (possibly DNAT-translated)
    destination address.
    """
    walk = _Walk(src_ip=_source_ip(src_ns), source_ns=src_ns.name)

    if include_endpoints:
        walk.add("app_send", src_ns, "app")
        walk.add("syscall_send", src_ns, "socket")

    dest_ns = _route_until_delivered(src_ns, dst_ip, dst_port, proto, walk)

    if include_endpoints:
        walk.add("syscall_recv", dest_ns, "socket")
        walk.add("app_recv", dest_ns, "app")
    payload = (
        walk.min_mtu - SEGMENT_HEADER_BYTES - walk.vxlan_depth * VXLAN_HEADER_BYTES
    )
    return Datapath(
        stages=tuple(walk.stages),
        segment_payload=payload,
        jitter_class=_jitter_class(walk),
        src=src_ns.name,
        dst=f"{dst_ip}:{dst_port}",
    )


def _source_ip(ns: NetworkNamespace) -> Ipv4Address | None:
    """The address a socket in *ns* would source from (best effort)."""
    for dev in ns.devices.values():
        if dev.kind != "loopback" and dev.primary_ip is not None:
            return dev.primary_ip
    lo = ns.loopback
    return lo.primary_ip if lo is not None else None


def _host_domain_of(device: NetDevice) -> str:
    """The CPU domain of the host kernel owning *device*."""
    ns = device.namespace
    return ns.domain if ns is not None else "host"


def _jitter_class(walk: _Walk) -> str:
    if "overlay" in walk.flavors:
        return "overlay"
    if "hostlo" in walk.flavors:
        return "hostlo"
    if "nat" in walk.flavors:
        return "nat"
    if "nsm" in walk.flavors:
        return "nsm"
    if walk.flavors == {"loopback"} or not walk.flavors:
        return "clean"
    return "virt"


def _route_until_delivered(
    ns: NetworkNamespace,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> NetworkNamespace:
    """Forward from *ns* until a namespace owning *dst_ip* is reached.

    Emits TX-side stack stages in the source namespace and RX-side
    stages in the destination namespace; returns the destination ns.
    """
    walk.add("stack_tx", ns, "stack")

    while True:
        walk.tick(f"route in {ns.name}")
        # FORWARD chain: a transiting packet may be dropped by policy
        # (tenant isolation between host bridges).
        if (
            walk.src_ip is not None
            and ns.name != walk.source_ns
            and not ns.is_local(dst_ip)
            and ns.netfilter.forward_dropped(walk.src_ip, dst_ip)
        ):
            raise TopologyError(
                f"{ns.name}: FORWARD policy drops {walk.src_ip} -> {dst_ip}"
            )
        # Local delivery?
        local_dev = ns.find_device_owning(dst_ip)
        if local_dev is not None:
            lo = ns.loopback
            if lo is not None:
                walk.see_device(lo)
            walk.flavors.add("loopback")
            walk.add("loopback_xmit", ns, "lo")
            walk.add("stack_rx", ns, "stack")
            return ns

        route = ns.routes.lookup(dst_ip)
        if route is None:
            raise TopologyError(f"{ns.name}: no route to {dst_ip}")
        egress = ns.device(route.device)
        if not egress.up:
            raise TopologyError(f"{ns.name}: egress {egress.name} is down")
        walk.see_device(egress)

        # POSTROUTING masquerade hook (source NAT) on the way out.
        if ns.netfilter.masq_rules and any(
            r.out_device == egress.name for r in ns.netfilter.masq_rules
        ):
            walk.flavors.add("nat")
            walk.add("netfilter_nat", ns, f"snat:{egress.name}",
                     multiplier=_netfilter_multiplier(ns))

        ns, dst_ip, dst_port, delivered = _cross(
            ns, egress, dst_ip, dst_port, proto, walk
        )
        if delivered:
            walk.add("stack_rx", ns, "stack")
            return ns
        # else: keep routing inside the new namespace.


def _ingress(
    ns: NetworkNamespace,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """A packet arrived in *ns*: PREROUTING DNAT, then local or forward."""
    new_ip, new_port, hit = ns.netfilter.apply_dnat(proto, dst_ip, dst_port)
    if hit:
        walk.flavors.add("nat")
        walk.add("netfilter_nat", ns, f"dnat:{dst_ip}:{dst_port}",
                 multiplier=_netfilter_multiplier(ns))
        dst_ip, dst_port = new_ip, new_port
    if ns.is_local(dst_ip):
        return ns, dst_ip, dst_port, True
    return ns, dst_ip, dst_port, False


def _cross(
    ns: NetworkNamespace,
    egress: NetDevice,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Transmit through *egress* and land wherever the frame goes next.

    Returns (namespace, dst_ip, dst_port, delivered).
    """
    walk.tick(f"cross {egress.name}")

    if isinstance(egress, Loopback):
        walk.flavors.add("loopback")
        walk.add("loopback_xmit", ns, egress.name)
        return _ingress(ns, dst_ip, dst_port, proto, walk)

    if isinstance(egress, VethEnd):
        peer = egress.peer
        if peer is None or peer.namespace is None:
            raise TopologyError(f"veth {egress.name} has no attached peer")
        walk.add("veth_xmit", ns, egress.name)
        walk.see_device(peer)
        if peer.bridge is not None:
            return _bridge_recv(peer.bridge, peer, dst_ip, dst_port, proto, walk)
        return _ingress(peer.namespace, dst_ip, dst_port, proto, walk)

    if isinstance(egress, VxlanTunnel):
        return _vxlan_encap(ns, egress, dst_ip, dst_port, proto, walk)

    if isinstance(egress, HostloEndpoint):
        return _hostlo_cross(ns, egress, dst_ip, dst_port, proto, walk)

    # NsmPort subclasses VirtioNic: its crossing is a queue boundary,
    # not a vhost hop, so dispatch on it first.
    if isinstance(egress, NsmPort):
        return _nsm_cross(ns, egress, dst_ip, dst_port, proto, walk)

    if isinstance(egress, VirtioNic):
        return _virtio_tx(ns, egress, dst_ip, dst_port, proto, walk)

    if isinstance(egress, Bridge):
        # Sending out of a bridge-owned address: the bridge is the L2
        # segment itself; find the device owning dst in its domain.
        return _bridge_recv(egress, None, dst_ip, dst_port, proto, walk)

    if isinstance(egress, PhysicalNic):
        return _wire_cross(egress, dst_ip, dst_port, proto, walk)

    raise TopologyError(f"cannot forward through device kind {egress.kind!r}")


def _virtio_tx(
    ns: NetworkNamespace,
    nic: VirtioNic,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Guest → host through virtio/vhost."""
    backend = nic.backend
    if backend is None:
        raise TopologyError(f"virtio NIC {nic.name} has no backend")
    if isinstance(backend, HostloTap):  # pragma: no cover - guarded earlier
        raise TopologyError("hostlo endpoints must use HostloEndpoint")
    walk.flavors.add("virt")
    walk.add("virtio_tx", ns, nic.name)
    host_domain = _host_domain_of(backend)
    # vhost-net runs one kernel thread per device queue; the thread is a
    # serialization point shared by both directions of the flow.
    walk.add("vhost_tx", f"kthread:{host_domain}:vhost:{backend.name}",
             f"vhost:{nic.name}")
    walk.see_device(backend)
    walk.add("tap_xmit", host_domain, backend.name)
    if backend.bridge is not None:
        return _bridge_recv(backend.bridge, backend, dst_ip, dst_port, proto, walk)
    if backend.namespace is None:
        raise TopologyError(f"tap {backend.name} is detached")
    return _ingress(backend.namespace, dst_ip, dst_port, proto, walk)


def _virtio_rx(
    nic: VirtioNic,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Host → guest through vhost/virtio into the NIC's namespace."""
    if nic.namespace is None:
        raise TopologyError(f"virtio NIC {nic.name} is detached")
    walk.flavors.add("virt")
    backend = nic.backend
    backend_name = backend.name if backend is not None else nic.name
    host_domain = _host_domain_of(backend) if backend is not None else "host"
    walk.add("vhost_rx", f"kthread:{host_domain}:vhost:{backend_name}",
             f"vhost:{nic.name}")
    walk.add("virtio_rx", nic.namespace, nic.name)
    walk.see_device(nic)
    return _ingress(nic.namespace, dst_ip, dst_port, proto, walk)


def _bridge_recv(
    bridge: Bridge,
    ingress_port: NetDevice | None,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """A frame reached *bridge*: switch it, or hand it up the stack."""
    ns = bridge.namespace
    if ns is None:
        raise TopologyError(f"bridge {bridge.name} is detached")
    walk.tick(f"bridge {bridge.name}")
    walk.add("bridge_fwd", ns, bridge.name)
    walk.see_device(bridge)

    # Towards the bridge's own address → up the local stack.
    if bridge.owns_ip(dst_ip):
        return _ingress(ns, dst_ip, dst_port, proto, walk)

    # L2 switch to the port behind which dst lives.
    found = _find_in_l2_domain(bridge, ingress_port, dst_ip)
    if found is not None:
        port, target = found
        if isinstance(port, VethEnd):
            walk.add("veth_xmit", ns, port.name)
            walk.see_device(target)
            assert target.namespace is not None
            return _ingress(target.namespace, dst_ip, dst_port, proto, walk)
        if isinstance(port, TapDevice):
            walk.add("tap_xmit", _host_domain_of(port), port.name)
            assert isinstance(target, VirtioNic)
            return _virtio_rx(target, dst_ip, dst_port, proto, walk)
        if isinstance(port, NsmHostStack):
            return _nsm_rx(port, dst_ip, dst_port, proto, walk)
        raise TopologyError(
            f"bridge {bridge.name}: unsupported port kind {port.kind!r}"
        )

    # A VXLAN port that knows a remote VTEP for dst switches the frame
    # into the tunnel (Docker overlay programs the bridge FDB this way).
    for port in bridge.ports:
        if port is ingress_port:
            continue
        if isinstance(port, VxlanTunnel) and port.vtep_for(dst_ip) is not None:
            return _vxlan_encap(ns, port, dst_ip, dst_port, proto, walk)

    # A cabled uplink port extends the segment to another host.
    for port in bridge.ports:
        if port is ingress_port:
            continue
        if isinstance(port, PhysicalNic) and port.link is not None:
            peer = port.link.peer_of(port)
            if peer.bridge is not None and _l2_owns(peer.bridge, peer, dst_ip):
                return _wire_cross(port, dst_ip, dst_port, proto, walk)

    # Not on this segment: hand up to the bridge namespace's router
    # (PREROUTING may DNAT toward a VM/container).
    return _ingress(ns, dst_ip, dst_port, proto, walk)


def _wire_cross(
    egress: PhysicalNic,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Cross a physical cable to the peer host's segment."""
    link = egress.link
    if link is None:
        raise TopologyError(
            f"{egress.name}: physical NIC is not cabled to another host"
        )
    peer = link.peer_of(egress)
    if peer.namespace is None:
        raise TopologyError(f"{peer.name} is detached")
    walk.tick(f"wire {link.name}")
    walk.see_device(egress)
    walk.see_device(peer)
    walk.add("nic_xmit", _host_domain_of(egress), egress.name)
    walk.add("wire", link.domain, link.name)
    if peer.bridge is not None:
        return _bridge_recv(peer.bridge, peer, dst_ip, dst_port, proto, walk)
    return _ingress(peer.namespace, dst_ip, dst_port, proto, walk)


def _l2_owns(bridge: Bridge, ingress_port: NetDevice | None,
             dst_ip: Ipv4Address) -> bool:
    """Does *dst_ip* live on this bridge segment (one wire hop deep)?"""
    if bridge.owns_ip(dst_ip):
        return True
    if _find_in_l2_domain(bridge, ingress_port, dst_ip) is not None:
        return True
    for port in bridge.ports:
        if port is ingress_port:
            continue
        if isinstance(port, PhysicalNic) and port.link is not None:
            peer = port.link.peer_of(port)
            if peer.bridge is not None and (
                peer.bridge.owns_ip(dst_ip)
                or _find_in_l2_domain(peer.bridge, peer, dst_ip) is not None
            ):
                return True
    return False


def _find_in_l2_domain(
    bridge: Bridge,
    ingress_port: NetDevice | None,
    dst_ip: Ipv4Address,
) -> tuple[NetDevice, NetDevice] | None:
    """Find (port, owning device) for *dst_ip* behind one of the ports."""
    for port in bridge.ports:
        if port is ingress_port:
            continue
        if isinstance(port, VethEnd):
            peer = port.peer
            if peer is not None and peer.owns_ip(dst_ip):
                return port, peer
        elif isinstance(port, TapDevice):
            backed = port.backs
            if backed is not None and backed.owns_ip(dst_ip):
                return port, backed
        elif port.owns_ip(dst_ip):
            return port, port
    return None


def _hostlo_cross(
    ns: NetworkNamespace,
    endpoint: HostloEndpoint,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Pod-fragment → hostlo TAP → reflected to the destination fragment."""
    tap = endpoint.backend
    if not isinstance(tap, HostloTap):
        raise TopologyError(f"{endpoint.name} is not backed by a hostlo TAP")
    walk.flavors.add("hostlo")
    walk.see_device(endpoint)
    walk.see_device(tap)
    kthread = f"kthread:{_host_domain_of(tap)}:{tap.name}"
    walk.add("virtio_tx", ns, endpoint.name)
    # The whole hostlo datapath — vhost TX, the reflect copies, delivery
    # into the destination queue — runs in the device's single kernel
    # thread (§4.2): a serialization point, but a short one.
    walk.add("vhost_tx", kthread, f"vhost:{endpoint.name}")
    walk.add(
        "hostlo_reflect", kthread, tap.name,
        multiplier=float(max(tap.queue_count, 1)),
    )
    target = None
    for other in tap.endpoints:
        if other.owns_ip(dst_ip):
            target = other
            break
    if target is None:
        raise TopologyError(
            f"hostlo {tap.name}: no endpoint owns {dst_ip} "
            f"(queues: {[e.name for e in tap.endpoints]})"
        )
    if target.namespace is None:
        raise TopologyError(f"hostlo endpoint {target.name} is detached")
    walk.add("hostlo_deliver", kthread, target.name)
    walk.add("hostlo_rx", target.namespace, target.name)
    walk.see_device(target)
    return _ingress(target.namespace, dst_ip, dst_port, proto, walk)


def _nsm_cross(
    ns: NetworkNamespace,
    port: NsmPort,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Guest → host-owned stack across the bounded NSM boundary.

    The guest rings a doorbell and the message is copied once over the
    shared queue; everything after that — the whole protocol stack —
    runs in the host kernel thread owning the stack (NetKernel's NSM
    split).  There is no vhost hop and no interrupt injection.
    """
    stack = port.backend
    if not isinstance(stack, NsmHostStack):
        raise TopologyError(f"{port.name} is not backed by an NSM host stack")
    walk.flavors.add("nsm")
    walk.see_device(port)
    walk.see_device(stack)
    kthread = f"kthread:{_host_domain_of(stack)}:{stack.name}"
    walk.add("nsm_doorbell", ns, port.name)
    # The copy stage's label is the stack name: it is the "nsm.drop"
    # fault target, matching the forwarding engine's injection site.
    walk.add("nsm_copy", kthread, stack.name)
    walk.add("nsm_host_stack", kthread, stack.name)
    if stack.bridge is not None:
        return _bridge_recv(stack.bridge, stack, dst_ip, dst_port, proto, walk)
    if stack.namespace is None:
        raise TopologyError(f"NSM stack {stack.name} is detached")
    return _ingress(stack.namespace, dst_ip, dst_port, proto, walk)


def _nsm_rx(
    stack: NsmHostStack,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Host-owned stack → guest: RX processing host-side, one copy in."""
    port = stack.port
    if port is None or port.namespace is None:
        raise TopologyError(f"NSM stack {stack.name} serves no attached port")
    walk.flavors.add("nsm")
    walk.see_device(stack)
    walk.see_device(port)
    kthread = f"kthread:{_host_domain_of(stack)}:{stack.name}"
    walk.add("nsm_host_stack", kthread, stack.name)
    walk.add("nsm_copy", kthread, stack.name)
    walk.add("nsm_rx", port.namespace, port.name)
    return _ingress(port.namespace, dst_ip, dst_port, proto, walk)


def _vxlan_encap(
    ns: NetworkNamespace,
    tunnel: VxlanTunnel,
    dst_ip: Ipv4Address,
    dst_port: int,
    proto: str,
    walk: _Walk,
) -> tuple[NetworkNamespace, Ipv4Address, int, bool]:
    """Encapsulate, traverse the underlay to the remote VTEP, decapsulate."""
    walk.flavors.add("overlay")
    walk.vxlan_depth += 1
    walk.see_device(tunnel)
    walk.add("vxlan_encap", ns, tunnel.name)

    vtep_ip = tunnel.vtep_for(dst_ip)
    if vtep_ip is None:
        raise TopologyError(f"{tunnel.name}: no VTEP for {dst_ip}")

    # Underlay traversal: a UDP packet from this namespace to the VTEP.
    underlay_dest = _route_until_delivered(ns, vtep_ip, 4789, "udp", walk)

    # Find the matching tunnel device in the remote namespace.
    remote_tunnel = None
    for dev in underlay_dest.devices.values():
        if isinstance(dev, VxlanTunnel) and dev.vni == tunnel.vni:
            remote_tunnel = dev
            break
    if remote_tunnel is None:
        raise TopologyError(
            f"VTEP {vtep_ip} ({underlay_dest.name}) has no VXLAN device "
            f"with VNI {tunnel.vni}"
        )
    walk.add("vxlan_decap", underlay_dest, remote_tunnel.name)
    walk.see_device(remote_tunnel)

    # The inner frame now continues inside the remote namespace.
    if remote_tunnel.bridge is not None:
        return _bridge_recv(
            remote_tunnel.bridge, remote_tunnel, dst_ip, dst_port, proto, walk
        )
    return _ingress(underlay_dest, dst_ip, dst_port, proto, walk)

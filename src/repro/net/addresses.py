"""Ethernet MAC and IPv4 addressing with deterministic allocators."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import AddressExhaustedError, TopologyError


@dataclasses.dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit Ethernet MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**48:
            raise TopologyError(f"MAC out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff``."""
        parts = text.split(":")
        if len(parts) != 6:
            raise TopologyError(f"bad MAC {text!r}")
        try:
            octets = [int(p, 16) for p in parts]
        except ValueError as exc:
            raise TopologyError(f"bad MAC {text!r}") from exc
        if any(not 0 <= o <= 255 for o in octets):
            raise TopologyError(f"bad MAC {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @property
    def is_multicast(self) -> bool:
        return bool((self.value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        return bool((self.value >> 40) & 0x02)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{o:02x}" for o in octets)


BROADCAST_MAC = MacAddress(2**48 - 1)


@dataclasses.dataclass(frozen=True, order=True)
class Ipv4Address:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**32:
            raise TopologyError(f"IPv4 out of range: {self.value!r}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise TopologyError(f"bad IPv4 {text!r}")
        try:
            octets = [int(p) for p in parts]
        except ValueError as exc:
            raise TopologyError(f"bad IPv4 {text!r}") from exc
        if any(not 0 <= o <= 255 for o in octets):
            raise TopologyError(f"bad IPv4 {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return ".".join(
            str((self.value >> shift) & 0xFF) for shift in range(24, -8, -8)
        )


def ip(text: str) -> Ipv4Address:
    """Shorthand for :meth:`Ipv4Address.parse`."""
    return Ipv4Address.parse(text)


@dataclasses.dataclass(frozen=True)
class Ipv4Network:
    """An IPv4 network in CIDR form (``10.0.0.0/24``)."""

    network: Ipv4Address
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise TopologyError(f"bad prefix length {self.prefix_len!r}")
        if self.network.value & ~self.netmask_value:
            raise TopologyError(
                f"{self.network}/{self.prefix_len} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Ipv4Network":
        if "/" not in text:
            raise TopologyError(f"bad CIDR {text!r}")
        addr, _, plen = text.partition("/")
        try:
            prefix_len = int(plen)
        except ValueError as exc:
            raise TopologyError(f"bad CIDR {text!r}") from exc
        return cls(Ipv4Address.parse(addr), prefix_len)

    @property
    def netmask_value(self) -> int:
        if self.prefix_len == 0:
            return 0
        return ((1 << self.prefix_len) - 1) << (32 - self.prefix_len)

    @property
    def num_hosts(self) -> int:
        """Usable host addresses (excludes network and broadcast for /30
        and wider; /31 and /32 follow point-to-point conventions)."""
        size = 1 << (32 - self.prefix_len)
        return max(size - 2, 1) if self.prefix_len < 31 else size

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, Ipv4Address):
            return False
        return (addr.value & self.netmask_value) == self.network.value

    def host(self, index: int) -> Ipv4Address:
        """The *index*-th host address (1-based; 1 is usually the gateway)."""
        size = 1 << (32 - self.prefix_len)
        if not 1 <= index < size - (1 if self.prefix_len < 31 else 0):
            raise AddressExhaustedError(
                f"host index {index} out of range for /{self.prefix_len}"
            )
        return Ipv4Address(self.network.value + index)

    def hosts(self) -> t.Iterator[Ipv4Address]:
        for index in range(1, self.num_hosts + 1):
            yield self.host(index)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"


def cidr(text: str) -> Ipv4Network:
    """Shorthand for :meth:`Ipv4Network.parse`."""
    return Ipv4Network.parse(text)


class MacAllocator:
    """Allocates locally-administered MACs from a per-allocator OUI."""

    def __init__(self, oui: int = 0x52_54_00) -> None:
        if not 0 <= oui < 2**24:
            raise TopologyError(f"OUI out of range: {oui!r}")
        self._base = (oui | 0x02_00_00) << 24  # set locally-administered bit
        self._next = 1

    def allocate(self) -> MacAddress:
        if self._next >= 2**24:
            raise AddressExhaustedError("MAC allocator exhausted")
        mac = MacAddress(self._base | self._next)
        self._next += 1
        return mac


class SubnetAllocator:
    """Carves fixed-size subnets out of a parent network, in order."""

    def __init__(self, parent: Ipv4Network, prefix_len: int) -> None:
        if prefix_len < parent.prefix_len:
            raise TopologyError(
                f"child /{prefix_len} larger than parent /{parent.prefix_len}"
            )
        if prefix_len > 30:
            raise TopologyError("subnets smaller than /30 are not supported")
        self.parent = parent
        self.prefix_len = prefix_len
        self._next = 0
        self._count = 1 << (prefix_len - parent.prefix_len)

    def allocate(self) -> Ipv4Network:
        if self._next >= self._count:
            raise AddressExhaustedError(
                f"no more /{self.prefix_len} subnets in {self.parent}"
            )
        size = 1 << (32 - self.prefix_len)
        net = Ipv4Network(
            Ipv4Address(self.parent.network.value + self._next * size),
            self.prefix_len,
        )
        self._next += 1
        return net


class HostAllocator:
    """Allocates host addresses within one subnet, starting at ``.2``
    (``.1`` is conventionally the gateway/bridge)."""

    def __init__(self, network: Ipv4Network, first_index: int = 2) -> None:
        self.network = network
        self._next = first_index

    def allocate(self) -> Ipv4Address:
        addr = self.network.host(self._next)  # raises when exhausted
        self._next += 1
        return addr

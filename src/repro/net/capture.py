"""Packet capture taps and frame provenance (the ``tcpdump`` layer).

The forwarding engine (:mod:`repro.net.forwarding`) has always known
*where* a frame went — the free-text ``Frame.note`` strings that tests
grep with ``Delivery.visited`` — but free text is neither filterable
nor exportable.  This module formalizes it:

* :class:`Hop` — one machine-readable provenance record: which device,
  in which namespace, at which stage, with which verdict (forwarded /
  delivered / dropped{reason} / reflected / encapped / decapped).
* :class:`CapturePoint` — a tap on one :class:`~repro.net.devices
  .NetDevice`, bridge port or netfilter hook, holding the packets that
  matched its filter; one point becomes one interface block in the
  pcapng export (:mod:`repro.obs.pcap`).
* :class:`CaptureFilter` — a BPF-lite expression language (``host``,
  ``net``, ``proto``, ``dev``, ``port``, combined with ``and`` / ``or``
  / ``not`` and parentheses) for selective capture.
* :class:`CaptureSession` — the unit the engine talks to: it assigns
  frame ids, collects per-frame hop trails (deduplicated per
  ``(frame, device, stage)`` so a hostlo reflection to N queues is one
  provenance hop, not N), stamps strictly monotonic simulated
  timestamps, and keeps its own conservation ledger so the health
  layer can reconcile capture against the forwarding engine's.

Like :mod:`repro.obs` and :mod:`repro.faults`, one **active session**
may be held as a module global (``capture.use(session)``); the engine
checks it once per ``send`` — an untapped run never allocates a hop,
a trail or a packet record.
"""

from __future__ import annotations

import contextlib
import dataclasses
import fnmatch
import itertools
import typing as t

from repro.errors import ConfigurationError
from repro.net.addresses import Ipv4Address, Ipv4Network
from repro.obs import tracer as _active_tracer

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.net.devices import NetDevice
    from repro.net.forwarding import ForwardingEngine, Frame

#: Minimum spacing between two capture timestamps (simulated seconds).
#: The simulation clock does not advance inside one frame walk, so the
#: session nudges each stamp forward by one tick — exactly the pcapng
#: export's nanosecond resolution — to keep packet records strictly
#: monotonic.
_TICK_S = 1e-9

#: Terminal verdicts a hop can carry.
VERDICTS = ("forwarded", "delivered", "dropped", "reflected",
            "encapped", "decapped")


@dataclasses.dataclass(frozen=True)
class Hop:
    """One provenance record: a frame touching one device or hook."""

    seq: int
    frame_id: int
    ts: float
    stage: str
    device: str
    kind: str
    namespace: str
    verdict: str
    reason: str | None = None
    detail: str = ""

    def __str__(self) -> str:
        what = self.verdict if self.reason is None \
            else f"{self.verdict}:{self.reason}"
        where = f"{self.namespace}/{self.device}" if self.namespace \
            else self.device
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.stage} {where} {what}{extra}"


class CapturedPacket(t.NamedTuple):
    """One packet snapshot at a capture point (pre-synthesis).

    Addresses are snapshotted at capture time — a frame captured before
    a DNAT hop carries the pre-translation destination, matching what a
    real tap on that device would have seen.
    """

    ts: float
    frame_id: int
    src_mac: int | None
    dst_mac: int | None
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: str
    payload_bytes: int


class _PacketView(t.NamedTuple):
    """What a filter expression sees."""

    src_ip: Ipv4Address
    dst_ip: Ipv4Address
    proto: str
    src_port: int
    dst_port: int
    device: str


# -- the BPF-lite filter language ------------------------------------------
_Predicate = t.Callable[[_PacketView], bool]


class CaptureFilter:
    """A compiled BPF-lite expression.

    Grammar (familiar from tcpdump, reduced to the simulator's frame
    model)::

        expr    := term ("or" term)*
        term    := factor ("and" factor)*
        factor  := "not" factor | "(" expr ")" | primary
        primary := "host" IPV4 | "net" CIDR | "proto" NAME
                 | "dev" GLOB   | "port" NUMBER

    ``host`` and ``net`` match either direction; ``port`` matches
    source or destination; ``dev`` accepts fnmatch globs
    (``dev 'tap-*'``).  The empty expression matches everything.
    """

    def __init__(self, expression: str = "") -> None:
        self.expression = expression.strip()
        self._predicate = self._compile(self.expression)

    def matches(self, view: _PacketView) -> bool:
        return self._predicate(view)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<CaptureFilter {self.expression!r}>"

    # -- compilation -------------------------------------------------------
    @classmethod
    def _compile(cls, expression: str) -> _Predicate:
        if not expression:
            return lambda view: True
        tokens = expression.replace("(", " ( ").replace(")", " ) ").split()
        predicate, rest = cls._parse_or(tokens)
        if rest:
            raise ConfigurationError(
                f"capture filter: trailing tokens {' '.join(rest)!r}"
            )
        return predicate

    @classmethod
    def _parse_or(cls, tokens: list[str]) -> tuple[_Predicate, list[str]]:
        left, tokens = cls._parse_and(tokens)
        terms = [left]
        while tokens and tokens[0] == "or":
            right, tokens = cls._parse_and(tokens[1:])
            terms.append(right)
        if len(terms) == 1:
            return left, tokens
        return (lambda view: any(p(view) for p in terms)), tokens

    @classmethod
    def _parse_and(cls, tokens: list[str]) -> tuple[_Predicate, list[str]]:
        left, tokens = cls._parse_factor(tokens)
        factors = [left]
        while tokens and tokens[0] == "and":
            right, tokens = cls._parse_factor(tokens[1:])
            factors.append(right)
        if len(factors) == 1:
            return left, tokens
        return (lambda view: all(p(view) for p in factors)), tokens

    @classmethod
    def _parse_factor(cls, tokens: list[str]) -> tuple[_Predicate, list[str]]:
        if not tokens:
            raise ConfigurationError("capture filter: unexpected end")
        if tokens[0] == "not":
            inner, rest = cls._parse_factor(tokens[1:])
            return (lambda view: not inner(view)), rest
        if tokens[0] == "(":
            inner, rest = cls._parse_or(tokens[1:])
            if not rest or rest[0] != ")":
                raise ConfigurationError("capture filter: unbalanced '('")
            return inner, rest[1:]
        return cls._parse_primary(tokens)

    @staticmethod
    def _parse_primary(tokens: list[str]) -> tuple[_Predicate, list[str]]:
        keyword = tokens[0]
        if keyword not in ("host", "net", "proto", "dev", "port"):
            raise ConfigurationError(
                f"capture filter: unknown keyword {keyword!r}"
            )
        if len(tokens) < 2:
            raise ConfigurationError(
                f"capture filter: {keyword!r} needs an operand"
            )
        operand, rest = tokens[1].strip("'\""), tokens[2:]
        if keyword == "host":
            address = Ipv4Address.parse(operand)
            return (lambda v: address in (v.src_ip, v.dst_ip)), rest
        if keyword == "net":
            network = Ipv4Network.parse(operand)
            return (lambda v: v.src_ip in network or v.dst_ip in network), rest
        if keyword == "proto":
            proto = operand.lower()
            return (lambda v: v.proto == proto), rest
        if keyword == "port":
            try:
                port = int(operand)
            except ValueError:
                raise ConfigurationError(
                    f"capture filter: bad port {operand!r}"
                ) from None
            return (lambda v: port in (v.src_port, v.dst_port)), rest
        # dev GLOB
        return (lambda v: fnmatch.fnmatchcase(v.device, operand)), rest


class CapturePoint:
    """A tap on one device (or netfilter hook): matched packets land
    here, and the pcapng export writes one interface block per point."""

    def __init__(self, name: str, kind: str = "generic",
                 filter: CaptureFilter | str | None = None) -> None:
        self.name = name
        self.kind = kind
        if isinstance(filter, str):
            filter = CaptureFilter(filter)
        self.filter = filter
        self.packets: list[CapturedPacket] = []

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<CapturePoint {self.name!r} ({len(self.packets)} packets)>"


class _Trail:
    """Mutable per-frame provenance under construction."""

    __slots__ = ("fid", "parent", "counted", "origin", "hops",
                 "_hop_seen", "_pkt_seen", "terminal")

    def __init__(self, fid: int, parent: int | None, counted: bool,
                 origin: str) -> None:
        self.fid = fid
        self.parent = parent
        self.counted = counted
        self.origin = origin
        self.hops: list[Hop] = []
        self._hop_seen: set[tuple[str, str]] = set()
        self._pkt_seen: set[str] = set()
        self.terminal: tuple[str, str | None] | None = None


class CaptureSession:
    """One capture run: taps, trails, packets, and a ledger.

    Parameters
    ----------
    promiscuous:
        Auto-create a :class:`CapturePoint` for every device a frame
        touches (the ``--pcap`` harness mode).  Otherwise only
        explicitly tapped devices capture packets — but hop *trails*
        are always recorded while the session is active.
    filter:
        A session-wide :class:`CaptureFilter` (or expression string)
        every packet must pass in addition to any per-point filter.
    clock:
        Simulated-time source; defaults to the active tracer's clock
        (0.0 when tracing is off — stamps then advance by the tick
        alone, staying strictly monotonic either way).
    """

    def __init__(self, promiscuous: bool = False,
                 filter: CaptureFilter | str | None = None,
                 clock: t.Callable[[], float] | None = None) -> None:
        self.promiscuous = promiscuous
        if isinstance(filter, str):
            filter = CaptureFilter(filter)
        self.filter = filter
        self._clock = clock
        self._points: dict[str, CapturePoint] = {}
        self._trails: dict[int, _Trail] = {}
        self._fids = itertools.count(1)
        self._last_ts = 0.0
        self._seq = itertools.count(1)
        # The session's own conservation ledger over *counted* frames,
        # reconciled against the forwarding engine's by the health
        # layer (see repro.health.invariants.check_capture_conservation).
        self.frames_seen = 0
        self.frames_delivered = 0
        self.drops: dict[str, int] = {}

    # -- tap management ----------------------------------------------------
    def tap(self, device: "NetDevice | str",
            filter: CaptureFilter | str | None = None) -> CapturePoint:
        """Install a capture point on *device* (object or name)."""
        name = device if isinstance(device, str) else device.name
        kind = "generic" if isinstance(device, str) else device.kind
        point = self._points.get(name)
        if point is None:
            point = self._points[name] = CapturePoint(name, kind, filter)
        elif filter is not None:
            point.filter = (CaptureFilter(filter)
                            if isinstance(filter, str) else filter)
        return point

    def tap_hook(self, namespace: str, hook: str = "dnat",
                 filter: CaptureFilter | str | None = None) -> CapturePoint:
        """Install a capture point on a netfilter hook of *namespace*."""
        return self.tap(f"nf:{namespace}:{hook}", filter)

    def points(self) -> tuple[CapturePoint, ...]:
        """Every capture point, sorted by name (stable export order)."""
        return tuple(self._points[name] for name in sorted(self._points))

    @property
    def packet_count(self) -> int:
        return sum(len(p.packets) for p in self._points.values())

    # -- engine-facing recording -------------------------------------------
    def _stamp(self) -> float:
        now = self._clock() if self._clock is not None \
            else _active_tracer().now
        if now <= self._last_ts:
            now = self._last_ts + _TICK_S
        self._last_ts = now
        return now

    def begin_frame(self, frame: "Frame", origin: str = "",
                    parent: int | None = None) -> int:
        """Assign a frame id and open its provenance trail."""
        fid = next(self._fids)
        frame.fid = fid
        self._trails[fid] = _Trail(fid, parent, frame.counted,
                                   origin or frame.origin)
        if frame.counted:
            self.frames_seen += 1
        return fid

    def hop(self, frame: "Frame", stage: str, device: "NetDevice | str",
            namespace: str = "", verdict: str = "forwarded",
            reason: str | None = None, detail: str = "") -> Hop | None:
        """Record one provenance hop (and capture the packet if tapped).

        Hops are deduplicated per ``(frame, device, stage)``: a hostlo
        tap reflecting one frame into N RX queues contributes exactly
        one ``reflected`` hop, not N — the regression the 3-queue test
        pins.  Returns the recorded hop, or ``None`` when deduplicated
        or the frame has no open trail.
        """
        trail = self._trails.get(frame.fid)
        if trail is None:
            return None
        dev_name = device if isinstance(device, str) else device.name
        dev_kind = "" if isinstance(device, str) else device.kind
        key = (dev_name, stage)
        if key in trail._hop_seen:
            return None
        trail._hop_seen.add(key)
        record = Hop(
            seq=next(self._seq), frame_id=frame.fid, ts=self._stamp(),
            stage=stage, device=dev_name, kind=dev_kind,
            namespace=namespace, verdict=verdict, reason=reason,
            detail=detail,
        )
        trail.hops.append(record)
        if verdict == "delivered":
            trail.terminal = ("delivered", None)
            if trail.counted:
                self.frames_delivered += 1
        elif verdict == "dropped" and trail.terminal is None:
            trail.terminal = ("dropped", reason)
            if trail.counted and reason is not None:
                self.drops[reason] = self.drops.get(reason, 0) + 1
        self._capture_packet(trail, frame, dev_name, dev_kind, record.ts)
        return record

    def _capture_packet(self, trail: _Trail, frame: "Frame",
                        dev_name: str, dev_kind: str, ts: float) -> None:
        point = self._points.get(dev_name)
        if point is None:
            if not self.promiscuous or dev_name.startswith("nf:"):
                return
            point = self._points[dev_name] = CapturePoint(dev_name, dev_kind)
        if dev_name in trail._pkt_seen:
            return
        view = _PacketView(
            src_ip=frame.src_ip, dst_ip=frame.dst_ip, proto=frame.proto,
            src_port=self.source_port(frame.fid), dst_port=frame.dst_port,
            device=dev_name,
        )
        if self.filter is not None and not self.filter.matches(view):
            return
        if point.filter is not None and not point.filter.matches(view):
            return
        trail._pkt_seen.add(dev_name)
        point.packets.append(CapturedPacket(
            ts=ts, frame_id=frame.fid,
            src_mac=frame.src_mac.value if frame.src_mac else None,
            dst_mac=frame.dst_mac.value if frame.dst_mac else None,
            src_ip=frame.src_ip.value, dst_ip=frame.dst_ip.value,
            src_port=view.src_port, dst_port=frame.dst_port,
            proto=frame.proto, payload_bytes=frame.payload_bytes,
        ))

    def finish_frame(self, frame: "Frame") -> tuple[Hop, ...]:
        """Close the frame's trail and return it as an immutable chain."""
        trail = self._trails.get(frame.fid)
        if trail is None:
            return ()
        return tuple(trail.hops)

    # -- inspection --------------------------------------------------------
    @staticmethod
    def source_port(fid: int) -> int:
        """The deterministic ephemeral source port synthesized for a
        frame (the frame model carries only the destination port)."""
        return 33000 + (fid % 28000)

    def trail_of(self, fid: int) -> tuple[Hop, ...]:
        trail = self._trails.get(fid)
        return tuple(trail.hops) if trail is not None else ()

    def trails(self) -> dict[int, tuple[Hop, ...]]:
        """Every recorded trail, ``{frame_id: hop chain}``."""
        return {fid: tuple(tr.hops) for fid, tr in self._trails.items()}

    def children_of(self, fid: int) -> tuple[int, ...]:
        """Frame ids encapsulated under *fid* (VXLAN outer frames)."""
        return tuple(sorted(
            tr.fid for tr in self._trails.values() if tr.parent == fid
        ))

    def ledger(self) -> tuple[int, int, dict[str, int]]:
        """``(seen, delivered, drops-by-reason)`` over counted frames."""
        return self.frames_seen, self.frames_delivered, dict(self.drops)

    def reconcile(self, engine: "ForwardingEngine") -> list[str]:
        """Mismatches between this session's ledger and the engine's.

        Meaningful when the session was active for the same accounting
        period as the engine's ledger (reset both together); every
        counted frame the engine sent must then appear here with the
        same terminal verdict.
        """
        problems: list[str] = []
        if self.frames_seen != engine.frames_sent:
            problems.append(
                f"capture saw {self.frames_seen} frames, "
                f"engine sent {engine.frames_sent}"
            )
        if self.frames_delivered != engine.frames_delivered:
            problems.append(
                f"capture delivered {self.frames_delivered}, "
                f"engine delivered {engine.frames_delivered}"
            )
        if self.drops != engine.drops:
            problems.append(
                f"capture drops {self.drops!r} != engine drops "
                f"{engine.drops!r}"
            )
        return problems


# -- the active session (module global, like obs/faults) -------------------
_ACTIVE: CaptureSession | None = None


def active_session() -> CaptureSession | None:
    """The installed session, or ``None`` (the zero-overhead default)."""
    return _ACTIVE


def install(session: CaptureSession) -> None:
    """Make *session* the one forwarding engines emit into."""
    global _ACTIVE
    _ACTIVE = session


def uninstall() -> None:
    """Back to the default: no capture, no per-frame work."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def use(session: CaptureSession) -> t.Iterator[CaptureSession]:
    """Install *session* for the enclosed block, then restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous

"""The Kubernetes whole-pod baseline scheduling (§5.3.1 steps 1–3).

1. each user starts with no VM and no pod;
2. the user's pods are scheduled offline, biggest first;
3. each pod goes (a) whole onto the already-bought VM that best fits
   under the "most requested" policy, otherwise (b) onto a newly bought
   VM of the cheapest model that can host the whole pod.
"""

from __future__ import annotations

import typing as t

from repro.costsim.packing import BoughtVm, PlacedContainer
from repro.traces.aws import cheapest_fitting
from repro.traces.google import TracePod


def schedule_user(pods: t.Sequence[TracePod],
                  policy: str = "most-requested") -> list[BoughtVm]:
    """Schedule one user's pods; returns the bought VMs.

    ``policy`` selects the node-scoring rule: ``"most-requested"``
    (the paper's grouping policy) or ``"least-requested"`` (Kubernetes'
    spreading alternative, exposed for the scheduler ablation).
    """
    direction = {"most-requested": 1.0, "least-requested": -1.0}[policy]
    vms: list[BoughtVm] = []
    for pod in sorted(pods, key=lambda p: p.size_key, reverse=True):
        target = _pick_node(vms, pod, direction)
        if target is None:
            target = BoughtVm(cheapest_fitting(pod.cpu, pod.memory))
            vms.append(target)
        for container in pod.containers:
            target.place(
                PlacedContainer(
                    pod_name=pod.name,
                    container=container,
                    splittable=pod.splittable,
                )
            )
    return vms


def _pick_node(vms: t.Sequence[BoughtVm], pod: TracePod,
               direction: float) -> BoughtVm | None:
    """Among VMs that can hold the whole pod, the best-scoring one."""
    best: BoughtVm | None = None
    best_score = -float("inf")
    for vm in vms:
        if not vm.fits(pod.cpu, pod.memory):
            continue
        score = direction * vm.requested_score()
        if score > best_score:
            best, best_score = vm, score
    return best

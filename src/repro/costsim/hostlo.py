"""The Hostlo improvement pass (§5.3.1 step 4).

"For Hostlo, we improve this scheduling by moving containers to the VMs
that have the most wasted resources, smallest containers first, in the
hope of eliminating the waste and reducing the number of needed VMs or
shrinking the sizes of VMs — thus reducing costs."

Concretely: containers of splittable pods are considered smallest
first; each is moved into the most-wasted *other* VM that can take it,
provided the destination is strictly more wasted than the source (so
moves consolidate instead of shuffling).  Passes repeat until no move
applies.  Emptied VMs are returned; every remaining VM is replaced by
the cheapest model that still holds its load.  The pod fragments that
end up on different VMs are exactly the deployments Hostlo's datapath
makes possible.
"""

from __future__ import annotations

import typing as t

from repro.costsim.packing import BoughtVm, PlacedContainer, total_cost
from repro.traces.aws import cheapest_fitting

_MAX_PASSES = 8

#: A reshuffle below this relative gain is not worth the operational
#: churn (hot-plugging hostlo devices, migrating containers); the
#: orchestrator keeps the original placement.  This threshold also
#: reproduces fig 9's shape: only a minority of users (≈11 %) see a
#: worthwhile saving.
MIN_WORTHWHILE_SAVING = 0.025


def improve_assignment(
    vms: t.Sequence[BoughtVm],
    cost_fn: t.Callable[[t.Sequence[BoughtVm]], float] | None = None,
) -> list[BoughtVm]:
    """Return an improved (never worse) copy of the assignment.

    *cost_fn* is the objective used to compare candidate placements
    and to apply the worthwhile-saving threshold; it defaults to the
    pure dollar cost :func:`~repro.costsim.packing.total_cost`.  Pass
    e.g. :meth:`repro.fabric.costs.TopologyCostModel.cost` to also
    price the hostlo reflection penalty of splitting a pod across
    topologically distant hosts.  The inner repacking heuristics keep
    optimising raw VM spend regardless — the objective only decides
    which resulting placement wins.
    """
    if cost_fn is None:
        cost_fn = total_cost
    baseline_cost = cost_fn(vms)
    working = [vm.clone() for vm in vms]

    # Strategy 1: consolidating moves, then drop/shrink/split VMs.
    for _ in range(_MAX_PASSES):
        if not _one_pass(working):
            break
    working = [vm for vm in working if not vm.is_empty]
    for vm in working:
        vm.model = vm.shrunk_model()
    working = _resplit_all(working)

    # Strategy 2: no moves, just right-size what Kubernetes bought.
    # Moving smallest-first can *fill* wasted VMs and defeat the
    # resplit, so the orchestrator evaluates both and keeps the better.
    resplit_only = _resplit_all([vm.clone() for vm in vms])

    best = min((working, resplit_only), key=cost_fn)
    if cost_fn(best) >= baseline_cost * (1.0 - MIN_WORTHWHILE_SAVING):
        # The crude greedy can fail to help (or helps marginally):
        # keep the original placement.
        return [vm.clone() for vm in vms]
    return best


def _resplit_all(vms: t.Sequence[BoughtVm]) -> list[BoughtVm]:
    """Apply :func:`_resplit` to every VM.

    "...or shrinking the sizes of VMs": a wasteful VM may also be
    replaced by *several smaller* ones, as in the paper's motivating
    example (one m5.2xlarge → m5.large + m5.xlarge).  Hostlo makes
    this legal even when the VM hosts one big pod.
    """
    result: list[BoughtVm] = []
    for vm in vms:
        result.extend(_resplit(vm))
    return result


def _one_pass(vms: list[BoughtVm]) -> bool:
    """One smallest-first sweep of container moves; True if any moved."""
    moved = False
    items: list[tuple[PlacedContainer, BoughtVm]] = [
        (item, vm) for vm in vms for item in vm.placed if item.splittable
    ]
    items.sort(key=lambda pair: pair[0].size_key)
    for item, source in items:
        if item not in source.placed:  # already moved in this pass
            continue
        destination = _most_wasted_destination(vms, source, item)
        if destination is None:
            continue
        source.remove(item)
        destination.place(item)
        moved = True
    return moved


def _most_wasted_destination(
    vms: t.Sequence[BoughtVm], source: BoughtVm, item: PlacedContainer
) -> BoughtVm | None:
    """The most-wasted other VM that takes *item* and consolidates.

    A destination must be strictly more wasted than the source would be
    attractive to fill — otherwise containers would oscillate between
    equally-loaded VMs forever.
    """
    best: BoughtVm | None = None
    best_waste = source.waste
    for vm in vms:
        if vm is source or not vm.fits(item.cpu, item.memory):
            continue
        if vm.waste > best_waste + 1e-12:
            best, best_waste = vm, vm.waste
    return best


def _resplit(vm: BoughtVm) -> list[BoughtVm]:
    """Try to repack one VM's load into a cheaper set of smaller VMs.

    Containers of unsplittable pods move as one atom; splittable pods'
    containers move independently (their localhost becomes a hostlo).
    Best-fit decreasing; the original VM is kept when not beaten.
    """
    atoms: dict[str, list[PlacedContainer]] = {}
    singles: list[list[PlacedContainer]] = []
    for item in vm.placed:
        if item.splittable:
            singles.append([item])
        else:
            atoms.setdefault(item.pod_name, []).append(item)
    groups = list(atoms.values()) + singles
    if len(groups) <= 1:
        # One atom: still worth trying a straight shrink (already done
        # by the caller), but nothing to split.
        return [vm]

    def group_size(group: list[PlacedContainer]) -> tuple[float, float]:
        return (sum(i.cpu for i in group), sum(i.memory for i in group))

    groups.sort(key=lambda g: max(*group_size(g)), reverse=True)
    new_vms: list[BoughtVm] = []
    for group in groups:
        cpu, memory = group_size(group)
        best: BoughtVm | None = None
        best_waste = float("inf")
        for candidate in new_vms:
            if candidate.fits(cpu, memory) and candidate.waste < best_waste:
                best, best_waste = candidate, candidate.waste
        if best is None:
            best = BoughtVm(cheapest_fitting(cpu, memory))
            new_vms.append(best)
        for item in group:
            best.place(item)
    # Right-size every new VM, then compare.
    for candidate in new_vms:
        candidate.model = candidate.shrunk_model()
    if total_cost(new_vms) < vm.model.price_per_h - 1e-12:
        return new_vms
    return [vm]


def split_pod_names(vms: t.Sequence[BoughtVm]) -> set[str]:
    """Pods whose containers ended up on more than one VM (need hostlo)."""
    locations: dict[str, set[str]] = {}
    for vm in vms:
        for item in vm.placed:
            locations.setdefault(item.pod_name, set()).add(vm.name)
    return {pod for pod, where in locations.items() if len(where) > 1}

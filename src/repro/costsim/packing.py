"""Bought-VM state for the cost simulation."""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

from repro.errors import CapacityError
from repro.traces.aws import VmModel, cheapest_fitting
from repro.traces.google import TraceContainer

_vm_ids = itertools.count()


@dataclasses.dataclass(eq=False)
class PlacedContainer:
    """A container placed on a VM, remembering its pod.

    Identity semantics (``eq=False``): two containers of one pod may
    request identical resources yet remain distinct placements; the
    online simulation tracks them individually across migrations.
    """

    pod_name: str
    container: TraceContainer
    splittable: bool

    @property
    def cpu(self) -> float:
        return self.container.cpu

    @property
    def memory(self) -> float:
        return self.container.memory

    @property
    def size_key(self) -> float:
        return max(self.cpu, self.memory)


class BoughtVm:
    """One VM a user bought, with its placed containers."""

    def __init__(self, model: VmModel, name: str | None = None) -> None:
        self.model = model
        self.name = name or f"vm-{next(_vm_ids)}"
        self.placed: list[PlacedContainer] = []
        self._used_cpu = 0.0
        self._used_memory = 0.0

    # -- capacity ------------------------------------------------------------
    @property
    def used_cpu(self) -> float:
        return self._used_cpu

    @property
    def used_memory(self) -> float:
        return self._used_memory

    @property
    def free_cpu(self) -> float:
        return self.model.cpu_rel - self.used_cpu

    @property
    def free_memory(self) -> float:
        return self.model.memory_rel - self.used_memory

    @property
    def waste(self) -> float:
        """Unused capacity, the quantity the improvement pass targets."""
        return self.free_cpu + self.free_memory

    @property
    def is_empty(self) -> bool:
        return not self.placed

    def fits(self, cpu: float, memory: float) -> bool:
        return cpu <= self.free_cpu + 1e-12 and memory <= self.free_memory + 1e-12

    def requested_score(self) -> float:
        """Kubernetes "most requested": mean requested fraction."""
        return 0.5 * (
            self.used_cpu / self.model.cpu_rel
            + self.used_memory / self.model.memory_rel
        )

    # -- mutation ------------------------------------------------------------
    def place(self, item: PlacedContainer) -> None:
        if not self.fits(item.cpu, item.memory):
            raise CapacityError(
                f"{self.name} ({self.model.name}): container does not fit"
            )
        self.placed.append(item)
        self._used_cpu += item.cpu
        self._used_memory += item.memory

    def remove(self, item: PlacedContainer) -> None:
        self.placed.remove(item)
        self._used_cpu -= item.cpu
        self._used_memory -= item.memory

    def shrunk_model(self) -> VmModel:
        """The cheapest catalog model that still holds this VM's load."""
        if self.is_empty:
            raise CapacityError(f"{self.name} is empty; return it instead")
        return cheapest_fitting(self.used_cpu, self.used_memory)

    def clone(self) -> "BoughtVm":
        copy = BoughtVm(self.model, name=self.name)
        copy.placed = list(self.placed)
        copy._used_cpu = self._used_cpu
        copy._used_memory = self._used_memory
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<BoughtVm {self.name} {self.model.name} "
            f"cpu {self.used_cpu:.3f}/{self.model.cpu_rel:.3f} "
            f"containers={len(self.placed)}>"
        )


def total_cost(vms: t.Iterable[BoughtVm]) -> float:
    """Hourly cost of a set of bought VMs."""
    return sum(vm.model.price_per_h for vm in vms)

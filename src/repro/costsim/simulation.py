"""Per-user cost simulation driver."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.costsim.hostlo import improve_assignment, split_pod_names
from repro.costsim.kubernetes import schedule_user
from repro.costsim.packing import total_cost
from repro.traces.google import TraceUser


@dataclasses.dataclass(frozen=True)
class UserOutcome:
    """Costs of one user under both schedulers."""

    user: str
    kubernetes_cost: float
    hostlo_cost: float
    vms_before: int
    vms_after: int
    split_pods: int

    @property
    def absolute_saving(self) -> float:
        return self.kubernetes_cost - self.hostlo_cost

    @property
    def relative_saving(self) -> float:
        if self.kubernetes_cost <= 0:
            return 0.0
        return self.absolute_saving / self.kubernetes_cost

    @property
    def saved(self) -> bool:
        return self.absolute_saving > 1e-9


def simulate_user(
    user: TraceUser,
    cost_fn: t.Callable[[t.Sequence[t.Any]], float] | None = None,
) -> UserOutcome:
    """Run the §5.3.1 comparison for one user.

    *cost_fn* overrides the improvement pass's objective (default:
    dollar cost); see :func:`repro.costsim.hostlo.improve_assignment`.
    The reported ``*_cost`` fields stay in dollars either way, so
    outcomes remain comparable across objectives.
    """
    baseline = schedule_user(user.pods)
    improved = improve_assignment(baseline, cost_fn=cost_fn)
    return UserOutcome(
        user=user.name,
        kubernetes_cost=total_cost(baseline),
        hostlo_cost=total_cost(improved),
        vms_before=len(baseline),
        vms_after=len(improved),
        split_pods=len(split_pod_names(improved)),
    )


def simulate_costs(
    users: t.Sequence[TraceUser],
    cost_fn: t.Callable[[t.Sequence[t.Any]], float] | None = None,
) -> list[UserOutcome]:
    """Run the comparison for every user."""
    return [simulate_user(user, cost_fn=cost_fn) for user in users]

"""Fig 9 report: the distribution of relative cost savings."""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.costsim.simulation import UserOutcome
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SavingsReport:
    """Aggregate view of the per-user outcomes (the fig 9 quantities)."""

    outcomes: tuple[UserOutcome, ...]

    @classmethod
    def from_outcomes(cls, outcomes: t.Sequence[UserOutcome]) -> "SavingsReport":
        if not outcomes:
            raise ConfigurationError("no outcomes to report")
        return cls(outcomes=tuple(outcomes))

    # -- the paper's headline quantities ---------------------------------
    @property
    def user_count(self) -> int:
        return len(self.outcomes)

    @property
    def saver_fraction(self) -> float:
        """Fraction of users whose bill shrinks (paper: ≈11.4 %)."""
        return sum(o.saved for o in self.outcomes) / self.user_count

    @property
    def savers_above_5pct_fraction(self) -> float:
        """Among savers, fraction saving more than 5 % (paper: ≈66.7 %)."""
        savers = [o for o in self.outcomes if o.saved]
        if not savers:
            return 0.0
        return sum(o.relative_saving > 0.05 for o in savers) / len(savers)

    @property
    def max_relative_saving(self) -> float:
        """Paper: ≈40 %."""
        return max(o.relative_saving for o in self.outcomes)

    @property
    def max_absolute_saving(self) -> float:
        """Paper: ≈237 $/h (a ≈35 % reduction for that user)."""
        return max(o.absolute_saving for o in self.outcomes)

    @property
    def biggest_saver(self) -> UserOutcome:
        return max(self.outcomes, key=lambda o: o.absolute_saving)

    def histogram(self, bins: t.Sequence[float] = (0.0, 0.05, 0.10, 0.20,
                                                   0.30, 0.40, 1.0)) -> list[tuple[str, int]]:
        """Counts of savers per relative-saving bucket (fig 9's bars)."""
        savings = np.array([o.relative_saving for o in self.outcomes if o.saved])
        rows: list[tuple[str, int]] = []
        for low, high in zip(bins[:-1], bins[1:]):
            count = int(np.count_nonzero((savings > low) & (savings <= high)))
            rows.append((f"{low:.0%}–{high:.0%}", count))
        return rows

    def render(self) -> str:
        """Human-readable fig 9 summary."""
        lines = [
            f"users simulated          : {self.user_count}",
            f"users saving money       : {self.saver_fraction:.1%}"
            f"  (paper ≈ 11.4%)",
            f"savers above 5% saving   : {self.savers_above_5pct_fraction:.1%}"
            f"  (paper ≈ 66.7%)",
            f"max relative saving      : {self.max_relative_saving:.1%}"
            f"  (paper ≈ 40%)",
            f"max absolute saving      : {self.max_absolute_saving:.1f} $/h"
            f"  (paper ≈ 237 $/h)",
            "savers per relative-saving bucket:",
        ]
        for label, count in self.histogram():
            lines.append(f"  {label:>9s}: {count}")
        return "\n".join(lines)

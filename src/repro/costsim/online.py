"""Online cost simulation: pods arrive and depart over time.

The paper's §5.3.1 study is offline (all pods known upfront, biggest
first).  Real clusters see churn, and that is where cross-VM placement
pays twice: a pod that fits nowhere whole can still *start now* on the
waste of existing VMs instead of forcing a new purchase, and departures
leave holes that consolidation can empty and return.

This module replays a timed arrival/departure stream twice:

* **Kubernetes baseline** — whole pods only; buy on no-fit; release a
  VM the moment it empties (no resizing of running VMs — this is
  online).
* **Hostlo** — same, but a pod that fits nowhere whole is split across
  existing waste (smallest containers into most-wasted VMs) before
  anything is bought, and each departure triggers a consolidation pass
  that migrates containers of splittable pods out of nearly-empty VMs
  so those VMs can be returned.

Cost is the integral of VM prices over time ($·h), so keeping a VM an
hour longer is exactly as expensive as buying it an hour earlier.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing as t

from repro.costsim.packing import BoughtVm, PlacedContainer
from repro.errors import CapacityError, ConfigurationError
from repro.sim.rng import RngRegistry
from repro.traces.aws import cheapest_fitting
from repro.traces.google import TraceConfig, TracePod, generate_trace


@dataclasses.dataclass(frozen=True)
class PodEvent:
    """One pod's lifetime in the stream."""

    pod: TracePod
    arrival_h: float
    duration_h: float

    @property
    def departure_h(self) -> float:
        return self.arrival_h + self.duration_h


@dataclasses.dataclass(frozen=True)
class OnlineConfig:
    """Arrival/duration shaping on top of the fig 9 population."""

    trace: TraceConfig = dataclasses.field(default_factory=TraceConfig)
    horizon_h: float = 24.0
    mean_duration_h: float = 6.0
    seed: int = 77

    def __post_init__(self) -> None:
        if self.horizon_h <= 0 or self.mean_duration_h <= 0:
            raise ConfigurationError("horizon/duration must be positive")


def generate_events(config: OnlineConfig | None = None) -> list[PodEvent]:
    """A timed stream: every fig 9 pod gets an arrival and a duration."""
    config = config or OnlineConfig()
    rng = RngRegistry(config.seed).stream("online-arrivals")
    events: list[PodEvent] = []
    for user in generate_trace(config.trace):
        for pod in user.pods:
            arrival = float(rng.uniform(0.0, config.horizon_h))
            duration = float(rng.lognormal(
                mean=0.0, sigma=0.8
            )) * config.mean_duration_h
            events.append(PodEvent(pod=pod, arrival_h=arrival,
                                   duration_h=max(duration, 0.1)))
    events.sort(key=lambda e: e.arrival_h)
    return events


class _Fleet:
    """The running VMs plus the accumulated bill."""

    def __init__(self) -> None:
        self.vms: list[BoughtVm] = []
        self._bought_at: dict[str, float] = {}
        self.cost_dollar_h = 0.0
        self.peak_vms = 0
        self.buys = 0

    def buy(self, vm: BoughtVm, now_h: float) -> None:
        self.vms.append(vm)
        self._bought_at[vm.name] = now_h
        self.buys += 1
        self.peak_vms = max(self.peak_vms, len(self.vms))

    def release(self, vm: BoughtVm, now_h: float) -> None:
        uptime = now_h - self._bought_at.pop(vm.name)
        self.cost_dollar_h += uptime * vm.model.price_per_h
        self.vms.remove(vm)

    def release_empty(self, now_h: float) -> int:
        releasable = [vm for vm in self.vms if vm.is_empty]
        for vm in releasable:
            self.release(vm, now_h)
        return len(releasable)

    def finalize(self, now_h: float) -> None:
        for vm in list(self.vms):
            self.release(vm, now_h)


@dataclasses.dataclass(frozen=True)
class OnlineOutcome:
    """Costs of the whole stream under both schedulers."""

    kubernetes_cost: float  # $·h over the horizon
    hostlo_cost: float
    kubernetes_buys: int
    hostlo_buys: int
    kubernetes_peak_vms: int
    hostlo_peak_vms: int
    split_placements: int

    @property
    def relative_saving(self) -> float:
        if self.kubernetes_cost <= 0:
            return 0.0
        return 1.0 - self.hostlo_cost / self.kubernetes_cost


def simulate_online(events: t.Sequence[PodEvent]) -> OnlineOutcome:
    """Replay the stream under both schedulers."""
    k8s_cost, k8s_buys, k8s_peak, _ = _replay(events, split=False)
    hlo_cost, hlo_buys, hlo_peak, splits = _replay(events, split=True)
    return OnlineOutcome(
        kubernetes_cost=k8s_cost,
        hostlo_cost=hlo_cost,
        kubernetes_buys=k8s_buys,
        hostlo_buys=hlo_buys,
        kubernetes_peak_vms=k8s_peak,
        hostlo_peak_vms=hlo_peak,
        split_placements=splits,
    )


def _replay(events: t.Sequence[PodEvent],
            split: bool) -> tuple[float, int, int, int]:
    fleet = _Fleet()
    location: dict[PlacedContainer, BoughtVm] = {}
    placements: dict[int, list[PlacedContainer]] = {}
    departures: list[tuple[float, int]] = []  # (time, event index)
    split_count = 0
    end_h = 0.0

    for index, event in enumerate(sorted(events, key=lambda e: e.arrival_h)):
        now = event.arrival_h
        end_h = max(end_h, event.departure_h)
        # Process departures that happened before this arrival.
        while departures and departures[0][0] <= now:
            dep_time, dep_index = heapq.heappop(departures)
            _depart(fleet, location, placements.pop(dep_index), dep_time,
                    split)

        placed, did_split = _arrive(fleet, location, event.pod, now, split)
        placements[index] = placed
        split_count += did_split
        heapq.heappush(departures, (event.departure_h, index))

    while departures:
        dep_time, dep_index = heapq.heappop(departures)
        _depart(fleet, location, placements.pop(dep_index), dep_time, split)
    fleet.finalize(end_h)
    return fleet.cost_dollar_h, fleet.buys, fleet.peak_vms, split_count


def _arrive(fleet: _Fleet, location: dict[PlacedContainer, BoughtVm],
            pod: TracePod, now: float,
            split: bool) -> tuple[list[PlacedContainer], int]:
    # Whole-pod first (most requested), as in §5.3.1 step 3a.
    target = None
    best = -1.0
    for vm in fleet.vms:
        if vm.fits(pod.cpu, pod.memory) and vm.requested_score() > best:
            target, best = vm, vm.requested_score()
    placed: list[PlacedContainer] = []
    if target is not None:
        for container in pod.containers:
            item = PlacedContainer(pod.name, container, pod.splittable)
            target.place(item)
            location[item] = target
            placed.append(item)
        return placed, 0

    if split and pod.splittable and len(pod.containers) > 1:
        # Fill existing waste, smallest containers into most-wasted VMs.
        items = sorted(
            (PlacedContainer(pod.name, c, True) for c in pod.containers),
            key=lambda i: i.size_key,
        )
        used_vms: set[str] = set()
        tentative: list[PlacedContainer] = []
        feasible = True
        for item in items:
            candidates = sorted(fleet.vms, key=lambda v: v.waste,
                                reverse=True)
            home = next(
                (vm for vm in candidates if vm.fits(item.cpu, item.memory)),
                None,
            )
            if home is None:
                feasible = False
                break
            home.place(item)
            location[item] = home
            used_vms.add(home.name)
            tentative.append(item)
        if feasible and len(used_vms) > 1:
            return tentative, 1
        # Roll back (either infeasible, or it fit one VM after all —
        # then the whole-pod path above would have found it; buy).
        for item in tentative:
            location.pop(item).remove(item)

    # Buy the cheapest VM that hosts the whole pod (step 3b).
    try:
        vm = BoughtVm(cheapest_fitting(pod.cpu, pod.memory))
    except CapacityError:
        raise
    fleet.buy(vm, now)
    for container in pod.containers:
        item = PlacedContainer(pod.name, container, pod.splittable)
        vm.place(item)
        location[item] = vm
        placed.append(item)
    return placed, 0


def _depart(fleet: _Fleet, location: dict[PlacedContainer, BoughtVm],
            placed: list[PlacedContainer],
            now: float, split: bool) -> None:
    for item in placed:
        location.pop(item).remove(item)
    fleet.release_empty(now)
    if split:
        _consolidate(fleet, location, now)


#: Consolidation passes per departure; bounds the O(V^2) cascade.
_MAX_CONSOLIDATION_PASSES = 2


def _consolidate(fleet: _Fleet,
                 location: dict[PlacedContainer, BoughtVm],
                 now: float) -> None:
    """Departure-triggered pass: empty the most-wasted VM if its
    (splittable) containers fit elsewhere, then return it."""
    changed = True
    passes = 0
    while changed and passes < _MAX_CONSOLIDATION_PASSES:
        passes += 1
        changed = False
        donors = sorted(fleet.vms, key=lambda v: v.waste, reverse=True)
        for donor in donors:
            if donor.is_empty or not all(i.splittable for i in donor.placed):
                continue
            items = sorted(donor.placed, key=lambda i: i.size_key)
            moved: list[tuple[BoughtVm, PlacedContainer]] = []
            ok = True
            for item in items:
                home = next(
                    (vm for vm in fleet.vms
                     if vm is not donor and vm.fits(item.cpu, item.memory)),
                    None,
                )
                if home is None:
                    ok = False
                    break
                donor.remove(item)
                home.place(item)
                location[item] = home
                moved.append((home, item))
            if not ok:
                for home, item in moved:
                    home.remove(item)
                    donor.place(item)
                    location[item] = donor
                continue
            fleet.release(donor, now)
            changed = True
            break

"""The Hostlo cost-savings simulation (§5.3.1, fig 9).

Replays a per-user pod population against the AWS m5 catalog twice:

1. **Kubernetes baseline** — whole pods, placed biggest-first on the
   already-bought VM that is "most requested", else on a newly bought
   cheapest-fitting VM (:mod:`repro.costsim.kubernetes`);
2. **Hostlo improvement** — containers of splittable pods are moved,
   smallest first, into the VMs with the most wasted resources; emptied
   VMs are returned and every remaining VM is shrunk to the cheapest
   model that still fits its load (:mod:`repro.costsim.hostlo`).

The per-user cost difference is the money Hostlo saves
(:mod:`repro.costsim.simulation`, :mod:`repro.costsim.report`).
"""

from repro.costsim.hostlo import improve_assignment
from repro.costsim.kubernetes import schedule_user
from repro.costsim.packing import BoughtVm
from repro.costsim.report import SavingsReport
from repro.costsim.simulation import UserOutcome, simulate_costs

__all__ = [
    "BoughtVm",
    "SavingsReport",
    "UserOutcome",
    "improve_assignment",
    "schedule_user",
    "simulate_costs",
]

"""Campaign benchmarking: the ``BENCH_campaign.json`` schema + gate.

Every campaign run can be summarised as a benchmark report — one
entry per job (experiment, preset, seed, wall seconds, cache hit) and
a totals block with the whole-campaign wall clock and its speedup over
the serial cost (the sum of per-job execution walls; for cache hits
that is the *original* run's cost, which is exactly what the hit
avoided).  A warm-cache rerun therefore shows ``cache_hits == jobs``
and a large ``speedup_vs_serial``.

:func:`compare` is the perf-regression gate: measured against a
committed baseline report, any job family or the campaign total that
got slower by more than the threshold fails the run.  Jobs below
``min_wall_s`` in both reports are ignored — at millisecond scale the
scheduler's noise would out-shout any real regression.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

from repro.campaign.runner import CampaignReport
from repro.errors import ConfigurationError, PerfRegressionError

#: Bumped when the report layout changes.
SCHEMA = "repro.campaign.bench/v1"

#: Allowed slowdown before :func:`compare` flags a regression (%).
DEFAULT_THRESHOLD_PCT = 25.0

#: Entries faster than this (seconds) in both reports are not gated.
DEFAULT_MIN_WALL_S = 0.25


def build_report(report: CampaignReport) -> dict[str, t.Any]:
    """The plain-data benchmark report for one campaign run."""
    entries = [
        {
            "experiment": outcome.job.experiment,
            "preset": outcome.job.preset,
            "seed": outcome.job.seed,
            "wall_s": round(outcome.wall_s, 6),
            "cache_hit": outcome.cache_hit,
        }
        for outcome in report.outcomes
    ]
    serial = report.serial_wall_s
    return {
        "schema": SCHEMA,
        "jobs": len(report.outcomes),
        "workers": report.workers,
        "cache_hits": report.cache_hits,
        "entries": entries,
        "totals": {
            "wall_s": round(report.wall_s, 6),
            "serial_wall_s": round(serial, 6),
            "speedup_vs_serial": round(serial / report.wall_s, 3)
            if report.wall_s > 0 else 0.0,
        },
    }


def write_report(data: t.Mapping[str, t.Any],
                 path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def load_report(path: str | pathlib.Path) -> dict[str, t.Any]:
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read bench report {path}: {exc}")
    if data.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {SCHEMA!r}, got {data.get('schema')!r}"
        )
    return data


def _families(data: t.Mapping[str, t.Any]) -> dict[tuple[str, str], float]:
    """Summed execution wall per (experiment, preset), cache hits
    excluded — a hit's near-zero cost says nothing about the code."""
    walls: dict[tuple[str, str], float] = {}
    for entry in data["entries"]:
        if entry["cache_hit"]:
            continue
        key = (entry["experiment"], entry["preset"])
        walls[key] = walls.get(key, 0.0) + float(entry["wall_s"])
    return walls


def compare(
    current: t.Mapping[str, t.Any],
    baseline: t.Mapping[str, t.Any],
    *,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> list[str]:
    """Regressions of *current* against *baseline*, as messages.

    Compares each (experiment, preset) family executed in both
    reports, plus the serial total.  Returns an empty list when the
    gate passes.
    """
    if threshold_pct <= 0:
        raise ConfigurationError("threshold_pct must be positive")
    limit = 1.0 + threshold_pct / 100.0
    violations: list[str] = []
    current_walls = _families(current)
    baseline_walls = _families(baseline)
    for key in sorted(set(current_walls) & set(baseline_walls)):
        now, then = current_walls[key], baseline_walls[key]
        if max(now, then) < min_wall_s:
            continue
        if now > then * limit:
            violations.append(
                f"{key[0]}@{key[1]}: {now:.3f}s vs baseline {then:.3f}s "
                f"(+{(now / then - 1.0) * 100.0:.0f}%, "
                f"limit +{threshold_pct:.0f}%)"
            )
    # Aggregate drift catcher: the summed execution wall of the job
    # families present in BOTH reports (cache hits and families run in
    # only one report would skew a totals-vs-totals comparison).
    common = set(current_walls) & set(baseline_walls)
    now = sum(current_walls[key] for key in common)
    then = sum(baseline_walls[key] for key in common)
    if max(now, then) >= min_wall_s and now > then * limit:
        violations.append(
            f"serial total: {now:.3f}s vs baseline {then:.3f}s "
            f"(+{(now / then - 1.0) * 100.0:.0f}%, "
            f"limit +{threshold_pct:.0f}%)"
        )
    return violations


def assert_no_regression(
    current: t.Mapping[str, t.Any],
    baseline: t.Mapping[str, t.Any],
    *,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> None:
    """Raise :class:`PerfRegressionError` when :func:`compare` flags."""
    violations = compare(
        current, baseline,
        threshold_pct=threshold_pct, min_wall_s=min_wall_s,
    )
    if violations:
        raise PerfRegressionError(
            "campaign perf regression:\n  " + "\n  ".join(violations)
        )

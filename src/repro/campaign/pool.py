"""A spawn-safe multiprocessing worker pool with crash recovery.

``multiprocessing.Pool`` cannot express what a campaign needs: a
per-job wall-clock timeout, and survival of a worker that dies mid-job
(segfault, ``os._exit``, OOM-kill).  This pool owns its processes
directly — one inbox :class:`~multiprocessing.Queue` per worker and a
shared outbox — so the driver always knows *which* job a dead or
overdue worker was holding and can requeue exactly that job.

Recovery reuses the :mod:`repro.faults` retry vocabulary: a
:class:`~repro.faults.recovery.RetryPolicy` bounds attempts per job
(the default ``max_attempts=2`` is the campaign's requeue-once
semantics).  Crashes and timeouts are *environmental* failures and
consume attempts; an exception raised inside the job function is
*deterministic* — rerunning it would fail identically — so it fails
the job immediately, whatever the budget says.

The ``spawn`` start method is used unconditionally: it is the only one
that works on every platform, never inherits a forked copy of the
parent's simulator state, and keeps workers importable-module-clean
(job functions must be top-level so they pickle by reference).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_mod
import time
import traceback
import typing as t

from repro.errors import ConfigurationError, JobFailedError
from repro.faults.recovery import RetryPolicy

#: The pool's requeue-once default: 1 try + 1 retry, no backoff delay
#: (a fresh worker process is itself the cool-down).
DEFAULT_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)


@dataclasses.dataclass(frozen=True)
class Task:
    """One unit of pool work: a picklable top-level function + args."""

    fn: t.Callable[..., t.Any]
    args: tuple[t.Any, ...] = ()
    label: str = ""


def worker_identity() -> dict[str, t.Any]:
    """Who is executing right now — stamped into distributed-trace
    docs so a span can name the worker process it ran in.  Works in a
    spawn worker and in the parent (thread executors) alike."""
    import os

    return {"pid": os.getpid()}


def _worker_main(inbox: t.Any, outbox: t.Any) -> None:
    """Worker loop: run tasks from *inbox* until the ``None`` sentinel."""
    while True:
        item = inbox.get()
        if item is None:
            return
        index, fn, args = item
        try:
            outbox.put((index, "ok", fn(*args)))
        except BaseException:
            outbox.put((index, "error", traceback.format_exc()))


@dataclasses.dataclass
class _Worker:
    proc: t.Any
    inbox: t.Any
    index: int | None = None
    deadline: float = 0.0


class WorkerPool:
    """Run tasks across *workers* processes; collect results in order."""

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout_s: float = 300.0,
        retry: RetryPolicy = DEFAULT_RETRY,
        poll_s: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"need at least one worker: {workers!r}")
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.workers = int(workers)
        self.timeout_s = float(timeout_s)
        self.retry = retry
        self._poll_s = float(poll_s)
        self._ctx = multiprocessing.get_context("spawn")

    def run(
        self,
        tasks: t.Sequence[Task],
        on_result: t.Callable[[int, t.Any], None] | None = None,
    ) -> list[t.Any]:
        """Execute every task; return their values in task order.

        ``on_result(index, value)`` fires as each task finishes (in
        completion order) — the campaign runner uses it to stream
        progress.  Raises :class:`JobFailedError` on the first job
        that fails deterministically or exhausts its attempts; the
        pool is torn down before the exception propagates.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        results: list[t.Any] = [None] * len(tasks)
        finished = [False] * len(tasks)
        attempts = [0] * len(tasks)
        pending: list[int] = list(range(len(tasks)))
        outbox = self._ctx.Queue()
        alive: list[_Worker] = []

        def spawn() -> None:
            inbox = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main, args=(inbox, outbox), daemon=False
            )
            proc.start()
            alive.append(_Worker(proc=proc, inbox=inbox))

        def label(i: int) -> str:
            return tasks[i].label or f"task {i}"

        try:
            for _ in range(min(self.workers, len(tasks))):
                spawn()
            remaining = len(tasks)
            while remaining:
                for worker in alive:
                    if worker.index is None and pending:
                        i = pending.pop(0)
                        attempts[i] += 1
                        worker.index = i
                        worker.deadline = time.monotonic() + self.timeout_s
                        worker.inbox.put((i, tasks[i].fn, tuple(tasks[i].args)))
                try:
                    index, status, payload = outbox.get(timeout=self._poll_s)
                except queue_mod.Empty:
                    pass
                else:
                    for worker in alive:
                        if worker.index == index:
                            worker.index = None
                    if not finished[index]:
                        finished[index] = True
                        remaining -= 1
                        if status == "error":
                            raise JobFailedError(
                                f"{label(index)} raised:\n{payload}",
                                job=label(index),
                                reason="exception",
                            )
                        results[index] = payload
                        if on_result is not None:
                            on_result(index, payload)
                    continue  # drain the outbox before health checks
                now = time.monotonic()
                for worker in list(alive):
                    if worker.index is None:
                        continue
                    crashed = not worker.proc.is_alive()
                    overdue = now > worker.deadline
                    if not (crashed or overdue):
                        continue
                    i = worker.index
                    reason = "crash" if crashed else "timeout"
                    self._retire(worker)
                    alive.remove(worker)
                    if attempts[i] < self.retry.max_attempts:
                        pending.insert(0, i)
                    else:
                        raise JobFailedError(
                            f"{label(i)}: worker {reason} "
                            f"(attempt {attempts[i]}/"
                            f"{self.retry.max_attempts})",
                            job=label(i),
                            reason=reason,
                        )
                    spawn()
        finally:
            for worker in alive:
                self._retire(worker, graceful=worker.index is None)
            outbox.cancel_join_thread()
        return results

    @staticmethod
    def _retire(worker: _Worker, graceful: bool = False) -> None:
        """Stop one worker: politely when idle, forcefully otherwise."""
        if graceful and worker.proc.is_alive():
            try:
                worker.inbox.put(None)
                worker.proc.join(timeout=5.0)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
        worker.inbox.cancel_join_thread()

"""The campaign layer: parallel, cached, self-benchmarking evaluation.

The harness (one experiment at a time, in process) stops scaling the
moment the evaluation does: a full sweep is 20+ experiments × presets
× seeds, embarrassingly parallel, and almost always mostly identical
to the previous sweep.  This package turns that list into a
*campaign*:

* :mod:`repro.campaign.spec` — experiments × presets × seeds expanded
  into independent jobs with stable keys (``fig04@quick#s2019``);
* :mod:`repro.campaign.cache` — a content-addressed result store; the
  key hashes the job, the resolved config and a fingerprint of every
  ``repro`` source file, so unchanged jobs are instant hits and any
  code edit invalidates everything it could have affected;
* :mod:`repro.campaign.pool` — a spawn-safe worker pool with per-job
  timeouts and crashed-worker requeue-once recovery (bounded by the
  :mod:`repro.faults` :class:`~repro.faults.recovery.RetryPolicy`
  vocabulary);
* :mod:`repro.campaign.runner` — orchestration: cache probe, fan-out,
  ordered collection, per-worker span/metric merging into one trace;
* :mod:`repro.campaign.bench` — ``BENCH_campaign.json`` reports and
  the perf-regression gate against a committed baseline;
* :mod:`repro.campaign.experiment` — the registered ``campaign``
  experiment, a self-check that parallel == serial and warm == hits.

The contract that makes all of it safe: a campaign's results are
**bit-identical to the serial harness**, whatever the worker count and
whether they were computed or replayed from cache.

CLI::

    python -m repro.harness --jobs 4 --cache .cache/campaign
    python -m repro.harness fig04 fig08 --preset quick --jobs 2 \\
        --cache .cache --bench BENCH_campaign.json
"""

from repro.campaign.bench import (
    assert_no_regression,
    build_report,
    compare,
    load_report,
    write_report,
)
from repro.campaign.cache import (
    CacheEntry,
    ResultCache,
    job_cache_key,
    source_fingerprint,
)
from repro.campaign.pool import Task, WorkerPool
from repro.campaign.runner import (
    CampaignReport,
    CampaignTrace,
    JobOutcome,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, JobSpec

__all__ = [
    "CacheEntry",
    "CampaignReport",
    "CampaignSpec",
    "CampaignTrace",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "Task",
    "WorkerPool",
    "assert_no_regression",
    "build_report",
    "compare",
    "job_cache_key",
    "load_report",
    "run_campaign",
    "source_fingerprint",
    "write_report",
]

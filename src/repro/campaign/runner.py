"""Campaign orchestration: cache probe → pool fan-out → ordered merge.

:func:`run_campaign` is the one entry point.  It expands the spec,
answers every job it can from the :class:`~repro.campaign.cache.
ResultCache`, fans the misses out over a
:class:`~repro.campaign.pool.WorkerPool` (or runs them inline for
``jobs=1``), then reassembles everything **in spec order** so a
campaign's output is independent of worker scheduling.

Worker→runner traffic is plain data: each worker ships back the
result as its canonical JSON (the same bytes the cache stores, so a
fresh result and a cache hit are literally the same serialisation),
its wall-clock seconds, and — when tracing — its span records and
metrics snapshot.  The runner re-numbers every worker's simulation
``run`` ids into one namespace and merges spans and metrics into a
single campaign-wide trace (NetKernel's decoupling move: execution in
the workers, observation at the consumer).
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
import typing as t

from repro import obs
from repro.campaign.cache import CacheEntry, ResultCache, job_cache_key
from repro.campaign.pool import Task, WorkerPool
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult
from repro.obs.export import (
    iter_records,
    write_records_chrome_trace,
    write_records_jsonl,
)
from repro.obs.metrics import merge_snapshots, render_snapshot

Progress = t.Optional[t.Callable[[str], None]]


def _execute_job(
    experiment: str,
    config: ExperimentConfig,
    trace: bool,
    sampling: dict[str, float] | None,
) -> dict[str, t.Any]:
    """Run one job; top-level so ``spawn`` workers can import it.

    Returns a plain-data payload (safe to queue across processes):
    the result's canonical JSON, wall seconds, and the span records +
    metrics snapshot when tracing.
    """
    from repro.harness.registry import run_experiment

    start = time.perf_counter()
    if trace:
        with obs.capture(sampling=dict(sampling or {})) as (tracer, metrics):
            result = run_experiment(experiment, config)
            records = list(iter_records(tracer))
            snapshot = metrics.snapshot()
    else:
        result = run_experiment(experiment, config)
        records, snapshot = None, None
    wall_s = time.perf_counter() - start
    result = result.with_meta(
        wall_s=round(wall_s, 6), config_fingerprint=config.fingerprint()
    )
    return {
        "result_json": result.to_json(),
        "wall_s": wall_s,
        "records": records,
        "metrics": snapshot,
    }


@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """One job's result plus how it was obtained."""

    job: JobSpec
    result: ExperimentResult
    #: Execution wall seconds — the *original* run's cost for a cache
    #: hit (what the hit saved), the fresh run's cost otherwise.
    wall_s: float
    cache_hit: bool


@dataclasses.dataclass(frozen=True)
class CampaignTrace:
    """The merged observability of every freshly executed job."""

    records: tuple[dict[str, t.Any], ...]
    metrics_snapshot: dict[str, t.Any]
    run_names: dict[int, str]


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """Everything one campaign run produced, in spec order."""

    outcomes: tuple[JobOutcome, ...]
    #: Whole-campaign wall seconds (includes cache probes and merging).
    wall_s: float
    #: Worker processes used (1 = inline serial execution).
    workers: int
    trace: CampaignTrace | None = None
    trace_files: tuple[pathlib.Path, ...] = ()

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cache_hit)

    @property
    def serial_wall_s(self) -> float:
        """The cost of computing every job once, serially — the sum of
        per-job execution walls (cached jobs contribute their original
        cost).  ``wall_s / serial_wall_s`` is the campaign's win."""
        return sum(outcome.wall_s for outcome in self.outcomes)

    def results(self) -> tuple[ExperimentResult, ...]:
        return tuple(outcome.result for outcome in self.outcomes)


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    trace_dir: str | pathlib.Path | None = None,
    sampling: t.Mapping[str, float] | None = None,
    progress: Progress = None,
    timeout_s: float = 600.0,
) -> CampaignReport:
    """Run *spec*: probe the cache, execute misses, merge, report.

    ``jobs=1`` executes misses inline (no subprocess), which is both
    the degenerate serial mode and the reference the parallel path
    must match bit-for-bit.  ``trace_dir`` enables per-worker tracing
    and writes the merged ``campaign.trace.json`` / ``.spans.jsonl`` /
    ``.metrics.txt`` there.  Cache hits carry no spans (nothing
    executed), so a fully warm traced campaign produces an empty
    trace — that is correct, not a bug.
    """
    started = time.perf_counter()
    jobspecs = spec.expand()
    total = len(jobspecs)
    emit = progress if progress is not None else (lambda line: None)

    keys: list[str | None] = [None] * total
    outcomes: list[JobOutcome | None] = [None] * total
    misses: list[int] = []
    hits = 0
    for i, job in enumerate(jobspecs):
        entry = None
        if cache is not None:
            keys[i] = job_cache_key(job)
            entry = cache.get(keys[i])
        if entry is not None:
            outcomes[i] = JobOutcome(job, entry.result, entry.wall_s, True)
            hits += 1
            emit(f"[{hits}/{total}] {job.key}: cache hit "
                 f"(saved {entry.wall_s:.2f}s)")
        else:
            misses.append(i)

    trace = trace_dir is not None
    effective_sampling = dict(sampling) if sampling is not None else None
    if trace and effective_sampling is None:
        from repro.harness.registry import DEFAULT_TRACE_SAMPLING

        effective_sampling = dict(DEFAULT_TRACE_SAMPLING)

    done = 0

    def absorb(miss_pos: int, payload: dict[str, t.Any]) -> None:
        nonlocal done
        i = misses[miss_pos]
        job = jobspecs[i]
        result = ExperimentResult.from_json(payload["result_json"])
        outcomes[i] = JobOutcome(job, result, payload["wall_s"], False)
        if cache is not None and keys[i] is not None:
            cache.put(CacheEntry(
                key=keys[i], job_key=job.key, experiment=job.experiment,
                preset=job.preset, seed=job.seed,
                wall_s=payload["wall_s"], result=result,
            ))
        done += 1
        emit(f"[{hits + done}/{total}] {job.key}: "
             f"ran in {payload['wall_s']:.2f}s")

    payloads: list[dict[str, t.Any]]
    if misses and jobs > 1:
        pool = WorkerPool(workers=min(jobs, len(misses)),
                          timeout_s=timeout_s)
        tasks = [
            Task(
                fn=_execute_job,
                args=(jobspecs[i].experiment, jobspecs[i].config, trace,
                      effective_sampling),
                label=jobspecs[i].key,
            )
            for i in misses
        ]
        payloads = pool.run(tasks, on_result=absorb)
    else:
        payloads = []
        for pos, i in enumerate(misses):
            payload = _execute_job(
                jobspecs[i].experiment, jobspecs[i].config, trace,
                effective_sampling,
            )
            payloads.append(payload)
            absorb(pos, payload)

    merged_trace: CampaignTrace | None = None
    trace_files: tuple[pathlib.Path, ...] = ()
    if trace:
        merged_trace = _merge_traces(
            [jobspecs[i] for i in misses], payloads
        )
        trace_files = _write_trace(merged_trace, pathlib.Path(trace_dir))

    return CampaignReport(
        outcomes=tuple(t.cast("list[JobOutcome]", outcomes)),
        wall_s=time.perf_counter() - started,
        workers=max(1, jobs),
        trace=merged_trace,
        trace_files=trace_files,
    )


def _merge_traces(
    jobspecs: t.Sequence[JobSpec],
    payloads: t.Sequence[dict[str, t.Any]],
) -> CampaignTrace:
    """Re-number per-worker run ids into one namespace and merge.

    Every worker's tracer counts runs from 1, so two workers' spans
    collide on ``run``; shifting each job's runs by the campaign-wide
    offset keeps them distinct and names them after the job.
    """
    records: list[dict[str, t.Any]] = []
    run_names: dict[int, str] = {}
    offset = 0
    for job, payload in zip(jobspecs, payloads):
        job_records = payload.get("records") or []
        highest = 0
        for record in job_records:
            shifted = dict(record)
            run = int(shifted.get("run", 0))
            highest = max(highest, run)
            shifted["run"] = run + offset
            run_names.setdefault(run + offset, f"{job.key}/r{run}")
            records.append(shifted)
        offset += highest
    snapshots = [p["metrics"] for p in payloads if p.get("metrics")]
    return CampaignTrace(
        records=tuple(records),
        metrics_snapshot=merge_snapshots(snapshots),
        run_names=run_names,
    )


def _write_trace(
    trace: CampaignTrace, trace_dir: pathlib.Path
) -> tuple[pathlib.Path, ...]:
    trace_dir.mkdir(parents=True, exist_ok=True)
    chrome = write_records_chrome_trace(
        trace.records, trace_dir / "campaign.trace.json", trace.run_names
    )
    spans = write_records_jsonl(
        trace.records, trace_dir / "campaign.spans.jsonl"
    )
    metrics = trace_dir / "campaign.metrics.txt"
    metrics.write_text(render_snapshot(trace.metrics_snapshot))
    return (chrome, spans, metrics)

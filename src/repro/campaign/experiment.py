"""The ``campaign`` experiment: the campaign layer proving itself.

Registered like any figure, this experiment runs a miniature campaign
— two quick experiments × two seeds — twice against a throwaway cache:
cold with two workers, then warm.  Each row asserts the subsystem's
two contracts in a form the harness can print and tests can pin:

* ``identical_to_serial`` — the pooled run's rows match an in-process
  serial ``run_experiment`` bit for bit;
* ``warm_hit`` — the second pass answered from the cache.

Rows contain only deterministic values (timings go to ``meta``), so
the campaign experiment itself caches and parallelises like any other.
"""

from __future__ import annotations

import tempfile

from repro.campaign.cache import ResultCache
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult

#: Small-but-real workload: one sub-second and one near-instant
#: experiment, so the mini-campaign exercises ordering without
#: dominating a full harness run.
MINI_EXPERIMENTS = ("fig02", "fig08")


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Campaign self-check: parallel == serial, warm cache all hits."""
    config = config or ExperimentConfig()
    spec = CampaignSpec(
        experiments=MINI_EXPERIMENTS,
        presets=("quick",),
        seeds=(config.seed, config.seed + 1),
    )
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as root:
        cache = ResultCache(root)
        cold = run_campaign(spec, jobs=2, cache=cache)
        warm = run_campaign(spec, jobs=2, cache=cache)

    from repro.harness.registry import run_experiment

    rows = []
    for cold_outcome, warm_outcome in zip(cold.outcomes, warm.outcomes):
        job = cold_outcome.job
        serial = run_experiment(job.experiment, job.config)
        rows.append({
            "job": job.key,
            "experiment": job.experiment,
            "preset": job.preset,
            "seed": job.seed,
            "rows": len(cold_outcome.result.rows),
            "identical_to_serial": cold_outcome.result.rows == serial.rows,
            "cold_hit": cold_outcome.cache_hit,
            "warm_hit": warm_outcome.cache_hit,
        })
    notes = (
        f"{len(rows)} jobs over {cold.workers} spawn workers; "
        f"warm pass: {warm.cache_hits}/{len(warm.outcomes)} cache hits",
        "identical_to_serial compares pooled rows to an in-process "
        "serial run of the same config",
    )
    return ExperimentResult(
        experiment="campaign",
        title="Campaign: parallel runner + result cache self-check",
        rows=tuple(rows),
        notes=notes,
        meta={
            "cold_wall_s": round(cold.wall_s, 3),
            "warm_wall_s": round(warm.wall_s, 3),
        },
    )

"""Campaign specs: experiments × presets × seeds → independent jobs.

A :class:`CampaignSpec` is the declarative description of an
evaluation sweep; :meth:`CampaignSpec.expand` turns it into a flat
tuple of :class:`JobSpec` — one fully resolved, deterministic unit of
work each.  Jobs carry everything a worker process needs (experiment
id + a resolved :class:`~repro.harness.config.ExperimentConfig`), so
they are independent of one another and of expansion order: the pool
may run them in any interleaving and the runner still collects results
in spec order.

Every job has a **stable key** (``fig04@quick#s2019``) that names it
across processes and sessions — progress lines, the result cache, the
benchmark report and the merged trace all speak in job keys.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ConfigurationError
from repro.harness.config import ExperimentConfig


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One unit of campaign work: run *experiment* under *config*."""

    experiment: str
    preset: str
    seed: int
    config: ExperimentConfig

    @property
    def key(self) -> str:
        """The stable job name: ``<experiment>@<preset>#s<seed>``."""
        return f"{self.experiment}@{self.preset}#s{self.seed}"


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """What to sweep: the cross product of the three axes.

    ``seeds=()`` (the default) means "the preset's own seed" — one job
    per experiment × preset.  ``fault_plan`` is threaded into every
    job's config (it only affects the ``chaos`` experiment, matching
    the serial CLI).
    """

    experiments: tuple[str, ...]
    presets: tuple[str, ...] = ("default",)
    seeds: tuple[int, ...] = ()
    fault_plan: str | None = None

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ConfigurationError("campaign needs at least one experiment")
        if not self.presets:
            raise ConfigurationError("campaign needs at least one preset")
        for axis_name, axis in (("experiments", self.experiments),
                                ("presets", self.presets),
                                ("seeds", self.seeds)):
            if len(set(axis)) != len(axis):
                raise ConfigurationError(
                    f"campaign {axis_name} contain duplicates: {axis}"
                )

    def expand(self) -> tuple[JobSpec, ...]:
        """The jobs, in (preset, seed, experiment) order.

        Unknown experiment ids and presets fail here, before any
        worker is spawned.
        """
        # Local import: the registry's `campaign` experiment reaches
        # back into this package, so the dependency must not be at
        # module import time.
        from repro.harness.registry import EXPERIMENTS

        unknown = [e for e in self.experiments if e not in EXPERIMENTS]
        if unknown:
            raise ConfigurationError(
                f"unknown experiments {unknown} (have: {sorted(EXPERIMENTS)})"
            )
        jobs: list[JobSpec] = []
        for preset in self.presets:
            base = ExperimentConfig.preset(preset)
            if self.fault_plan is not None:
                base = dataclasses.replace(base, fault_plan=self.fault_plan)
            for seed in self.seeds or (base.seed,):
                config = dataclasses.replace(base, seed=seed)
                for experiment in self.experiments:
                    jobs.append(JobSpec(experiment, preset, seed, config))
        return tuple(jobs)


def job_index(jobs: t.Sequence[JobSpec]) -> dict[str, JobSpec]:
    """Jobs by key, rejecting collisions (a spec bug if it happens)."""
    by_key: dict[str, JobSpec] = {}
    for job in jobs:
        if job.key in by_key:
            raise ConfigurationError(f"duplicate job key {job.key!r}")
        by_key[job.key] = job
    return by_key

"""Content-addressed on-disk cache of experiment results.

The campaign's answer to "don't recompute what didn't change" — the
same move ONCache makes per packet, applied per experiment.  A cache
key is the SHA-256 of three things:

* the **job key** (experiment @ preset # seed),
* the **resolved config** (every field of
  :class:`~repro.harness.config.ExperimentConfig`, canonical JSON),
* a **source fingerprint** of the entire installed :mod:`repro`
  package — the SHA-256 of every ``*.py`` file's path and contents.

The fingerprint is the invalidation rule: edit *any* simulator source
and every cached result goes stale at once, while doc/test/tooling
edits outside ``src/repro`` invalidate nothing.  That is deliberately
coarse — a per-module dependency graph would invalidate less, but it
could silently under-invalidate (experiments reach every layer of the
stack through dynamic dispatch); an always-correct coarse rule beats a
sometimes-wrong fine one for a result cache whose entries cost seconds
to rebuild.

Entries are one JSON file each under ``<root>/<kk>/<key>.json``
(two-hex-char fan-out so huge caches don't produce huge directories),
written atomically via rename, so concurrent campaigns sharing a cache
directory never observe torn entries.  Corrupt or unreadable entries
read as misses.

**Concurrent submitters.**  The write path is additionally guarded by
an ``O_EXCL`` lockfile (``<key>.json.lock``): whichever process
creates the lock writes the entry; a loser simply skips, because two
writers of the same content address are by construction writing the
same payload.  Combined with the rename-only publish this makes
``put`` idempotent and race-free across any number of service shards
or campaign workers sharing a cache directory — the same key is never
corrupted, torn, or double-counted.  Each lock records its holder's
PID; a lock whose holder is dead (the crashed-writer case) is
reclaimed immediately, and one whose holder cannot be probed falls
back to the :data:`STALE_LOCK_S` age rule — so a SIGKILLed writer
stalls concurrent publishers for milliseconds, not a minute.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import hashlib
import json
import os
import pathlib
import tempfile
import time
import typing as t

import repro
from repro.campaign.spec import JobSpec
from repro.harness.results import ExperimentResult

#: Bump when the entry layout changes; part of every cache key.
SCHEMA = 1

#: A write lock older than this (seconds) is presumed abandoned by a
#: crashed writer and is broken by the next one.
STALE_LOCK_S = 60.0


@functools.lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Cached per process: the tree is read once (~175 files, a few
    milliseconds), then every job key derivation reuses the digest.
    """
    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def job_cache_key(job: JobSpec, fingerprint: str | None = None) -> str:
    """The content address of *job*'s result under today's sources."""
    payload = json.dumps(
        {
            "schema": SCHEMA,
            "job": job.key,
            "config": dataclasses.asdict(job.config),
            "source": fingerprint if fingerprint is not None
            else source_fingerprint(),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One stored result plus the provenance needed to report on it."""

    key: str
    job_key: str
    experiment: str
    preset: str
    seed: int
    wall_s: float
    result: ExperimentResult

    def to_payload(self) -> dict[str, t.Any]:
        return {
            "schema": SCHEMA,
            "key": self.key,
            "job_key": self.job_key,
            "experiment": self.experiment,
            "preset": self.preset,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "result": json.loads(self.result.to_json()),
        }

    @classmethod
    def from_payload(cls, payload: t.Mapping[str, t.Any]) -> "CacheEntry":
        return cls(
            key=payload["key"],
            job_key=payload["job_key"],
            experiment=payload["experiment"],
            preset=payload["preset"],
            seed=int(payload["seed"]),
            wall_s=float(payload["wall_s"]),
            result=ExperimentResult.from_json(json.dumps(payload["result"])),
        )


class ResultCache:
    """The on-disk store: ``get``/``put`` by content address."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> CacheEntry | None:
        """The stored entry, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != SCHEMA or payload.get("key") != key:
            return None
        try:
            return CacheEntry.from_payload(payload)
        except Exception:
            return None

    def put(self, entry: CacheEntry) -> pathlib.Path:
        """Store *entry* atomically and idempotently; returns its path.

        Safe against concurrent writers of the same key (see the
        module docstring): exactly one of them publishes, the rest
        return immediately — the payload is identical either way.
        """
        path = self.path_for(entry.key)
        if path.exists():
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_fd = self._acquire_lock(path)
        if lock_fd is None:
            return path  # a concurrent writer owns this key
        try:
            if path.exists():  # it published while we took the lock
                return path
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(entry.to_payload(), fh, indent=1, default=str)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        finally:
            os.close(lock_fd)
            with contextlib.suppress(OSError):
                os.unlink(self._lock_path(path))
        return path

    @staticmethod
    def _lock_path(path: pathlib.Path) -> pathlib.Path:
        return path.with_name(path.name + ".lock")

    @classmethod
    def _acquire_lock(cls, path: pathlib.Path) -> int | None:
        """Create ``<path>.lock`` with ``O_EXCL``; ``None`` if held.

        The lock body is the holder's PID.  On contention the holder
        is probed (``kill(pid, 0)``): a dead holder's lock is
        reclaimed immediately; an unreadable or unprobeable lock falls
        back to the :data:`STALE_LOCK_S` age rule.  PIDs only mean
        something on the machine that wrote them, which is the same
        machine contending for the O_EXCL create — a shared-filesystem
        cache across hosts only ever uses the age rule.
        """
        lock = cls._lock_path(path)
        for attempt in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt:
                    return None
                if not cls._lock_reclaimable(lock):
                    return None
                with contextlib.suppress(OSError):
                    os.unlink(lock)
                continue
            with contextlib.suppress(OSError):
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            return fd
        return None

    @staticmethod
    def _lock_reclaimable(lock: pathlib.Path) -> bool:
        """Is this contended lock safe to break right now?"""
        pid: int | None = None
        try:
            pid = int(lock.read_text().strip() or "0") or None
        except (OSError, ValueError):
            pid = None  # pre-PID lock, torn write, or just released
        if pid is not None:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # holder is dead: reclaim immediately
            except PermissionError:
                pass  # alive under another uid: fall through to age
            else:
                return False  # holder is alive and is making progress
        try:
            age = time.time() - lock.stat().st_mtime
        except FileNotFoundError:
            return True  # released just now; the O_EXCL retry wins
        except OSError:
            return False
        return age > STALE_LOCK_S

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

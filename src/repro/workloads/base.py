"""Shared workload plumbing: results, jitter application, run helpers."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.core.scenario import Scenario
from repro.errors import ConfigurationError
from repro.metrics.stats import SampleStats
from repro.net.costs import JITTER
from repro.net.path import Datapath


@dataclasses.dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one benchmark run."""

    workload: str
    mode: str
    message_size: int
    duration_s: float
    messages: int
    bytes_transferred: int
    latency_samples: tuple[float, ...] = ()

    @property
    def throughput_bps(self) -> float:
        """Application-payload throughput in bits per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_transferred * 8.0 / self.duration_s

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def rate_per_s(self) -> float:
        """Messages (transactions/requests) per second."""
        if self.duration_s <= 0:
            return 0.0
        return self.messages / self.duration_s

    @property
    def latency(self) -> SampleStats:
        if not self.latency_samples:
            raise ConfigurationError(
                f"{self.workload}: no latency samples recorded"
            )
        return SampleStats.from_samples(self.latency_samples)


class LatencyRecorder:
    """Applies the path's jitter class to measured samples.

    Queueing delays emerge from the DES; the residual
    measurement/scheduling noise of the real testbed is modeled by the
    per-path-flavour lognormal factors of
    :data:`repro.net.costs.JITTER`.
    """

    def __init__(self, path: Datapath, rng: t.Any) -> None:
        self.jitter = JITTER[path.jitter_class]
        self.rng = rng
        self.samples: list[float] = []

    def record(self, raw_latency: float) -> float:
        noisy = raw_latency * self.jitter.sample(self.rng)
        self.samples.append(noisy)
        return noisy


def workload_rng(scenario: Scenario, workload: str) -> t.Any:
    """A dedicated random stream for one (testbed, workload) pair.

    Keyed by the workload name (not the scenario) on purpose: two
    deployment modes measured on equal-seeded testbeds replay the same
    jitter draw sequence, so mode ratios isolate the datapath effect
    (common random numbers).
    """
    return scenario.testbed.rng.stream(f"{workload}")


def require_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value!r}")

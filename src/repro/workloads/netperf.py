"""Netperf: TCP_STREAM (throughput) and UDP_RR (latency).

TCP_STREAM keeps a window of in-flight messages streaming from the
client to the server for a fixed duration and reports the achieved
payload rate; UDP_RR sends synchronous transactions one at a time and
reports per-transaction round-trip latency — exactly netperf's two
modes as used in §5.1.
"""

from __future__ import annotations

from repro.core.scenario import Scenario
from repro.sim.events import AllOf
from repro.workloads.base import (
    LatencyRecorder,
    WorkloadResult,
    require_positive,
    workload_rng,
)

#: TCP acknowledges roughly every other segment; the ACK leg is small
#: but does consume CPU on the reverse path.
ACK_EVERY = 2
ACK_BYTES = 64


class NetperfTcpStream:
    """``netperf -t TCP_STREAM`` against a scenario's server."""

    def __init__(self, window: int = 8) -> None:
        require_positive(window=window)
        self.window = window

    def run(self, scenario: Scenario, message_size: int,
            duration_s: float = 0.10) -> WorkloadResult:
        require_positive(message_size=message_size, duration_s=duration_s)
        tb = scenario.testbed
        engine = tb.engine
        forward, _ = scenario.paths("tcp")
        ack = scenario.ack_path("tcp")
        t_start = tb.env.now
        t_end = t_start + duration_s
        counters = {"messages": 0, "bytes": 0}

        def worker(index: int):
            sent = index  # desynchronise the ACK cadence across workers
            while tb.env.now < t_end:
                yield from engine.transfer(forward, message_size, stream=True)
                sent += 1
                if sent % ACK_EVERY == 0:
                    yield from engine.transfer(ack, ACK_BYTES, stream=True)
                if tb.env.now <= t_end:
                    counters["messages"] += 1
                    counters["bytes"] += message_size

        procs = [tb.env.process(worker(i)) for i in range(self.window)]
        tb.env.run(until=AllOf(tb.env, procs))
        elapsed = tb.env.now - t_start
        return WorkloadResult(
            workload="netperf_tcp_stream",
            mode=scenario.mode.value,
            message_size=message_size,
            duration_s=max(elapsed, duration_s),
            messages=counters["messages"],
            bytes_transferred=counters["bytes"],
        )


class NetperfTcpRR:
    """``netperf -t TCP_RR``: request/response over one warm connection.

    Identical transaction structure to UDP_RR plus TCP's per-segment
    ACK work; the paper uses UDP_RR for its latency numbers, TCP_RR is
    provided for completeness.
    """

    def run(self, scenario: Scenario, message_size: int,
            transactions: int = 200) -> WorkloadResult:
        require_positive(message_size=message_size, transactions=transactions)
        tb = scenario.testbed
        engine = tb.engine
        forward, reverse = scenario.paths("tcp")
        ack = scenario.ack_path("tcp")
        rng = workload_rng(scenario, "tcp_rr")
        recorder = LatencyRecorder(forward, rng)
        t_start = tb.env.now

        def client():
            for _ in range(transactions):
                t0 = tb.env.now
                yield from engine.transfer(forward, message_size, stream=False)
                yield from engine.transfer(ack, ACK_BYTES, stream=False)
                yield from engine.transfer(reverse, message_size, stream=False)
                recorder.record(tb.env.now - t0)

        tb.env.run(until=tb.env.process(client()))
        return WorkloadResult(
            workload="netperf_tcp_rr",
            mode=scenario.mode.value,
            message_size=message_size,
            duration_s=tb.env.now - t_start,
            messages=transactions,
            bytes_transferred=2 * message_size * transactions,
            latency_samples=tuple(recorder.samples),
        )


class NetperfTcpCRR:
    """``netperf -t TCP_CRR``: connect, one request/response, close.

    Every transaction pays the three-way handshake (one extra round
    trip) and, on NAT paths, a fresh conntrack entry — which is why
    connection churn amplifies the duplicated layer's cost.
    """

    #: Handshake control segments are tiny.
    SYN_BYTES = 60

    def run(self, scenario: Scenario, message_size: int,
            transactions: int = 100) -> WorkloadResult:
        require_positive(message_size=message_size, transactions=transactions)
        tb = scenario.testbed
        engine = tb.engine
        forward, reverse = scenario.paths("tcp")
        ack = scenario.ack_path("tcp")
        rng = workload_rng(scenario, "tcp_crr")
        recorder = LatencyRecorder(forward, rng)
        t_start = tb.env.now

        def client():
            for _ in range(transactions):
                t0 = tb.env.now
                # SYN / SYN-ACK / ACK.
                yield from engine.transfer(forward, self.SYN_BYTES,
                                           stream=False)
                yield from engine.transfer(reverse, self.SYN_BYTES,
                                           stream=False)
                yield from engine.transfer(forward, self.SYN_BYTES,
                                           stream=False)
                # The transaction itself.
                yield from engine.transfer(forward, message_size, stream=False)
                yield from engine.transfer(reverse, message_size, stream=False)
                # FIN exchange (one leg each way suffices for timing).
                yield from engine.transfer(ack, ACK_BYTES, stream=False)
                recorder.record(tb.env.now - t0)

        tb.env.run(until=tb.env.process(client()))
        return WorkloadResult(
            workload="netperf_tcp_crr",
            mode=scenario.mode.value,
            message_size=message_size,
            duration_s=tb.env.now - t_start,
            messages=transactions,
            bytes_transferred=2 * message_size * transactions,
            latency_samples=tuple(recorder.samples),
        )


class NetperfUdpRR:
    """``netperf -t UDP_RR``: synchronous request/response transactions."""

    def run(self, scenario: Scenario, message_size: int,
            transactions: int = 200) -> WorkloadResult:
        require_positive(message_size=message_size, transactions=transactions)
        tb = scenario.testbed
        engine = tb.engine
        forward, reverse = scenario.paths("udp")
        rng = workload_rng(scenario, "udp_rr")
        recorder = LatencyRecorder(forward, rng)
        t_start = tb.env.now

        def client():
            for _ in range(transactions):
                t0 = tb.env.now
                yield from engine.round_trip(
                    forward, reverse, message_size, message_size
                )
                recorder.record(tb.env.now - t0)

        proc = tb.env.process(client())
        tb.env.run(until=proc)
        elapsed = tb.env.now - t_start
        return WorkloadResult(
            workload="netperf_udp_rr",
            mode=scenario.mode.value,
            message_size=message_size,
            duration_s=elapsed,
            messages=transactions,
            bytes_transferred=2 * message_size * transactions,
            latency_samples=tuple(recorder.samples),
        )

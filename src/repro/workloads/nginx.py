"""NGINX driven by wrk2 (table 1: 100 connections, 10 k req/s, 1 kB file).

wrk2 is open-loop: requests are issued on a fixed schedule and latency
is measured from the *intended* send time, which makes the measurement
free of coordinated omission — queueing behind a slow response is
charged to latency, as in the paper's fig 5/fig 13 latency numbers.

The paper observes that NGINX latency variance is dominated by the
software stack itself when containerized (std-dev ≈ 2× the mean for
both NAT and BrFusion, vs 47 % for NoCont, §5.2.2); we model that as
heavier-tailed per-request service time inside containers.
"""

from __future__ import annotations

from repro.core.scenario import Scenario
from repro.sim.events import AllOf
from repro.sim.resources import Store
from repro.workloads.base import (
    LatencyRecorder,
    WorkloadResult,
    require_positive,
    workload_rng,
)

REQUEST_BYTES = 180
#: Base per-request server work (parse + sendfile of a cached 1 kB file,
#: access logging); ~65 µs at 2.2 GHz.
SERVER_REQ_CYCLES = 180_000
CLIENT_REQ_CYCLES = 3_000
#: Service-time lognormal sigma: containerized runtimes show much larger
#: tail noise than a native process — the paper measures latency std-dev
#: ≈ 2× the mean for both NAT and BrFusion but only 47 % of the mean for
#: NoCont, and attributes the difference "to the software itself rather
#: than to the networking layer" (§5.2.2).  The noise is *not*
#: mean-normalised: overlayfs/cgroup work genuinely inflates the mean,
#: which is why even BrFusion stays well above NoCont for NGINX.
SERVICE_SIGMA_CONTAINER = 1.35
SERVICE_SIGMA_NATIVE = 0.45


class Wrk2Benchmark:
    """``wrk2 -c 100 -R 10000`` against an NGINX scenario."""

    def __init__(self, connections: int = 100, rate_per_s: float = 10_000.0,
                 file_bytes: int = 1024) -> None:
        require_positive(connections=connections, rate_per_s=rate_per_s,
                         file_bytes=file_bytes)
        self.connections = connections
        self.rate_per_s = rate_per_s
        self.file_bytes = file_bytes

    def run(self, scenario: Scenario, duration_s: float = 0.10) -> WorkloadResult:
        require_positive(duration_s=duration_s)
        tb = scenario.testbed
        engine = tb.engine
        forward, reverse = scenario.paths("tcp")
        server_cpu = engine.cpu(scenario.server_domain)
        client_cpu = engine.cpu(scenario.client_domain)
        rng = workload_rng(scenario, "wrk2")
        recorder = LatencyRecorder(forward, rng)
        # Common random numbers: the service-noise stream is keyed by
        # the testbed seed only, so every deployment mode replays the
        # *same* request-cost sequence and mode differences isolate the
        # networking effect (heavy-tailed noise would otherwise drown
        # it at simulation-scale sample counts).
        service_rng = tb.rng.stream("wrk2-service")
        sigma = (
            SERVICE_SIGMA_CONTAINER
            if scenario.dst_ns.kind == "container"
            else SERVICE_SIGMA_NATIVE
        )
        # Connection pool: at most `connections` requests in flight.
        pool = Store(tb.env)
        for i in range(self.connections):
            pool.put(i)

        t_start = tb.env.now
        total = int(self.rate_per_s * duration_s)
        interval = 1.0 / self.rate_per_s
        counters = {"done": 0, "bytes": 0}
        # Indexed by request number so concurrent completions cannot
        # permute the draws between modes.  Not mean-normalised: the
        # container runtime's tail noise raises the average too (see
        # the sigma constants above).
        service_noise = service_rng.lognormal(mean=0.0, sigma=sigma, size=total)

        def one_request(index: int, scheduled_at: float):
            yield pool.get()
            yield client_cpu.execute(CLIENT_REQ_CYCLES, account="usr")
            yield from engine.transfer(forward, REQUEST_BYTES, stream=False)
            yield server_cpu.execute(
                SERVER_REQ_CYCLES * float(service_noise[index]), account="usr"
            )
            yield from engine.transfer(reverse, self.file_bytes, stream=False)
            # wrk2 convention: latency from the intended schedule time.
            recorder.record(tb.env.now - scheduled_at)
            counters["done"] += 1
            counters["bytes"] += REQUEST_BYTES + self.file_bytes
            yield pool.put(0)

        def generator_proc():
            for i in range(total):
                scheduled = t_start + i * interval
                if tb.env.now < scheduled:
                    yield tb.env.timeout(scheduled - tb.env.now)
                requests.append(tb.env.process(one_request(i, scheduled)))

        requests: list = []
        gen = tb.env.process(generator_proc())
        tb.env.run(until=gen)
        if requests:
            tb.env.run(until=AllOf(tb.env, requests))
        elapsed = tb.env.now - t_start
        return WorkloadResult(
            workload="wrk2",
            mode=scenario.mode.value,
            message_size=self.file_bytes,
            duration_s=max(elapsed, duration_s),
            messages=counters["done"],
            bytes_transferred=counters["bytes"],
            latency_samples=tuple(recorder.samples),
        )

"""Kafka producer throughput test (table 1: 120 k msg/s, 100 B, 8192 B
batches), driven by ``kafka-producer-perf-test.sh`` semantics.

The producer accumulates 100 B records into 8192 B batches and sends a
batch as soon as it fills (at 120 k msg/s a batch fills in ~0.68 ms, so
batching — not linger — dominates).  Per-record latency is the time
from the record's arrival at the producer to the broker's acknowledge,
so records early in a batch see extra queueing delay — this is why
Kafka latencies sit in the milliseconds while netperf's sit in the
microseconds.
"""

from __future__ import annotations

from repro.core.scenario import Scenario
from repro.workloads.base import (
    LatencyRecorder,
    WorkloadResult,
    require_positive,
    workload_rng,
)

#: Broker-side work per batch: protocol parse, log append, page-cache copy.
BROKER_BATCH_CYCLES = 140_000
#: Producer-side work per batch: compression/serialization.
PRODUCER_BATCH_CYCLES = 60_000
#: Containerized brokers pay overlayfs/cgroup overhead on the log append
#: path — the reason BrFusion stays ~13 % above NoCont in fig 5 even
#: though its network path matches NoCont's.
CONTAINER_BROKER_FACTOR = 2.3
ACK_BYTES = 68


class KafkaProducerPerf:
    """The Kafka producer performance benchmark."""

    def __init__(self, rate_per_s: float = 120_000.0,
                 message_bytes: int = 100, batch_bytes: int = 8192) -> None:
        require_positive(rate_per_s=rate_per_s, message_bytes=message_bytes,
                         batch_bytes=batch_bytes)
        if batch_bytes < message_bytes:
            raise ValueError("batch must hold at least one message")
        self.rate_per_s = rate_per_s
        self.message_bytes = message_bytes
        self.batch_bytes = batch_bytes
        self.messages_per_batch = batch_bytes // message_bytes

    def run(self, scenario: Scenario, duration_s: float = 0.25) -> WorkloadResult:
        require_positive(duration_s=duration_s)
        tb = scenario.testbed
        engine = tb.engine
        forward, reverse = scenario.paths("tcp")
        broker_cpu = engine.cpu(scenario.server_domain)
        producer_cpu = engine.cpu(scenario.client_domain)
        rng = workload_rng(scenario, "kafka")
        recorder = LatencyRecorder(forward, rng)
        broker_cycles = BROKER_BATCH_CYCLES
        if scenario.dst_ns.kind == "container":
            broker_cycles *= CONTAINER_BROKER_FACTOR

        batch_fill_s = self.messages_per_batch / self.rate_per_s
        total_batches = max(1, int(duration_s / batch_fill_s))
        t_start = tb.env.now
        counters = {"messages": 0, "bytes": 0}

        def producer():
            for _ in range(total_batches):
                batch_open = tb.env.now
                # Records arrive uniformly while the batch fills.
                yield tb.env.timeout(batch_fill_s)
                yield producer_cpu.execute(PRODUCER_BATCH_CYCLES, account="usr")
                yield from engine.transfer(forward, self.batch_bytes,
                                           stream=True)
                yield broker_cpu.execute(broker_cycles, account="usr")
                yield from engine.transfer(reverse, ACK_BYTES, stream=False)
                acked = tb.env.now
                # Mean record latency within the batch: a record arriving
                # at fill-fraction f waits (1-f)·fill + send/ack time.
                mean_record_latency = (acked - batch_open) - batch_fill_s / 2.0
                recorder.record(mean_record_latency)
                counters["messages"] += self.messages_per_batch
                counters["bytes"] += self.batch_bytes

        proc = tb.env.process(producer())
        tb.env.run(until=proc)
        elapsed = tb.env.now - t_start
        return WorkloadResult(
            workload="kafka_producer",
            mode=scenario.mode.value,
            message_size=self.message_bytes,
            duration_s=elapsed,
            messages=counters["messages"],
            bytes_transferred=counters["bytes"],
            latency_samples=tuple(recorder.samples),
        )
